//! Criterion bench of multi-deck batch execution: every example deck
//! through the one shared `se-exec` scheduler, single-threaded and with
//! the full worker pool.
//!
//! Besides the criterion timings it writes `BENCH_batch.json` at the
//! workspace root with the median wall-clock of both modes and the derived
//! decks-per-second and points-per-second rates, so CI can track batch
//! throughput over time.

use criterion::{criterion_group, criterion_main, Criterion};
use se_exec::Workers;
use se_netlist::{parse_full_deck, Deck};
use se_sim::{run_deck_batch, ExecOptions};
use std::time::Instant;

fn example_decks() -> Vec<(String, Deck)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/decks");
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("examples/decks exists")
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "cir"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_stem()
                .expect("deck file has a stem")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&path).expect("deck is readable");
            (name, parse_full_deck(&text).expect("example deck parses"))
        })
        .collect()
}

/// Runs the whole batch once, returning the total row count.
fn run_once(decks: &[(String, Deck)], workers: Workers) -> usize {
    let outcomes = run_deck_batch(
        decks.to_vec(),
        &ExecOptions {
            workers,
            ..ExecOptions::default()
        },
    );
    outcomes
        .into_iter()
        .map(|outcome| {
            outcome
                .results
                .expect("example decks run clean")
                .iter()
                .map(se_sim::SimulationResult::len)
                .sum::<usize>()
        })
        .sum()
}

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn time_batch(decks: &[(String, Deck)], workers: Workers, samples: usize) -> (f64, usize) {
    let mut points = 0;
    let times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            points = run_once(decks, workers);
            start.elapsed().as_secs_f64()
        })
        .collect();
    (median_seconds(times), points)
}

fn batch_throughput(c: &mut Criterion) {
    let decks = example_decks();
    assert!(decks.len() >= 5, "all example decks are in the batch");
    let mut group = c.benchmark_group("batch_throughput");
    group.bench_function("examples_one_scheduler_parallel", |b| {
        b.iter(|| run_once(&decks, Workers::Auto));
    });
    group.bench_function("examples_one_scheduler_serial", |b| {
        b.iter(|| run_once(&decks, Workers::Serial));
    });
    group.finish();

    // Structured record for CI tracking.
    let (serial_seconds, points) = time_batch(&decks, Workers::Serial, 7);
    let (parallel_seconds, parallel_points) = time_batch(&decks, Workers::Auto, 7);
    assert_eq!(points, parallel_points, "modes must visit identical grids");
    let threads = rayon::current_num_threads();
    let json = format!(
        "{{\n  \"bench\": \"batch_throughput\",\n  \"decks\": {},\n  \"total_points\": {points},\n  \"threads\": {threads},\n  \"serial_seconds\": {serial_seconds:.9},\n  \"parallel_seconds\": {parallel_seconds:.9},\n  \"decks_per_second_serial\": {:.1},\n  \"decks_per_second_parallel\": {:.1},\n  \"points_per_second_serial\": {:.1},\n  \"points_per_second_parallel\": {:.1}\n}}\n",
        decks.len(),
        decks.len() as f64 / serial_seconds,
        decks.len() as f64 / parallel_seconds,
        points as f64 / serial_seconds,
        points as f64 / parallel_seconds,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(path, &json).expect("BENCH_batch.json is writable");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, batch_throughput);
criterion_main!(benches);
