//! Criterion bench of multi-deck batch execution: every example deck
//! through the one shared `se-exec` scheduler, single-threaded and with
//! the full worker pool.
//!
//! Besides the criterion timings it writes `BENCH_batch.json` at the
//! workspace root with the median wall-clock of both modes, the measured
//! parallel speedup, and the derived decks-per-second and
//! points-per-second rates, so CI can track batch throughput over time.
//! The batch is [`BATCH_COPIES`] copies of the example set — long enough
//! to amortize pool startup — and on ≥4-thread runners the bench aborts
//! if the parallel mode fails to beat serial by at least 1.2×.

use criterion::{criterion_group, criterion_main, Criterion};
use se_exec::Workers;
use se_netlist::{parse_full_deck, Deck};
use se_sim::{run_deck_batch, ExecOptions};
use std::time::Instant;

/// How many copies of the example-deck set make up one measured batch.
///
/// A single pass over the examples finishes in a few milliseconds — small
/// enough that scheduler startup and per-sample jitter swamp any real
/// parallel win (the original record measured 922.8 vs 921.8 decks/s).
/// Replicating the set gives the pool a batch long enough to amortize
/// startup and show its actual scaling.
const BATCH_COPIES: usize = 8;

fn example_decks() -> Vec<(String, Deck)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/decks");
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("examples/decks exists")
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "cir"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_stem()
                .expect("deck file has a stem")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&path).expect("deck is readable");
            (name, parse_full_deck(&text).expect("example deck parses"))
        })
        .collect()
}

/// Runs the whole batch once, returning the total row count.
fn run_once(decks: &[(String, Deck)], workers: Workers) -> usize {
    let outcomes = run_deck_batch(
        decks.to_vec(),
        &ExecOptions {
            workers,
            ..ExecOptions::default()
        },
    );
    outcomes
        .into_iter()
        .map(|outcome| {
            outcome
                .results
                .expect("example decks run clean")
                .iter()
                .map(se_sim::SimulationResult::len)
                .sum::<usize>()
        })
        .sum()
}

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn time_batch(decks: &[(String, Deck)], workers: Workers, samples: usize) -> (f64, usize) {
    let mut points = 0;
    let times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            points = run_once(decks, workers);
            start.elapsed().as_secs_f64()
        })
        .collect();
    (median_seconds(times), points)
}

/// The measured workload: [`BATCH_COPIES`] copies of every example deck,
/// each copy under a distinct job name.
fn scaled_decks() -> Vec<(String, Deck)> {
    let base = example_decks();
    assert!(base.len() >= 5, "all example decks are in the batch");
    (0..BATCH_COPIES)
        .flat_map(|copy| {
            base.iter()
                .map(move |(name, deck)| (format!("{name}#{copy}"), deck.clone()))
        })
        .collect()
}

fn batch_throughput(c: &mut Criterion) {
    let decks = scaled_decks();
    let mut group = c.benchmark_group("batch_throughput");
    group.bench_function("examples_one_scheduler_parallel", |b| {
        b.iter(|| run_once(&decks, Workers::Auto));
    });
    group.bench_function("examples_one_scheduler_serial", |b| {
        b.iter(|| run_once(&decks, Workers::Serial));
    });
    group.finish();

    // Structured record for CI tracking.
    let (serial_seconds, points) = time_batch(&decks, Workers::Serial, 7);
    let (parallel_seconds, parallel_points) = time_batch(&decks, Workers::Auto, 7);
    assert_eq!(points, parallel_points, "modes must visit identical grids");
    let threads = rayon::current_num_threads();
    let speedup = serial_seconds / parallel_seconds;
    // On a real multi-core pool the parallel mode must demonstrably beat
    // serial — fail the bench loudly rather than quietly recording a
    // regression. Single- and dual-core runners (where no meaningful win
    // is physically available) only record the ratio.
    assert!(
        threads < 4 || speedup >= 1.2,
        "parallel batch mode must be >=1.2x serial on {threads} threads, measured {speedup:.3}x \
         ({serial_seconds:.4}s serial vs {parallel_seconds:.4}s parallel)"
    );
    let json = format!(
        "{{\n  \"bench\": \"batch_throughput\",\n  \"decks\": {},\n  \"total_points\": {points},\n  \"threads\": {threads},\n  \"serial_seconds\": {serial_seconds:.9},\n  \"parallel_seconds\": {parallel_seconds:.9},\n  \"parallel_speedup\": {speedup:.3},\n  \"decks_per_second_serial\": {:.1},\n  \"decks_per_second_parallel\": {:.1},\n  \"points_per_second_serial\": {:.1},\n  \"points_per_second_parallel\": {:.1}\n}}\n",
        decks.len(),
        decks.len() as f64 / serial_seconds,
        decks.len() as f64 / parallel_seconds,
        points as f64 / serial_seconds,
        points as f64 / parallel_seconds,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(path, &json).expect("BENCH_batch.json is writable");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, batch_throughput);
criterion_main!(benches);
