//! Criterion bench of the deck pipeline: the full parse → compile →
//! execute path of the reference staircase deck, plus the compile-only
//! planning cost.
//!
//! Besides the criterion timings it writes `BENCH_deck.json` at the
//! workspace root with the median wall-clock of both paths and the derived
//! decks-per-second rate, so CI can track front-end throughput over time.

use criterion::{criterion_group, criterion_main, Criterion};
use se_netlist::parse_full_deck;
use se_sim::{compile, execute};
use std::time::Instant;

fn staircase_deck() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/decks/set_staircase.cir"
    );
    std::fs::read_to_string(path).expect("reference deck exists")
}

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Full pipeline: text in, result table out.
fn run_once(text: &str) -> usize {
    let deck = parse_full_deck(text).expect("deck parses");
    let plan = compile(&deck).expect("deck compiles");
    let results = execute(&deck, &plan).expect("deck runs");
    results[0].len()
}

fn time_runs(text: &str, samples: usize) -> f64 {
    let times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            assert_eq!(run_once(text), 51);
            start.elapsed().as_secs_f64()
        })
        .collect();
    median_seconds(times)
}

fn deck_throughput(c: &mut Criterion) {
    let text = staircase_deck();
    let mut group = c.benchmark_group("deck_throughput");

    group.bench_function("staircase_parse_compile_run", |b| {
        b.iter(|| run_once(&text));
    });
    group.bench_function("staircase_parse_compile_only", |b| {
        b.iter(|| {
            let deck = parse_full_deck(&text).expect("deck parses");
            compile(&deck).expect("deck compiles").runs.len()
        });
    });
    group.finish();

    // Structured record for CI tracking.
    let run_seconds = time_runs(&text, 15);
    let compile_seconds = median_seconds(
        (0..200)
            .map(|_| {
                let start = Instant::now();
                let deck = parse_full_deck(&text).expect("deck parses");
                assert_eq!(compile(&deck).expect("deck compiles").runs.len(), 1);
                start.elapsed().as_secs_f64()
            })
            .collect(),
    );
    let json = format!(
        "{{\n  \"bench\": \"deck_throughput\",\n  \"deck\": \"set_staircase.cir\",\n  \"sweep_points\": 51,\n  \"parse_compile_seconds\": {compile_seconds:.9},\n  \"parse_compile_run_seconds\": {run_seconds:.9},\n  \"decks_per_second\": {:.1},\n  \"plans_per_second\": {:.1}\n}}\n",
        1.0 / run_seconds,
        1.0 / compile_seconds,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_deck.json");
    std::fs::write(path, &json).expect("BENCH_deck.json is writable");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, deck_throughput);
criterion_main!(benches);
