//! Criterion bench: end-to-end cost of the headline experiment kernels
//! (one point of E1, E7 and E10a each), so regressions in any layer of the
//! stack show up in one place.

use criterion::{criterion_group, criterion_main, Criterion};
use se_bench::{reference_set, reference_system};
use se_logic::mvl::MvlGate;
use se_montecarlo::MasterEquation;

fn experiment_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_kernels");
    group.sample_size(10);

    group.bench_function("e1_gate_sweep_41_points", |b| {
        let set = reference_set();
        let period = set.gate_period();
        b.iter(|| {
            set.gate_sweep(1e-3, 0.0, 2.0 * period, 41, 0.0, 1.0)
                .expect("sweep succeeds")
        });
    });

    group.bench_function("e7_mvl_transfer_41_points", |b| {
        let gate = MvlGate::reference();
        let period = gate.input_period();
        b.iter(|| {
            gate.transfer_curve(0.0, 2.0 * period, 41)
                .expect("transfer curve succeeds")
        });
    });

    group.bench_function("e10_master_equation_single_point", |b| {
        let system = reference_system(1e-3, 0.08, 0.0);
        b.iter(|| {
            MasterEquation::new(system.clone(), 1.0)
                .expect("solver builds")
                .solve()
                .expect("solve succeeds")
        });
    });
    group.finish();
}

criterion_group!(benches, experiment_kernels);
criterion_main!(benches);
