//! Criterion bench: hybrid co-simulation of a SET behind a resistive load —
//! the cost of one boundary-relaxation solve.

use criterion::{criterion_group, criterion_main, Criterion};
use se_hybrid::{HybridOptions, HybridSimulator};

fn hybrid_cosim(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_cosim");
    group.sample_size(10);

    let deck = "hybrid set load\nVDD vdd 0 5m\nVG gate 0 0.08\nRL vdd drain 10meg\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n";
    let netlist = se_netlist::parse_deck(deck).expect("deck parses");
    group.bench_function("set_with_10meg_load", |b| {
        b.iter(|| {
            HybridSimulator::new(&netlist, HybridOptions::new(1.0))
                .expect("simulator builds")
                .solve()
                .expect("relaxation converges")
        });
    });
    group.finish();
}

criterion_group!(benches, hybrid_cosim);
criterion_main!(benches);
