//! Criterion bench of the incremental physics core: kinetic Monte-Carlo
//! event throughput (incremental `LiveState` loop vs the pre-refactor
//! full-recompute loop) and the sparse master-equation state-space solve.
//!
//! Besides the criterion timings it writes `BENCH_kmc.json` at the
//! workspace root with events/sec for both loops, the measured speedup,
//! the batched-ensemble aggregate throughput at N = 16 replicas (and its
//! ratio over running the same replicas sequentially — same seeds, same
//! event counts, both sides measured by the shared `se_bench::kmc`
//! harness), the lane-group multi-core numbers (32 replicas sharded into
//! width-8 groups on the se-exec pool, measured at 1 worker and at
//! min(4, hardware) workers, with `hardware_threads` recorded so
//! single-core runners are never mistaken for 4-core measurements), and
//! the states/sec of a master-equation solve an order of magnitude beyond
//! the old dense-LU state limit, so CI can track the hot path over time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use se_bench::{chain_system, kmc};
use se_montecarlo::{KmcKernel, MasterEquation};
use se_numeric::sampling::{exponential_waiting_time, select_weighted};
use se_orthodox::{rates::tunnel_rate, ChargeState, TunnelSystem};
use se_units::constants::E;
use std::time::Instant;

/// Islands in the KMC bench circuit (the acceptance gate asks for ≥ 4).
const ISLANDS: usize = 8;
/// Measured events per sample.
const EVENTS: usize = 50_000;
/// Lockstep replicas in the batched-ensemble record (the issue pins the
/// comparison at N = 16).
const REPLICAS: usize = 16;
/// Measured events *per replica* in the batched-vs-sequential comparison —
/// smaller than the scalar record's sample so one sample stays ~100 ms,
/// but identical on both sides of the ratio.
const BATCH_EVENTS: usize = 20_000;
/// Replicas per lane group in the multi-core measurement: the deck
/// executor's default width. Narrower groups lose lockstep-round
/// amortization (a width-4 batch runs well below scalar speed), so the
/// multi-core record keeps full-width groups and scales the *replica
/// count* instead to get schedulable parallelism.
const LANE_WIDTH: usize = 8;
/// Replicas in the lane-group measurement: 4 full-width groups, so the
/// min(4, hardware)-worker measurement can actually use 4 cores while
/// every group keeps the width the SoA engine is efficient at.
const LANE_REPLICAS: usize = 32;
/// Drain bias: far enough above the chain's Coulomb threshold that events
/// flow steadily at every gate phase.
const VDS: f64 = 0.15;
/// All islands gated to the charge-degeneracy point.
const VG: f64 = E / (2.0 * se_bench::REFERENCE_C_GATE);
/// Dilution-refrigerator operating point (kT ≪ charging energy), the
/// regime single-electron circuits actually run in.
const TEMPERATURE: f64 = 0.1;
/// Kernel-scaling sweep sizes and per-sample event counts. Event counts
/// shrink with N so the full-recompute side of a sample stays ~10–50 ms;
/// both kernels run the identical count at each size.
const SWEEP: [(usize, usize); 3] = [(8, 50_000), (64, 20_000), (256, 10_000)];
/// The master-equation bench solves at 1 K so thermal mixing populates a
/// representative share of the enumerated states.
const MASTER_TEMPERATURE: f64 = 1.0;
/// The dense-LU implementation's state cap, the yardstick for the sparse
/// state-space acceptance ratio.
const OLD_DENSE_STATE_LIMIT: usize = 20_000;
/// Master-equation bench: 4-island chain, window ±11 → 23⁴ = 279 841
/// states, 14× the old dense limit.
const MASTER_ISLANDS: usize = 4;
const MASTER_WINDOW: i64 = 11;

fn bench_chain() -> TunnelSystem {
    chain_system(ISLANDS, VDS, VG)
}

/// The seed-code measurement loop (`run_events`), reconstructed on the
/// public API: per event, a fresh event enumeration, a full `K⁻¹`-product
/// potential solve with its intermediate buffers, per-event validated rate
/// calls and the occupation-tracking state clone — the baseline the
/// incremental loop is measured against (the validation proptests pin that
/// both produce the same physics).
fn run_full_recompute_loop(system: &TunnelSystem, events: usize, seed: u64) -> (u64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = ChargeState::neutral(system.island_count());
    let mut occupation_time = vec![0.0; system.island_count()];
    let mut time = 0.0;
    let mut last_time = 0.0;
    let mut executed = 0_u64;
    for _ in 0..events {
        let before: Vec<i64> = state.0.clone();
        let candidates = system.events();
        let potentials = system.island_potentials(&state);
        let mut rates = Vec::with_capacity(candidates.len());
        let mut total = 0.0;
        for &event in &candidates {
            let df = system.delta_free_energy_with_potentials(&potentials, event);
            let rate = tunnel_rate(df, system.event_resistance(event), TEMPERATURE)
                .expect("valid rate parameters");
            rates.push(rate);
            total += rate;
        }
        if total <= 0.0 {
            break;
        }
        time += exponential_waiting_time(&mut rng, total).expect("positive total rate");
        let chosen = select_weighted(&mut rng, &rates).expect("positive total rate");
        system.apply_event(&mut state, candidates[chosen]);
        let dwell = time - last_time;
        for (acc, &n) in occupation_time.iter_mut().zip(&before) {
            *acc += dwell * n as f64;
        }
        last_time = time;
        executed += 1;
    }
    black_box(occupation_time);
    (executed, time)
}

fn run_incremental_loop(system: &TunnelSystem, events: usize, seed: u64) -> (u64, f64) {
    kmc::run_scalar(system, TEMPERATURE, seed, 0, events)
}

fn master_states() -> usize {
    (2 * MASTER_WINDOW as usize + 1).pow(MASTER_ISLANDS as u32)
}

fn solve_large_master() -> f64 {
    let system = chain_system(MASTER_ISLANDS, 1e-3, VG);
    let solver = MasterEquation::new(system, MASTER_TEMPERATURE)
        .expect("valid system")
        .with_window(MASTER_WINDOW)
        .expect("valid window");
    let start = Instant::now();
    let solution = solver.solve().expect("sparse solve succeeds");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(solution.states().len(), master_states());
    let total: f64 = solution.probabilities().iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
    elapsed
}

fn kmc_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmc_hotpath");
    group.sample_size(10);

    let system = bench_chain();
    group.bench_function("chain8_50k_events_incremental", |b| {
        b.iter(|| black_box(run_incremental_loop(&system, EVENTS, 1)));
    });
    group.bench_function("chain8_50k_events_full_recompute", |b| {
        b.iter(|| black_box(run_full_recompute_loop(&system, EVENTS, 1)));
    });
    group.bench_function("chain8_16x20k_events_batched", |b| {
        b.iter(|| {
            black_box(kmc::run_batched(
                &system,
                TEMPERATURE,
                1,
                REPLICAS,
                0,
                BATCH_EVENTS,
            ))
        });
    });
    group.finish();

    let mut master_group = c.benchmark_group("master_sparse");
    master_group.sample_size(10);
    master_group.bench_function("chain4_window11_279841_states", |b| {
        b.iter(solve_large_master);
    });
    master_group.finish();

    // Structured record for CI tracking and the acceptance gate.
    let system = bench_chain();
    let incremental = kmc::best_events_per_sec(EVENTS as u64, 5, |seed| {
        run_incremental_loop(&system, EVENTS, seed)
    });
    let baseline = kmc::best_events_per_sec(EVENTS as u64, 5, |seed| {
        run_full_recompute_loop(&system, EVENTS, seed)
    });
    // Batched-ensemble record: the lockstep engine at N = 16 against the
    // same 16 replicas (same derived seeds, same event counts) run one at
    // a time on the scalar engine. Both sides go through the shared
    // `se_bench::kmc` harness so the ratio compares measurement-identical
    // loops.
    let batch_total = (REPLICAS * BATCH_EVENTS) as u64;
    let sequential_aggregate = kmc::best_events_per_sec(batch_total, 3, |seed| {
        kmc::run_sequential_replicas(&system, TEMPERATURE, seed, REPLICAS, 0, BATCH_EVENTS)
    });
    let batched_aggregate = kmc::best_events_per_sec(batch_total, 3, |seed| {
        kmc::run_batched(&system, TEMPERATURE, seed, REPLICAS, 0, BATCH_EVENTS)
    });
    // Multi-core lane-group record: 32 replicas sharded into width-8
    // groups on the se-exec pool (4 schedulable items of the deck
    // executor's default width), at 1 worker and at min(4, hardware)
    // workers. Both numbers are honest wall-clock on *this* machine; the
    // JSON carries `hardware_threads` so a single-core runner's
    // multi-thread number (= its 1-thread number) is never mistaken for
    // a 4-core measurement.
    let hardware_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let bench_worker_threads = hardware_threads.min(4);
    let lane_total = (LANE_REPLICAS * BATCH_EVENTS) as u64;
    let lane_groups_1 = kmc::best_events_per_sec(lane_total, 3, |seed| {
        kmc::run_lane_groups(
            &system,
            TEMPERATURE,
            seed,
            LANE_REPLICAS,
            LANE_WIDTH,
            0,
            BATCH_EVENTS,
            1,
        )
    });
    let lane_groups_multi = kmc::best_events_per_sec(lane_total, 3, |seed| {
        kmc::run_lane_groups(
            &system,
            TEMPERATURE,
            seed,
            LANE_REPLICAS,
            LANE_WIDTH,
            0,
            BATCH_EVENTS,
            bench_worker_threads,
        )
    });
    let master_seconds = (0..3)
        .map(|_| solve_large_master())
        .fold(f64::MAX, f64::min);
    let states = master_states();
    // Kernel-scaling sweep: the tree/axpy kernel against full recompute on
    // chains of N ∈ {8, 64, 256} islands, same circuits and seeds on both
    // sides, construction excluded from the timed region
    // (`kernel_events_per_sec`). `events_per_sec_nN` is the tree kernel;
    // `large_n_speedup` (tree / full recompute at N = 256) carries the
    // CI-gated ≥ 3× incremental-maintenance acceptance.
    let sweep: Vec<(usize, f64, f64)> = SWEEP
        .iter()
        .map(|&(n, events)| {
            let system = chain_system(n, VDS, VG);
            let tree =
                kmc::kernel_events_per_sec(&system, TEMPERATURE, 3, events, KmcKernel::Incremental);
            let full = kmc::kernel_events_per_sec(
                &system,
                TEMPERATURE,
                3,
                events,
                KmcKernel::FullRecompute,
            );
            (n, tree, full)
        })
        .collect();
    let sweep_json: String = sweep
        .iter()
        .map(|&(n, tree, full)| {
            format!(
                "  \"events_per_sec_n{n}\": {tree:.1},\n  \
                 \"events_per_sec_full_recompute_n{n}\": {full:.1},\n"
            )
        })
        .collect();
    let (_, n256_tree, n256_full) = sweep[2];
    let large_n_speedup = n256_tree / n256_full;
    let json = format!(
        "{{\n  \"bench\": \"kmc_hotpath\",\n  \"islands\": {ISLANDS},\n  \"events\": {EVENTS},\n  \
         \"events_per_sec_incremental\": {incremental:.1},\n  \
         \"events_per_sec_full_recompute\": {baseline:.1},\n  \
         \"speedup\": {:.2},\n  \
         \"batched_replicas\": {REPLICAS},\n  \
         \"batched_events_per_replica\": {BATCH_EVENTS},\n  \
         \"batched_events_per_sec_aggregate\": {batched_aggregate:.1},\n  \
         \"sequential_events_per_sec_aggregate\": {sequential_aggregate:.1},\n  \
         \"lane_width\": {LANE_WIDTH},\n  \
         \"lane_replicas\": {LANE_REPLICAS},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"bench_worker_threads\": {bench_worker_threads},\n  \
         \"batched_events_per_sec_1_thread\": {lane_groups_1:.1},\n  \
         \"batched_events_per_sec_multi_thread\": {lane_groups_multi:.1},\n  \
         \"batched_speedup_vs_sequential_1_thread\": {:.3},\n  \
         \"batched_speedup_vs_sequential\": {:.3},\n\
         {sweep_json}  \
         \"large_n_speedup\": {large_n_speedup:.2},\n  \
         \"master_islands\": {MASTER_ISLANDS},\n  \"master_window\": {MASTER_WINDOW},\n  \
         \"master_states\": {states},\n  \"master_solve_seconds\": {master_seconds:.6},\n  \
         \"master_states_per_sec\": {:.1},\n  \
         \"old_dense_state_limit\": {OLD_DENSE_STATE_LIMIT},\n  \
         \"state_space_ratio\": {:.2}\n}}\n",
        incremental / baseline,
        lane_groups_1 / sequential_aggregate,
        lane_groups_multi / sequential_aggregate,
        states as f64 / master_seconds,
        states as f64 / OLD_DENSE_STATE_LIMIT as f64,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kmc.json");
    std::fs::write(path, &json).expect("BENCH_kmc.json is writable");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, kmc_hotpath);
criterion_main!(benches);
