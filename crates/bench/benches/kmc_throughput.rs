//! Criterion bench: kinetic Monte-Carlo event throughput on the reference
//! SET and on multi-island chains, including the batched lockstep engine.
//!
//! All measurement loops come from the shared [`se_bench::kmc`] harness —
//! the same code `kmc_hotpath` uses for its BENCH_kmc.json record — so the
//! single-replica and batched numbers here are directly comparable to the
//! tracked hot-path figures.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use se_bench::{chain_system, kmc, reference_system};

fn kmc_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmc_events");
    group.sample_size(10);

    group.bench_function("single_set_10k_events", |b| {
        let system = reference_system(1e-3, 0.08, 0.0);
        b.iter(|| black_box(kmc::run_scalar(&system, 1.0, 1, 100, 10_000)));
    });

    for islands in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("chain_2k_events", islands),
            &islands,
            |b, &islands| {
                let system = chain_system(islands, 1e-3, 0.08);
                b.iter(|| black_box(kmc::run_scalar(&system, 1.0, 2, 100, 2_000)));
            },
        );
    }

    // The batched lockstep engine on the same chain fixtures: 16 replicas
    // advanced together, seeds derived per replica exactly as the scalar
    // sequential baseline derives them.
    for islands in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("chain_16x2k_events_batched", islands),
            &islands,
            |b, &islands| {
                let system = chain_system(islands, 1e-3, 0.08);
                b.iter(|| black_box(kmc::run_batched(&system, 1.0, 2, 16, 100, 2_000)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, kmc_throughput);
criterion_main!(benches);
