//! Criterion bench: kinetic Monte-Carlo event throughput on the reference
//! SET and on multi-island chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use se_bench::{chain_system, reference_system};
use se_montecarlo::{MonteCarloSimulator, SimulationOptions};

fn kmc_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmc_events");
    group.sample_size(10);

    group.bench_function("single_set_10k_events", |b| {
        let system = reference_system(1e-3, 0.08, 0.0);
        b.iter(|| {
            let mut sim = MonteCarloSimulator::new(
                system.clone(),
                SimulationOptions::new(1.0)
                    .with_seed(1)
                    .with_equilibration(100),
            )
            .expect("valid system");
            sim.run_events(10_000).expect("run succeeds")
        });
    });

    for islands in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("chain_2k_events", islands),
            &islands,
            |b, &islands| {
                let system = chain_system(islands, 1e-3, 0.08);
                b.iter(|| {
                    let mut sim = MonteCarloSimulator::new(
                        system.clone(),
                        SimulationOptions::new(1.0)
                            .with_seed(2)
                            .with_equilibration(100),
                    )
                    .expect("valid system");
                    sim.run_events(2_000).expect("run succeeds")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, kmc_throughput);
criterion_main!(benches);
