//! Criterion bench: master-equation solve time versus state-space size
//! (experiment E10b's scaling argument).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use se_bench::chain_system;
use se_montecarlo::MasterEquation;

fn master_equation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("master_equation");
    group.sample_size(10);

    for islands in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::new("islands", islands),
            &islands,
            |b, &islands| {
                let system = chain_system(islands, 1e-3, 0.08);
                b.iter(|| {
                    MasterEquation::new(system.clone(), 1.0)
                        .expect("valid system")
                        .with_window(2)
                        .expect("valid window")
                        .solve()
                        .expect("solve succeeds")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, master_equation_scaling);
criterion_main!(benches);
