//! Throughput record of the Krylov master-equation solver: the PR-9
//! acceptance surface.
//!
//! A plain `harness = false` main (no criterion) that writes
//! `BENCH_master.json` at the workspace root with three records CI gates
//! on:
//!
//! * **solver**: preconditioned BiCGSTAB vs the anchored Gauss–Seidel
//!   reference, timed on the same assembled generator (a 4-island chain at
//!   window ±11 → 23⁴ = 279 841 states) via the solver-only entry point,
//!   so the ratio compares iteration engines and nothing else — the gate
//!   asserts `solver_speedup ≥ 2`;
//! * **above-cap**: one full solve beyond the old 400 000-state ceiling
//!   (3 islands at window ±40 → 81³ = 531 441 states), proving the new
//!   2 000 000-state default is real head-room, not a constant edit;
//! * **sweep**: a 32-point gate sweep across the charge-degeneracy point,
//!   run three ways — cold Gauss–Seidel (the pre-Krylov sweep behaviour),
//!   cold Krylov and warm-started Krylov (the shipped default: each point
//!   seeded with its predecessor's converged distribution) — reporting
//!   points/s for each, the old-vs-new ratio and the cold-vs-warm ratio.
//!
//! The comparison runs hot, at `kT` a sizeable fraction of the charging
//! energy, so the stationary distribution genuinely spreads over the
//! enumeration window. In deep Coulomb blockade (the kmc_hotpath record's
//! 1 K point) the distribution is a delta at the ground state and *any*
//! anchored solver converges in one sweep — there is no solver to
//! compare. The hot generator is the numerically hard case: Gauss–Seidel
//! needs hundreds of sweeps where ILU(0)-preconditioned BiCGSTAB takes a
//! handful of iterations.

use se_bench::chain_system;
use se_montecarlo::MasterEquation;
use se_numeric::sparse::{stationary_distribution_with, StationaryOptions, StationaryWorkspace};
use se_numeric::{Preconditioner, StationarySolver};
use se_units::constants::E;
use std::time::Instant;

/// Solver comparison: 4-island chain, window ±11 → 23⁴ = 279 841 states.
const MASTER_ISLANDS: usize = 4;
const MASTER_WINDOW: i64 = 11;
/// Above-cap demonstration: 3 islands, window ±40 → 81³ = 531 441 states,
/// past the retired 400 000-state ceiling.
const ABOVE_CAP_ISLANDS: usize = 3;
const ABOVE_CAP_WINDOW: i64 = 40;
const OLD_STATE_CAP: usize = 400_000;
/// Warm-start sweep: a narrow gate excursion around the degeneracy point
/// (±5 %), small bias steps being exactly where a predecessor's converged
/// distribution is a good seed; window ±5 → 11⁴ = 14 641 states keeps
/// 2 × 32 full solves quick.
const SWEEP_POINTS: usize = 32;
const SWEEP_WINDOW: i64 = 5;
const SWEEP_HALF_RANGE: f64 = 0.05;
/// Linear-response drain bias, all islands gated to charge degeneracy.
const VDS: f64 = 1e-3;
const VG: f64 = E / (2.0 * se_bench::REFERENCE_C_GATE);
/// kT ≈ 0.4 × the chain's charging energy: the window is thermally
/// populated and iterative-solver choice actually matters (see the module
/// doc).
const MASTER_TEMPERATURE: f64 = 400.0;

fn states_of(islands: usize, window: i64) -> usize {
    (2 * window as usize + 1).pow(islands as u32)
}

/// Best-of-N wall-clock of one cold stationary solve on a pre-assembled
/// generator; returns (seconds, iterations, provenance, distribution).
/// Each repeat gets a fresh workspace so none inherits warm buffers.
fn time_solver(
    inflow: &se_numeric::CsrMatrix,
    out_rate: &[f64],
    anchor: usize,
    solver: StationarySolver,
    repeats: usize,
) -> (f64, usize, &'static str, Vec<f64>) {
    let options = StationaryOptions {
        solver,
        ..StationaryOptions::default()
    };
    let mut best = f64::MAX;
    let mut kept = None;
    for _ in 0..repeats {
        let mut workspace = StationaryWorkspace::new();
        let start = Instant::now();
        let (p, stats) =
            stationary_distribution_with(inflow, out_rate, anchor, &options, None, &mut workspace)
                .expect("stationary solve succeeds");
        best = best.min(start.elapsed().as_secs_f64());
        kept = Some((stats.iterations, stats.solver, p));
    }
    let (iterations, provenance, p) = kept.expect("at least one repeat");
    (best, iterations, provenance, p)
}

/// Full sweep pass: one solve per gate point with the given solver,
/// optionally warm-started from the previous point. Returns (seconds,
/// warm-started solve count, total iterations).
fn run_sweep(solver: StationarySolver, warm_start: bool) -> (f64, usize, usize) {
    let start = Instant::now();
    let mut previous = None;
    let mut warm_used = 0;
    let mut iterations = 0;
    for point in 0..SWEEP_POINTS {
        let phase = point as f64 / (SWEEP_POINTS - 1) as f64;
        let vg = VG * (1.0 - SWEEP_HALF_RANGE + 2.0 * SWEEP_HALF_RANGE * phase);
        let equation =
            MasterEquation::new(chain_system(MASTER_ISLANDS, VDS, vg), MASTER_TEMPERATURE)
                .expect("valid system")
                .with_window(SWEEP_WINDOW)
                .expect("valid window")
                .with_solver(solver);
        let solution = equation
            .solve_warm(if warm_start { previous.as_ref() } else { None })
            .expect("sweep point solves");
        warm_used += usize::from(solution.stats().warm_started);
        iterations += solution.stats().iterations;
        previous = Some(solution);
    }
    (start.elapsed().as_secs_f64(), warm_used, iterations)
}

/// Best-of-two sweep passes; the sweep layout is deterministic, so both
/// passes do identical work and the min damps scheduler noise.
fn best_sweep(solver: StationarySolver, warm_start: bool) -> (f64, usize, usize) {
    let (a, warm_used, iterations) = run_sweep(solver, warm_start);
    let (b, _, _) = run_sweep(solver, warm_start);
    (a.min(b), warm_used, iterations)
}

fn main() {
    // Part 1: solver-only comparison on one assembled generator.
    let system = chain_system(MASTER_ISLANDS, VDS, VG);
    let equation = MasterEquation::new(system, MASTER_TEMPERATURE)
        .expect("valid system")
        .with_window(MASTER_WINDOW)
        .expect("valid window");
    let (inflow, out_rate, anchor) = equation.generator().expect("generator assembles");
    let states = states_of(MASTER_ISLANDS, MASTER_WINDOW);
    assert_eq!(inflow.rows(), states);

    let (gs_seconds, gs_iterations, gs_name, gs_p) =
        time_solver(&inflow, &out_rate, anchor, StationarySolver::GaussSeidel, 3);
    let (krylov_seconds, krylov_iterations, krylov_name, krylov_p) = time_solver(
        &inflow,
        &out_rate,
        anchor,
        StationarySolver::Krylov(Preconditioner::Ilu0),
        3,
    );
    assert_eq!(gs_name, "gauss-seidel");
    let max_diff = gs_p
        .iter()
        .zip(&krylov_p)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    assert!(
        max_diff < 1e-9,
        "solvers disagree on the bench generator: max |Δp| = {max_diff:e}"
    );
    let solver_speedup = gs_seconds / krylov_seconds;

    // Part 2: one full solve past the old 400k-state cap.
    let above_cap_states = states_of(ABOVE_CAP_ISLANDS, ABOVE_CAP_WINDOW);
    assert!(above_cap_states > OLD_STATE_CAP);
    let above_cap =
        MasterEquation::new(chain_system(ABOVE_CAP_ISLANDS, VDS, VG), MASTER_TEMPERATURE)
            .expect("valid system")
            .with_window(ABOVE_CAP_WINDOW)
            .expect("window fits the 2M-state default cap");
    let start = Instant::now();
    let solution = above_cap.solve().expect("above-cap solve succeeds");
    let above_cap_seconds = start.elapsed().as_secs_f64();
    assert_eq!(solution.probabilities().len(), above_cap_states);
    let mass: f64 = solution.probabilities().iter().sum();
    assert!((mass - 1.0).abs() < 1e-9);

    // Part 3: the gate sweep three ways. Generator assembly and (for the
    // Krylov runs) ILU setup sit inside every measurement, so the ratios
    // reflect end-to-end sweep throughput, not bare iteration counts.
    let krylov = StationarySolver::Krylov(Preconditioner::Ilu0);
    let (old_seconds, _, old_iterations) = best_sweep(StationarySolver::GaussSeidel, false);
    let (cold_seconds, cold_used, _) = best_sweep(krylov, false);
    let (warm_seconds, warm_used, warm_iterations) = best_sweep(krylov, true);
    assert_eq!(cold_used, 0);
    assert!(
        warm_used >= SWEEP_POINTS / 2,
        "warm seeding mostly rejected: only {warm_used}/{SWEEP_POINTS} solves warm-started"
    );
    let old_points_per_sec = SWEEP_POINTS as f64 / old_seconds;
    let cold_points_per_sec = SWEEP_POINTS as f64 / cold_seconds;
    let warm_points_per_sec = SWEEP_POINTS as f64 / warm_seconds;

    let json = format!(
        "{{\n  \"bench\": \"master_throughput\",\n  \
         \"temperature_kelvin\": {MASTER_TEMPERATURE},\n  \
         \"master_islands\": {MASTER_ISLANDS},\n  \"master_window\": {MASTER_WINDOW},\n  \
         \"master_states\": {states},\n  \
         \"gs_solve_ms\": {:.3},\n  \"gs_iterations\": {gs_iterations},\n  \
         \"krylov_solve_ms\": {:.3},\n  \"krylov_iterations\": {krylov_iterations},\n  \
         \"krylov_solver\": \"{krylov_name}\",\n  \
         \"solver_speedup\": {solver_speedup:.2},\n  \
         \"old_state_cap\": {OLD_STATE_CAP},\n  \
         \"above_cap_islands\": {ABOVE_CAP_ISLANDS},\n  \
         \"above_cap_window\": {ABOVE_CAP_WINDOW},\n  \
         \"above_cap_states\": {above_cap_states},\n  \
         \"above_cap_solve_seconds\": {above_cap_seconds:.3},\n  \
         \"sweep_points\": {SWEEP_POINTS},\n  \
         \"sweep_states\": {},\n  \
         \"sweep_warm_started_solves\": {warm_used},\n  \
         \"sweep_gs_iterations\": {old_iterations},\n  \
         \"sweep_krylov_warm_iterations\": {warm_iterations},\n  \
         \"old_gs_cold_points_per_sec\": {old_points_per_sec:.2},\n  \
         \"cold_points_per_sec\": {cold_points_per_sec:.2},\n  \
         \"warm_points_per_sec\": {warm_points_per_sec:.2},\n  \
         \"sweep_speedup_vs_gs_cold\": {:.3},\n  \
         \"warm_speedup\": {:.3}\n}}\n",
        gs_seconds * 1e3,
        krylov_seconds * 1e3,
        states_of(MASTER_ISLANDS, SWEEP_WINDOW),
        warm_points_per_sec / old_points_per_sec,
        warm_points_per_sec / cold_points_per_sec,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_master.json");
    std::fs::write(path, &json).expect("BENCH_master.json is writable");
    println!("wrote {path}:\n{json}");
}
