//! Criterion bench: dense LU factorisation and solve versus matrix size —
//! the inner kernel of both the capacitance-matrix electrostatics and the
//! SPICE engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use se_numeric::{LuDecomposition, Matrix};

fn build_diagonally_dominant(n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
        }
        m[(i, i)] += n as f64;
    }
    m
}

fn lu_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_solve");
    group.sample_size(20);
    for n in [8usize, 32, 128] {
        let matrix = build_diagonally_dominant(n);
        let rhs = vec![1.0; n];
        group.bench_with_input(BenchmarkId::new("factorise_and_solve", n), &n, |b, _| {
            b.iter(|| {
                let lu = LuDecomposition::new(&matrix).expect("well conditioned");
                lu.solve(&rhs).expect("solve succeeds")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, lu_scaling);
criterion_main!(benches);
