//! Criterion bench: Newton–Raphson DC operating-point solution for the
//! hybrid SET/MOSFET cell and for a ladder of nonlinear devices.

use criterion::{criterion_group, criterion_main, Criterion};
use se_spice::Circuit;

fn newton_dc(c: &mut Criterion) {
    let mut group = c.benchmark_group("newton_dc");
    group.sample_size(20);

    let mvl_deck = "literal gate\nVDD vdd 0 20m\nVB bias 0 0.46\nVIN in 0 0.08\nM1 vdd bias out NMOS\nX1 out in 0 SET CG=1a CS=0.5a CD=0.5a RS=100k RD=100k\n";
    let mvl = se_netlist::parse_deck(mvl_deck).expect("deck parses");
    group.bench_function("set_mos_literal_gate", |b| {
        let circuit = Circuit::with_temperature(&mvl, 4.2).expect("circuit builds");
        b.iter(|| circuit.dc_operating_point().expect("op converges"));
    });

    // A chain of diode-loaded stages exercises the nonlinear iteration.
    let mut deck = String::from("diode ladder\nV1 n0 0 5\n");
    for i in 0..20 {
        deck.push_str(&format!("R{i} n{i} n{} 1k\nD{i} n{} 0\n", i + 1, i + 1));
    }
    let ladder = se_netlist::parse_deck(&deck).expect("deck parses");
    group.bench_function("diode_ladder_20_stages", |b| {
        let circuit = Circuit::new(&ladder).expect("circuit builds");
        b.iter(|| circuit.dc_operating_point().expect("op converges"));
    });
    group.finish();
}

criterion_group!(benches, newton_dc);
criterion_main!(benches);
