//! Criterion bench: bit throughput of the SET/CMOS random-number generator
//! (raw and von Neumann corrected).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use se_logic::noise::TelegraphNoiseSource;
use se_logic::rng::{von_neumann_corrector, SetMosRng};

fn rng_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_mos_rng");
    group.sample_size(10);

    group.bench_function("generate_1024_corrected_bits", |b| {
        b.iter(|| {
            let mut generator = SetMosRng::reference().expect("generator builds");
            let mut rng = StdRng::seed_from_u64(1);
            generator.generate(&mut rng, 1024).expect("bits generated")
        });
    });

    group.bench_function("telegraph_trace_8192_samples", |b| {
        b.iter(|| {
            let mut source = TelegraphNoiseSource::reference().expect("source builds");
            let mut rng = StdRng::seed_from_u64(2);
            source
                .sample_trace(&mut rng, 5e-6, 8192)
                .expect("trace generated")
        });
    });

    group.bench_function("von_neumann_corrector_64k", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let raw: Vec<bool> = (0..65_536)
            .map(|_| rand::Rng::gen::<bool>(&mut rng))
            .collect();
        b.iter(|| von_neumann_corrector(&raw));
    });
    group.finish();
}

criterion_group!(benches, rng_throughput);
criterion_main!(benches);
