//! Criterion bench of the unified sweep layer: a 64×64 stability map of the
//! reference SET through the master-equation engine, serial vs parallel.
//!
//! Besides the criterion timings it writes `BENCH_sweep.json` at the
//! workspace root with the median wall-clock of both paths and the measured
//! speedup, so CI can track sweep throughput over time.

use criterion::{criterion_group, criterion_main, Criterion};
use se_bench::reference_system;
use se_engine::SweepRunner;
use se_montecarlo::MasterEquation;
use se_units::constants::E;
use std::time::Instant;

const GRID: usize = 64;

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn time_map(runner: &SweepRunner, samples: usize) -> f64 {
    let period = E / se_bench::REFERENCE_C_GATE;
    let engine = MasterEquation::new(reference_system(0.0, 0.0, 0.0), 1.0)
        .expect("reference system is valid");
    let gate_values = se_engine::linspace(0.0, 1.5 * period, GRID).expect("valid gate grid");
    let drain_values = se_engine::linspace(-0.12, 0.12, GRID).expect("valid drain grid");
    let times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let map = runner
                .stability_map(&engine, "gate", &gate_values, "drain", &drain_values, "JD")
                .expect("map solves");
            assert_eq!(map.as_flat().len(), GRID * GRID);
            start.elapsed().as_secs_f64()
        })
        .collect();
    median_seconds(times)
}

fn sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(5);

    group.bench_function("stability_map_64x64_serial", |b| {
        let runner = SweepRunner::new().serial();
        b.iter(|| time_map(&runner, 1));
    });
    group.bench_function("stability_map_64x64_parallel", |b| {
        let runner = SweepRunner::new();
        b.iter(|| time_map(&runner, 1));
    });
    group.finish();

    // Structured record for CI tracking.
    let serial = time_map(&SweepRunner::new().serial(), 3);
    let parallel = time_map(&SweepRunner::new(), 3);
    let threads = rayon::current_num_threads();
    let json = format!(
        "{{\n  \"bench\": \"sweep_throughput\",\n  \"grid\": {GRID},\n  \"points\": {},\n  \"threads\": {threads},\n  \"serial_seconds\": {serial:.6},\n  \"parallel_seconds\": {parallel:.6},\n  \"speedup\": {:.3},\n  \"points_per_second_parallel\": {:.1}\n}}\n",
        GRID * GRID,
        serial / parallel,
        GRID as f64 * GRID as f64 / parallel,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, &json).expect("BENCH_sweep.json is writable");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, sweep_throughput);
criterion_main!(benches);
