//! Criterion bench of the unified transient layer: a 32-run seed ensemble
//! of pulsed KMC transients of the reference SET through the
//! `TransientRunner`, serial vs parallel.
//!
//! Besides the criterion timings it writes `BENCH_transient.json` at the
//! workspace root with the median wall-clock of both paths and the
//! measured speedup, so CI tracks time-domain throughput alongside the
//! stationary `BENCH_sweep.json` record.

use criterion::{criterion_group, criterion_main, Criterion};
use se_bench::reference_system;
use se_engine::{TransientRunner, Waveform};
use se_montecarlo::{MonteCarloSimulator, SimulationOptions};
use se_units::constants::E;
use std::time::Instant;

const REPEATS: usize = 32;
const WINDOWS: usize = 40;

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn ensemble(runner: &TransientRunner) -> usize {
    let vg = E / (2.0 * se_bench::REFERENCE_C_GATE);
    let engine = MonteCarloSimulator::new(
        reference_system(0.0, vg, 0.0),
        SimulationOptions::new(1.0).with_seed(1),
    )
    .expect("reference system is valid");
    let pulse = Waveform::pulse(0.0, 1e-3, 5e-9, 5e-9, 10e-9).expect("valid pulse");
    let times: Vec<f64> = (1..=WINDOWS).map(|i| i as f64 * 2.5e-9).collect();
    let traces = runner
        .run_repeats(&engine, &[("drain", pulse)], &["JD"], &times, REPEATS)
        .expect("ensemble solves");
    assert_eq!(traces.len(), REPEATS);
    traces.iter().map(se_engine::TransientTrace::len).sum()
}

fn time_ensemble(runner: &TransientRunner, samples: usize) -> f64 {
    let times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let total = ensemble(runner);
            assert_eq!(total, REPEATS * WINDOWS);
            start.elapsed().as_secs_f64()
        })
        .collect();
    median_seconds(times)
}

fn transient_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_throughput");
    group.sample_size(5);

    group.bench_function("kmc_pulse_ensemble_32_serial", |b| {
        let runner = TransientRunner::new().serial();
        b.iter(|| ensemble(&runner));
    });
    group.bench_function("kmc_pulse_ensemble_32_parallel", |b| {
        let runner = TransientRunner::new();
        b.iter(|| ensemble(&runner));
    });
    group.finish();

    // Structured record for CI tracking.
    let serial = time_ensemble(&TransientRunner::new().serial(), 3);
    let parallel = time_ensemble(&TransientRunner::new(), 3);
    let threads = rayon::current_num_threads();
    let json = format!(
        "{{\n  \"bench\": \"transient_throughput\",\n  \"repeats\": {REPEATS},\n  \"windows\": {WINDOWS},\n  \"threads\": {threads},\n  \"serial_seconds\": {serial:.6},\n  \"parallel_seconds\": {parallel:.6},\n  \"speedup\": {:.3},\n  \"runs_per_second_parallel\": {:.1}\n}}\n",
        serial / parallel,
        REPEATS as f64 / parallel,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transient.json");
    std::fs::write(path, &json).expect("BENCH_transient.json is writable");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, transient_throughput);
criterion_main!(benches);
