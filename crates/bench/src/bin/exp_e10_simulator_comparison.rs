//! Experiment E10 — SPICE-with-SET-models versus Monte-Carlo simulation,
//! and the case for the hybrid combination.
//!
//! Part (a) compares the accuracy of the analytic compact model, the kinetic
//! Monte-Carlo engine and the exact master equation on a single SET.
//! Part (b) measures how the run time of the master-equation / Monte-Carlo
//! engines grows with the number of islands while the SPICE engine's cost
//! stays essentially flat — the size-versus-physics trade-off the paper
//! describes, and the reason it calls for combining both.

use se_bench::{chain_system, reference_set, reference_system};
use single_electronics::montecarlo::{MasterEquation, MonteCarloSimulator, SimulationOptions};
use single_electronics::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let temperature = 1.0;
    let set = reference_set();
    let period = set.gate_period();
    let vds = 1e-3;

    // (a) Accuracy on a single SET.
    let compact = SetAnalyticModel::new(
        se_netlist::SetParams::symmetric(1e-18, 0.5e-18, 100e3),
        temperature,
    );
    let mut accuracy = Table::new(
        "E10a: drain current of one SET at Vds = 1 mV [nA] — engine comparison",
        &[
            "Vg / period",
            "master equation",
            "kinetic MC",
            "analytic (SPICE) model",
        ],
    );
    // Master-equation and kinetic-MC engines behind the unified trait, both
    // swept in parallel by the same runner; the compact model stays a plain
    // closed-form evaluation.
    let fracs = [0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9];
    let gate_values: Vec<f64> = fracs.iter().map(|f| f * period).collect();
    let runner = SweepRunner::new().with_seed(10);
    let master_engine = MasterEquation::new(reference_system(vds, 0.0, 0.0), temperature)?;
    let master_sweep = runner.run(&master_engine, "gate", &gate_values, "JD")?;
    let kmc_engine = MonteCarloSimulator::new(
        reference_system(vds, 0.0, 0.0),
        SimulationOptions::new(temperature).with_events_per_solve(40_000),
    )?;
    let kmc_sweep = runner.run(&kmc_engine, "gate", &gate_values, "JD")?;
    for ((&frac, m), k) in fracs.iter().zip(&master_sweep).zip(&kmc_sweep) {
        let compact_current = compact.drain_current(frac * period, vds);
        accuracy.add_row(&[
            format!("{frac:.2}"),
            format!("{:.4}", m.current * 1e9),
            format!("{:.4}", k.current * 1e9),
            format!("{:.4}", compact_current * 1e9),
        ]);
    }
    println!("{accuracy}");

    // High-bias divergence of the compact model.
    let exact_high = set.current(0.4, 0.0, 0.0, temperature)?;
    let compact_high = compact.drain_current(0.0, 0.4);
    println!(
        "at Vds = 0.4 V the compact model gives {:.2} nA vs the exact {:.2} nA (staircase missing)\n",
        compact_high * 1e9,
        exact_high * 1e9
    );

    // (b) Run-time scaling with circuit size.
    let mut scaling = Table::new(
        "E10b: solve time vs number of islands (detailed engines) and SPICE nodes",
        &[
            "islands",
            "master equation [ms]",
            "kinetic MC, 10k events [ms]",
            "SPICE RC ladder, same node count [ms]",
        ],
    );
    for &islands in &[1usize, 2, 3, 4] {
        let system = chain_system(islands, 1e-3, 0.08);

        let start = Instant::now();
        let window = if islands <= 2 { 3 } else { 2 };
        let _ = MasterEquation::new(system.clone(), temperature)?
            .with_window(window)?
            .solve()?;
        let master_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let mut kmc =
            MonteCarloSimulator::new(system, SimulationOptions::new(temperature).with_seed(1))?;
        let _ = kmc.run_events(10_000)?;
        let kmc_ms = start.elapsed().as_secs_f64() * 1e3;

        // A SPICE resistor ladder with the same number of internal nodes.
        let mut deck = String::from("ladder\nV1 n0 0 1m\n");
        for i in 0..islands {
            deck.push_str(&format!("R{i} n{i} n{} 100k\n", i + 1));
        }
        deck.push_str(&format!("Rload n{islands} 0 100k\n"));
        let netlist = se_netlist::parse_deck(&deck)?;
        let circuit = Circuit::new(&netlist)?;
        let start = Instant::now();
        let _ = circuit.dc_operating_point()?;
        let spice_ms = start.elapsed().as_secs_f64() * 1e3;

        scaling.add_row(&[
            islands.to_string(),
            format!("{master_ms:.2}"),
            format!("{kmc_ms:.2}"),
            format!("{spice_ms:.3}"),
        ]);
    }
    // The "kinetic MC" column above uses 10k events per point; production
    // sweeps need 10-100x more for smooth curves, which is the practical
    // size limit the paper refers to.
    println!("{scaling}");
    println!("the detailed engines blow up with island count (state space / event statistics), the SPICE engine does not — hence the hybrid co-simulator of `se-hybrid`");
    Ok(())
}
