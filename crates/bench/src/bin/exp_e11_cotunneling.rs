//! Experiment E11 — higher-order tunnelling (cotunneling) inside the
//! blockade region.
//!
//! The ratio of the inelastic-cotunneling leakage to the sequential
//! (orthodox, first-order) leakage deep in blockade, as a function of the
//! junction resistance in units of the resistance quantum — the physics the
//! paper lists as missing from SPICE-level SET models.

use single_electronics::orthodox::cotunneling::{
    blockade_leakage_ratio, cotunneling_rate, CotunnelingPath,
};
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let charging_energy = 5e-21; // ≈ 31 meV
    let bias_energy = 0.1 * charging_energy;
    let temperature = 1.0;

    let mut table = Table::new(
        "E11: cotunneling vs sequential leakage deep in blockade (T = 1 K, eV = 0.1 E_C)",
        &[
            "R_t / R_Q",
            "cotunneling rate [1/s]",
            "cotunneling / sequential",
        ],
    );
    for &ratio in &[2.0, 5.0, 10.0, 50.0, 200.0, 1000.0] {
        let resistance = ratio * RESISTANCE_QUANTUM;
        let path = CotunnelingPath {
            resistance_1: resistance,
            resistance_2: resistance,
            intermediate_energy_1: charging_energy,
            intermediate_energy_2: charging_energy,
        };
        let rate = cotunneling_rate(&path, -bias_energy, temperature)?;
        let leakage =
            blockade_leakage_ratio(resistance, charging_energy, bias_energy, temperature)?;
        table.add_row(&[
            format!("{ratio:.0}"),
            format!("{rate:.3e}"),
            if leakage.is_finite() {
                format!("{leakage:.3e}")
            } else {
                "inf (sequential leakage underflows)".to_string()
            },
        ]);
    }
    println!("{table}");
    println!("cotunneling falls only as (R_Q/R_t)², while sequential leakage is exponentially suppressed —");
    println!("orthodox-only (and SPICE-level) simulation underestimates blockade leakage for transparent junctions");
    Ok(())
}
