//! Experiment E12 — the speed price of AM/FM-coded logic.
//!
//! An AM/FM gate needs several Coulomb-oscillation periods per decision, but
//! each period only costs a few sub-picosecond tunnelling events, so the
//! resulting gate delays stay deep in the gigahertz regime — the paper's
//! "plenty of room to realise a fast SET logic". Part two checks the claim
//! in the time domain: a battery of drain pulse trains at increasing clock
//! rates runs through the kinetic Monte-Carlo [`TransientEngine`] via the
//! [`TransientRunner`] (one seeded run per clock rate, each on its own
//! sample grid), and the gate keeps resolving on/off windows well into the
//! gigahertz regime.

use se_bench::reference_system;
use single_electronics::logic::amfm::GateSpeedModel;
use single_electronics::montecarlo::{MonteCarloSimulator, SimulationOptions};
use single_electronics::orthodox::rates::intrinsic_tunnel_time;
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Drive energy of roughly one charging energy across a 100 kΩ junction.
    let model = GateSpeedModel {
        tunnel_resistance: 100e3,
        drive_energy: 5e-21,
        tunnel_events_per_period: 4.0,
    };
    println!(
        "intrinsic tunnel time e²R/|ΔF| : {:.3e} s (sub-picosecond)",
        intrinsic_tunnel_time(-5e-21, 100e3)
    );

    let mut table = Table::new(
        "E12: gate delay and maximum clock vs number of oscillation periods per decision",
        &[
            "periods",
            "gate delay [ps]",
            "max clock [GHz]",
            "relative to level-coded",
        ],
    );
    let level_delay = model.gate_delay(1);
    for &periods in &[1usize, 2, 4, 8, 16, 32] {
        let delay = model.gate_delay(periods);
        table.add_row(&[
            periods.to_string(),
            format!("{:.2}", delay * 1e12),
            format!("{:.1}", model.max_clock_frequency(periods) / 1e9),
            format!("{:.0}x", delay / level_delay),
        ]);
    }
    println!("{table}");
    println!("even a 32-period FM decision stays above 1 GHz — the modulation scheme costs speed but not viability");

    // Part two: verify the headroom with the event clock itself. Each
    // clock rate pulses the drain of the reference SET (gate at the
    // conductance peak) on its own half-period sample grid, so the rates
    // run as separate deterministic KMC transients (seeded per clock)
    // rather than as one ensemble — the cross-scenario ensemble path is
    // exercised by tests/integration_transient.rs.
    let vg = E / (2.0 * 1e-18);
    let kmc = MonteCarloSimulator::new(
        reference_system(0.0, vg, 0.0),
        SimulationOptions::new(1.0).with_seed(12),
    )?;
    let clocks_ghz = [0.5, 1.0, 2.0, 4.0];

    let mut switching = Table::new(
        "E12b: pulse-train switching through the KMC transient engine (32 clock periods each)",
        &[
            "clock [GHz]",
            "mean on-window I [nA]",
            "mean off-window I [nA]",
            "on/off",
        ],
    );
    for (index, &f) in clocks_ghz.iter().enumerate() {
        let period = 1e-9 / f;
        let pulse = Waveform::pulse(0.0, 1e-3, 0.5 * period, 0.5 * period, period)?;
        // Half-period samples over 32 periods: at multi-GHz clocks a
        // single half-period window holds only a handful of tunnel
        // events, so the on/off decision needs the average over many
        // periods — exactly the paper's "several periods per decision".
        let windows = 64;
        let times: Vec<f64> = (1..=windows).map(|i| i as f64 * 0.5 * period).collect();
        let trace = TransientRunner::new().with_seed(99 + index as u64).run(
            &kmc,
            &[("drain", pulse)],
            &["JD"],
            &times,
        )?;
        let mean = |parity: usize| {
            let values: Vec<f64> = (0..windows)
                .filter(|i| i % 2 == parity)
                .map(|i| trace.at(i, 0))
                .collect();
            values.iter().sum::<f64>() / values.len() as f64
        };
        // Window k covers (t_{k-1}, t_k]; drives are evaluated at the
        // window end, so even indices (ending at half-period marks) are the
        // on-phase windows.
        let (on, off) = (mean(0), mean(1));
        switching.add_row(&[
            format!("{f}"),
            format!("{:.3}", on * 1e9),
            format!("{:.3}", off * 1e9),
            format!("{:.1}", (on / off.abs().max(1e-12)).abs()),
        ]);
    }
    println!("{switching}");
    println!("the on/off contrast survives multi-gigahertz clocking — switching is limited by the sub-picosecond tunnel time, not the modulation scheme");
    Ok(())
}
