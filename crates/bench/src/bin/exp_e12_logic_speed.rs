//! Experiment E12 — the speed price of AM/FM-coded logic.
//!
//! An AM/FM gate needs several Coulomb-oscillation periods per decision, but
//! each period only costs a few sub-picosecond tunnelling events, so the
//! resulting gate delays stay deep in the gigahertz regime — the paper's
//! "plenty of room to realise a fast SET logic".

use single_electronics::logic::amfm::GateSpeedModel;
use single_electronics::orthodox::rates::intrinsic_tunnel_time;
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Drive energy of roughly one charging energy across a 100 kΩ junction.
    let model = GateSpeedModel {
        tunnel_resistance: 100e3,
        drive_energy: 5e-21,
        tunnel_events_per_period: 4.0,
    };
    println!(
        "intrinsic tunnel time e²R/|ΔF| : {:.3e} s (sub-picosecond)",
        intrinsic_tunnel_time(-5e-21, 100e3)
    );

    let mut table = Table::new(
        "E12: gate delay and maximum clock vs number of oscillation periods per decision",
        &[
            "periods",
            "gate delay [ps]",
            "max clock [GHz]",
            "relative to level-coded",
        ],
    );
    let level_delay = model.gate_delay(1);
    for &periods in &[1usize, 2, 4, 8, 16, 32] {
        let delay = model.gate_delay(periods);
        table.add_row(&[
            periods.to_string(),
            format!("{:.2}", delay * 1e12),
            format!("{:.1}", model.max_clock_frequency(periods) / 1e9),
            format!("{:.0}x", delay / level_delay),
        ]);
    }
    println!("{table}");
    println!("even a 32-period FM decision stays above 1 GHz — the modulation scheme costs speed but not viability");
    Ok(())
}
