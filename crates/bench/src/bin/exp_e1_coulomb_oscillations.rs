//! Experiment E1 — Coulomb oscillations and the background-charge phase
//! shift.
//!
//! Reproduces the paper's statement that the SET Id–Vg characteristic is
//! periodic with period `e/C_g`, and that a background charge shifts only
//! its phase, never its period or amplitude.

use se_bench::reference_set;
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = reference_set();
    let period = set.gate_period();
    let temperature = 1.0;
    let vds = 1e-3;
    let backgrounds = [0.0, 0.2, 0.5];

    let mut table = Table::new(
        "E1: Id(Vg) over two periods at Vds = 1 mV, T = 1 K, for q0 = 0, 0.2 e, 0.5 e [nA]",
        &["Vg / period", "q0 = 0", "q0 = 0.2", "q0 = 0.5"],
    );
    let points = 41;
    // One parallel gate sweep per background charge through the unified
    // sweep layer.
    let sweeps: Vec<Vec<_>> = backgrounds
        .iter()
        .map(|&q0| set.gate_sweep(vds, 0.0, 2.0 * period, points, q0, temperature))
        .collect::<Result<_, _>>()?;
    for i in 0..points {
        let mut row = vec![format!("{:.3}", sweeps[0][i].vgs / period)];
        for sweep in &sweeps {
            row.push(format!("{:.4}", sweep[i].current * 1e9));
        }
        table.add_row(&row);
    }
    println!("{table}");

    // Summary: period, amplitude and phase per background charge.
    let mut summary = Table::new(
        "E1 summary: period and amplitude are q0-invariant, the phase is not",
        &[
            "q0 [e]",
            "period [mV]",
            "peak current [nA]",
            "peak position / period",
        ],
    );
    for &q0 in &backgrounds {
        let sweep = set.gate_sweep(vds, 0.0, period, 201, q0, temperature)?;
        let peak = sweep
            .iter()
            .max_by(|a, b| a.current.partial_cmp(&b.current).expect("finite"))
            .expect("sweep is non-empty");
        summary.add_row(&[
            format!("{q0:.1}"),
            format!("{:.3}", period * 1e3),
            format!("{:.4}", peak.current * 1e9),
            format!("{:.3}", peak.vgs / period),
        ]);
    }
    println!("{summary}");
    Ok(())
}
