//! Experiment E2 — Coulomb blockade and the Coulomb staircase.
//!
//! Drain-voltage sweeps of a symmetric and of a strongly asymmetric SET at
//! the gate valley: the symmetric device shows a smooth blockade knee, the
//! asymmetric one the classic current staircase with steps every `e/CΣ`.

use single_electronics::orthodox::set::SingleElectronTransistor;
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let temperature = 1.0;
    let symmetric = SingleElectronTransistor::symmetric(0.2e-18, 0.5e-18, 100e3)?;
    let asymmetric = SingleElectronTransistor::new(0.2e-18, 0.5e-18, 0.5e-18, 50e3, 5e6)?;

    let mut table = Table::new(
        "E2: Id(Vds) at the gate valley, T = 1 K [nA]",
        &[
            "Vds [mV]",
            "symmetric SET",
            "asymmetric SET (R_d = 100 R_s)",
        ],
    );
    let points = 41;
    // Two parallel drain sweeps through the unified sweep layer.
    let sym = symmetric.drain_sweep(0.0, 0.0, 0.5, points, 0.0, temperature)?;
    let asym = asymmetric.drain_sweep(0.0, 0.0, 0.5, points, 0.0, temperature)?;
    for (s, a) in sym.iter().zip(&asym) {
        table.add_row(&[
            format!("{:.1}", s.vds * 1e3),
            format!("{:.4}", s.current * 1e9),
            format!("{:.5}", a.current * 1e9),
        ]);
    }
    println!("{table}");
    println!(
        "blockade threshold e/CΣ = {:.1} mV; staircase period e/CΣ for the asymmetric device",
        se_units::constants::E / asymmetric.total_capacitance() * 1e3
    );
    Ok(())
}
