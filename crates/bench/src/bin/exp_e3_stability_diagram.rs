//! Experiment E3 — the Coulomb-diamond stability map.
//!
//! Computes the drain current on a gate × drain voltage grid with the
//! master-equation engine, showing the diamond-shaped blockade regions whose
//! touching points repeat every `e/C_g` along the gate axis.

use se_bench::reference_system;
use single_electronics::montecarlo::sweep::stability_map_master;
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let temperature = 1.0;
    let period = E / se_bench::REFERENCE_C_GATE;
    let gate_points = 13;
    let drain_points = 13;
    let gate_values: Vec<f64> = (0..gate_points)
        .map(|i| 1.5 * period * i as f64 / (gate_points - 1) as f64)
        .collect();
    let drain_values: Vec<f64> = (0..drain_points)
        .map(|i| -0.12 + 0.24 * i as f64 / (drain_points - 1) as f64)
        .collect();

    let system = reference_system(0.0, 0.0, 0.0);
    let map = stability_map_master(
        &system,
        "gate",
        &gate_values,
        "drain",
        &drain_values,
        "JD",
        temperature,
    )?;

    let headers: Vec<String> = std::iter::once("Vg/period \\ Vds [mV]".to_string())
        .chain(drain_values.iter().map(|v| format!("{:.0}", v * 1e3)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("E3: |Id| on the stability plane [nA]", &header_refs);
    for (vg, row) in gate_values.iter().zip(&map) {
        let mut cells = vec![format!("{:.2}", vg / period)];
        cells.extend(row.iter().map(|i| format!("{:.2}", i.abs() * 1e9)));
        table.add_row(&cells);
    }
    println!("{table}");
    println!("zeros trace out the Coulomb diamonds; they close at Vg = (n + 1/2)·e/Cg");
    Ok(())
}
