//! Experiment E3 — the Coulomb-diamond stability map.
//!
//! Computes the drain current on a gate × drain voltage grid with the
//! master-equation engine, showing the diamond-shaped blockade regions whose
//! touching points repeat every `e/C_g` along the gate axis.

use se_bench::reference_system;
use single_electronics::engine::linspace;
use single_electronics::montecarlo::MasterEquation;
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let temperature = 1.0;
    let period = E / se_bench::REFERENCE_C_GATE;
    let gate_values = linspace(0.0, 1.5 * period, 13)?;
    let drain_values = linspace(-0.12, 0.12, 13)?;

    // The master-equation engine behind the unified trait; every grid point
    // of the map is an independent parallel task.
    let engine = MasterEquation::new(reference_system(0.0, 0.0, 0.0), temperature)?;
    let map = SweepRunner::new().stability_map(
        &engine,
        "gate",
        &gate_values,
        "drain",
        &drain_values,
        "JD",
    )?;

    let headers: Vec<String> = std::iter::once("Vg/period \\ Vds [mV]".to_string())
        .chain(drain_values.iter().map(|v| format!("{:.0}", v * 1e3)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("E3: |Id| on the stability plane [nA]", &header_refs);
    for (i, vg) in map.outer_values().iter().enumerate() {
        let mut cells = vec![format!("{:.2}", vg / period)];
        cells.extend(map.row(i).iter().map(|c| format!("{:.2}", c.abs() * 1e9)));
        table.add_row(&cells);
    }
    println!("{table}");
    println!("zeros trace out the Coulomb diamonds; they close at Vg = (n + 1/2)·e/Cg");
    Ok(())
}
