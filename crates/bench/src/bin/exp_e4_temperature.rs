//! Experiment E4 — temperature washout and the size needed for
//! room-temperature operation.
//!
//! The oscillation modulation depth of the reference SET versus temperature,
//! and the island capacitance / size required to keep `E_C ≥ 10 k_BT` at a
//! given temperature — the paper's "room temperature operation requires
//! structures in the few nanometre regime".

use se_bench::reference_set;
use single_electronics::prelude::*;
use single_electronics::units::temperature::{equivalent_island_diameter, required_capacitance};
use single_electronics::units::Kelvin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = reference_set();
    let mut table = Table::new(
        "E4a: Coulomb-oscillation modulation depth vs temperature (reference SET, E_C = 40 meV)",
        &["T [K]", "modulation depth"],
    );
    for &t in &[0.1, 1.0, 4.2, 20.0, 77.0, 150.0, 300.0, 600.0] {
        table.add_row(&[
            format!("{t:.1}"),
            format!("{:.3}", set.modulation_depth(1e-4, 0.0, t)?),
        ]);
    }
    println!("{table}");

    let mut sizes = Table::new(
        "E4b: island capacitance and size required for E_C = 10 k_BT",
        &["T [K]", "CΣ [aF]", "equivalent island diameter [nm]"],
    );
    for &t in &[4.2, 77.0, 300.0] {
        let c = required_capacitance(Kelvin(t), 10.0);
        sizes.add_row(&[
            format!("{t:.1}"),
            format!("{:.3}", c.0 * 1e18),
            format!("{:.2}", equivalent_island_diameter(c) * 1e9),
        ]);
    }
    println!("{sizes}");
    Ok(())
}
