//! Experiment E5 — voltage gain versus operating temperature.
//!
//! The SET voltage gain is `C_g/C_d`; raising it means a larger gate
//! capacitance, a larger total island capacitance and therefore a lower
//! maximum operating temperature — the trade-off the paper cites as the
//! reason to pair SETs with MOSFET gain stages.

use single_electronics::orthodox::set::SingleElectronTransistor;
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c_junction = 0.5e-18;
    let mut table = Table::new(
        "E5: gain Cg/Cd vs charging energy and maximum operating temperature (E_C ≥ 10 k_BT)",
        &["Cg/Cd", "Cg [aF]", "E_C [meV]", "T_max [K]"],
    );
    for &ratio in &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let c_gate = ratio * c_junction;
        let set = SingleElectronTransistor::symmetric(c_gate, c_junction, 100e3)?;
        table.add_row(&[
            format!("{ratio:.2}"),
            format!("{:.2}", c_gate * 1e18),
            format!("{:.1}", set.charging_energy() / E * 1e3),
            format!("{:.1}", set.max_operating_temperature(10.0)),
        ]);
    }
    println!("{table}");
    println!("gain > 1 is possible but costs operating temperature; a MOSFET gain stage avoids the trade-off");
    Ok(())
}
