//! Experiment E6 — background-charge sensitivity of level-coded logic
//! versus AM/FM-coded logic.
//!
//! Bit-error rate of the level-coded SET inverter and of the FM-coded gate
//! under uniformly distributed random background charges, plus a check that
//! the AM-coded gate decodes correctly across the whole disorder range.

use rand::rngs::StdRng;
use rand::SeedableRng;
use single_electronics::logic::amfm::{
    fm_coded_bit_error_rate, level_coded_bit_error_rate, AmCodedGate, FmCodedGate,
};
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inverter = SetInverter::reference()?;
    let fm_gate = FmCodedGate::reference()?;
    let am_gate = AmCodedGate::reference()?;
    let mut rng = StdRng::seed_from_u64(6);

    let mut table = Table::new(
        "E6: bit-error rate vs background-charge disorder (q0 uniform in [-q0max, q0max])",
        &[
            "q0max [e]",
            "level-coded BER",
            "FM-coded BER",
            "AM-coded errors (9 samples)",
        ],
    );
    for &q0_max in &[0.05, 0.1, 0.2, 0.35, 0.5] {
        let level = level_coded_bit_error_rate(&inverter, &mut rng, q0_max, 80)?;
        let fm = fm_coded_bit_error_rate(&fm_gate, &mut rng, q0_max, 16)?;
        let mut am_errors = 0usize;
        for i in 0..9 {
            let q0 = q0_max * (i as f64 / 4.0 - 1.0);
            if !am_gate.evaluate(true, q0)? || am_gate.evaluate(false, q0)? {
                am_errors += 1;
            }
        }
        table.add_row(&[
            format!("{q0_max:.2}"),
            format!("{level:.3}"),
            format!("{fm:.3}"),
            am_errors.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "level-coded logic degrades towards a 50% error rate; AM/FM-coded logic stays error-free"
    );
    Ok(())
}
