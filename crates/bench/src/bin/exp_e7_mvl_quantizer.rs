//! Experiment E7 — the merged SET/MOSFET multiple-valued literal gate
//! (Inokawa et al.).
//!
//! Transfer curve of the two-device cell solved by the SPICE engine with the
//! analytic SET compact model, and the number of distinct output plateaus —
//! the functionality that a pure-CMOS implementation would need many
//! transistors to replicate.

use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gate = MvlGate::reference();
    let period = gate.input_period();
    let curve = gate.transfer_curve(0.0, 4.0 * period, 161)?;

    let mut table = Table::new(
        "E7: SET/MOSFET literal-gate transfer curve (4 input periods, every 4th point)",
        &["Vin / period", "Vout [mV]"],
    );
    for (i, (v_in, v_out)) in curve.iter().enumerate() {
        if i % 4 == 0 {
            table.add_row(&[
                format!("{:.3}", v_in / period),
                format!("{:.3}", v_out * 1e3),
            ]);
        }
    }
    println!("{table}");

    let plateaus = MvlGate::count_plateaus(&curve, 0.1 * gate.supply);
    let outputs: Vec<f64> = curve.iter().map(|&(_, v)| v).collect();
    let swing = outputs.iter().cloned().fold(f64::MIN, f64::max)
        - outputs.iter().cloned().fold(f64::MAX, f64::min);
    println!("output plateaus over 4 periods : {plateaus}");
    println!(
        "output swing                   : {:.2} mV of a {:.0} mV supply",
        swing * 1e3,
        gate.supply * 1e3
    );
    println!("devices used                   : 1 SET + 1 MOSFET");
    Ok(())
}
