//! Experiment E8 — the SET/CMOS random-number generator (Uchida et al.).
//!
//! Regenerates the three quantitative claims the paper quotes: the ≈0.12 V
//! RMS telegraph noise, the statistical quality of the generated bitstream,
//! and the ~7 orders of magnitude power / ~8 orders of magnitude area
//! advantage over a conventional CMOS generator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use single_electronics::logic::noise::TelegraphNoiseSource;
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(8);

    // Telegraph-noise RMS.
    let mut source = TelegraphNoiseSource::reference()?;
    let trace = source.sample_trace(&mut rng, 5e-6, 8000)?;
    let rms = TelegraphNoiseSource::rms_noise(&trace);

    // Bitstream quality.
    let mut generator = SetMosRng::reference()?;
    let bits = generator.generate(&mut rng, 8192)?;
    let report = RandomnessReport::evaluate(&bits)?;

    let mut quality = Table::new(
        "E8a: SET/CMOS RNG output quality (8192 bits, von Neumann corrected)",
        &["test", "statistic", "passed"],
    );
    for (name, outcome) in [
        ("monobit", report.monobit),
        ("runs", report.runs),
        ("serial correlation", report.serial_correlation),
        ("block chi-squared", report.block_chi_squared),
    ] {
        quality.add_row(&[
            name.to_string(),
            format!("{:+.4}", outcome.statistic),
            outcome.passed.to_string(),
        ]);
    }
    println!("{quality}");

    // Comparison against the CMOS baseline.
    let comparison = RngComparison::with_measured_noise(rms);
    let mut table = Table::new(
        "E8b: SET/CMOS RNG vs conventional CMOS RNG (paper: 7 / 8 / 4 orders of magnitude)",
        &[
            "quantity",
            "SET/CMOS",
            "CMOS baseline",
            "advantage [orders]",
        ],
    );
    table.add_row(&[
        "power [W]".into(),
        format!("{:.1e}", comparison.set_mos_power),
        format!("{:.1e}", comparison.cmos_power),
        format!("{:.1}", comparison.power_orders_of_magnitude()),
    ]);
    table.add_row(&[
        "area [m²]".into(),
        format!("{:.1e}", comparison.set_mos_area),
        format!("{:.1e}", comparison.cmos_area),
        format!("{:.1}", comparison.area_orders_of_magnitude()),
    ]);
    table.add_row(&[
        "noise RMS [V]".into(),
        format!("{:.3}", comparison.set_noise_rms),
        format!("{:.1e}", comparison.cmos_noise_rms),
        format!("{:.1}", comparison.noise_orders_of_magnitude()),
    ]);
    println!("{table}");
    println!("measured telegraph-noise RMS: {rms:.3} V (paper reports 0.12 V)");
    Ok(())
}
