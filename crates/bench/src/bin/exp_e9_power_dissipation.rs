//! Experiment E9 — power dissipation of single-electron logic versus CMOS
//! (after Mahapatra et al.).
//!
//! Power-versus-clock-frequency table for a level-coded SET gate and a
//! minimum-size CMOS inverter, split into dynamic and static contributions.

use single_electronics::logic::power::{power_comparison, SetLogicPowerModel};
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set_model = SetLogicPowerModel::reference()?;
    let cmos_model = CmosPowerModel::inverter_180nm();
    let frequencies = [1e6, 1e7, 1e8, 1e9, 1e10];
    let rows = power_comparison(&set_model, &cmos_model, &frequencies)?;

    let mut table = Table::new(
        "E9: gate power vs clock frequency (SET logic at 4.2 K vs 0.18 µm CMOS)",
        &["f [Hz]", "SET gate [W]", "CMOS gate [W]", "CMOS / SET"],
    );
    for row in &rows {
        table.add_row(&[
            format!("{:.0e}", row.frequency),
            format!("{:.3e}", row.set_power),
            format!("{:.3e}", row.cmos_power),
            format!("{:.1e}", row.ratio),
        ]);
    }
    println!("{table}");
    println!(
        "static power: SET {:.2e} W (blockade leakage), CMOS {:.2e} W (subthreshold leakage)",
        set_model.static_power()?,
        cmos_model.static_power()
    );
    println!("the per-gate advantage is set by (C·V²)_CMOS / (n·e·V)_SET — chip power and area are the SET's strong points");
    Ok(())
}
