//! `sesim` — run SPICE-style simulation decks end to end.
//!
//! ```text
//! sesim deck.cir                   parse, compile, run, print tables
//! sesim deck.cir --csv out.csv     stream CSV while running (per-analysis suffixes)
//! sesim deck.cir --json out.json   also export JSON
//! sesim deck.cir --engine kmc      override the deck's .options engine
//! sesim deck.cir --serial          single-threaded execution (same results)
//! sesim deck.cir --jobs 4          cap the shared worker pool at 4 workers
//! sesim deck.cir --chunk 32        32 bias points per scheduled task
//! sesim deck.cir --plan            compile and report the plan, don't run
//! sesim --batch 'decks/*.cir'      run every matching deck through ONE scheduler
//! sesim deck.cir --checkpoint ck/  persist completed chunks under ck/
//! sesim deck.cir --checkpoint ck/ --resume   restore them (bit-identical)
//! sesim deck.cir --quiet           errors only: no tables, no chatter
//! sesim record deck.cir trace/     run the deck AND record every output bit
//! sesim verify trace/              re-execute the recording; exit 3 on drift
//! ```
//!
//! The deck carries the circuit *and* the analysis commands (`.dc`,
//! `.tran`, `.options`, `.print`); `sesim` parses it with
//! `se_netlist::parse_full_deck`, compiles it with `se_sim::compile`
//! (partition-driven engine auto-selection) and executes it through the
//! `se-exec` job substrate — all decks and analyses share one chunked
//! worker pool. Parser diagnostics, progress and the engine rationale go
//! to stderr; result tables go to stdout, so `--csv`/`--json` output and
//! piped stdout stay machine-clean. The exit code is 0 only if every deck
//! ran to completion.

use se_exec::Workers;
use se_netlist::{parse_full_deck, Deck, EnginePreference};
use se_sim::{
    compile, execute_with_options, run_deck_batch, ExecOptions, SimulationPlan, SimulationResult,
};
use single_electronics::report::Table;
use std::path::PathBuf;
use std::process::ExitCode;

/// Rows above this threshold are summarised on stdout instead of printed
/// in full (exports always carry every row).
const MAX_PRINTED_ROWS: usize = 64;

/// What the invocation does with its positional arguments.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run decks (the historical behaviour; single or `--batch`).
    Run,
    /// `sesim record <deck.cir> <trace-dir>`: run AND record every bit.
    Record,
    /// `sesim verify <trace-dir>`: re-execute a recording, report drift.
    Verify,
}

struct Args {
    mode: Mode,
    decks: Vec<String>,
    batch: Vec<String>,
    csv: Option<String>,
    json: Option<String>,
    engine: Option<EnginePreference>,
    serial: bool,
    jobs: Option<usize>,
    chunk: Option<usize>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    quiet: bool,
    progress: bool,
    plan_only: bool,
    scalar_ensemble: bool,
    lane_width: Option<usize>,
}

fn usage() -> &'static str {
    "usage: sesim <deck.cir> [options]\n\
     \u{20}      sesim --batch '<glob>' [options]\n\
     \u{20}      sesim record <deck.cir> <trace-dir> [options]\n\
     \u{20}      sesim verify <trace-dir> [options]\n\
     \n\
     Runs SPICE-style decks (.dc / .tran / .options / .print cards) through\n\
     the partition-selected engine and prints one table per analysis.\n\
     \n\
     --batch PATTERN   run every matching deck through one shared scheduler\n\
     \u{20}                 (repeatable; * and ? match within the file name)\n\
     --csv PATH        stream results to CSV while running\n\
     --json PATH       export JSON after running\n\
     --engine NAME     override the deck's .options engine\n\
     \u{20}                 (auto, analytic, master, kmc, spice, hybrid)\n\
     --serial          single-threaded execution (identical results)\n\
     --jobs N          cap the worker pool at N workers\n\
     --chunk N         N work items per scheduled task\n\
     --checkpoint DIR  persist completed chunks under DIR\n\
     --resume          restore completed chunks from DIR (bit-identical)\n\
     --progress        throttled per-analysis progress lines on stderr\n\
     --quiet           errors only: no tables, no warnings, no chatter\n\
     --plan            compile and report the plan, don't run\n\
     --scalar-ensemble run .options repeats= ensembles through the per-seed\n\
     \u{20}                 scalar loop instead of the batched engine (the\n\
     \u{20}                 results are bit-identical; used by the CI gate)\n\
     --lane-width N    replicas per ensemble lane group (default 8): each\n\
     \u{20}                 bias point's repeats shard into ceil(repeats/N)\n\
     \u{20}                 work items on the shared pool; the published\n\
     \u{20}                 tables are byte-identical for every N\n\
     \n\
     record / verify close the determinism loop: `record` runs a deck and\n\
     writes every output bit (raw IEEE-754) plus the job geometry into a\n\
     self-contained trace directory; `verify` re-executes the recording —\n\
     under any --jobs/--serial setting — and either confirms bit-identity\n\
     (exit 0) or reports the first divergence, localized to analysis,\n\
     chunk, item, row and column (exit 3)."
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mut args = Args {
        mode: Mode::Run,
        decks: Vec::new(),
        batch: Vec::new(),
        csv: None,
        json: None,
        engine: None,
        serial: false,
        jobs: None,
        chunk: None,
        checkpoint: None,
        resume: false,
        quiet: false,
        progress: false,
        plan_only: false,
        scalar_ensemble: false,
        lane_width: None,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--batch" => args
                .batch
                .push(argv.next().ok_or("--batch needs a glob pattern")?),
            "--csv" => args.csv = Some(argv.next().ok_or("--csv needs a path")?),
            "--json" => args.json = Some(argv.next().ok_or("--json needs a path")?),
            "--engine" => {
                let name = argv.next().ok_or("--engine needs a name")?;
                args.engine = Some(EnginePreference::parse(&name)?);
            }
            "--jobs" => {
                let n = argv.next().ok_or("--jobs needs a count")?;
                let n: usize = n.parse().map_err(|_| format!("--jobs: bad count `{n}`"))?;
                if n == 0 {
                    return Err("--jobs needs a count of at least 1".into());
                }
                args.jobs = Some(n);
            }
            "--chunk" => {
                let n = argv.next().ok_or("--chunk needs a size")?;
                let n: usize = n.parse().map_err(|_| format!("--chunk: bad size `{n}`"))?;
                if n == 0 {
                    return Err("--chunk needs a size of at least 1".into());
                }
                args.chunk = Some(n);
            }
            "--checkpoint" => {
                args.checkpoint = Some(PathBuf::from(
                    argv.next().ok_or("--checkpoint needs a directory")?,
                ));
            }
            "--resume" => args.resume = true,
            "--serial" => args.serial = true,
            "--quiet" => args.quiet = true,
            "--progress" => args.progress = true,
            "--plan" => args.plan_only = true,
            "--scalar-ensemble" => args.scalar_ensemble = true,
            "--lane-width" => {
                let n = argv.next().ok_or("--lane-width needs a width")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--lane-width: bad width `{n}`"))?;
                if n == 0 {
                    return Err("--lane-width needs a width of at least 1".into());
                }
                args.lane_width = Some(n);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            "record" if args.mode == Mode::Run && args.decks.is_empty() => {
                args.mode = Mode::Record;
            }
            "verify" if args.mode == Mode::Run && args.decks.is_empty() => {
                args.mode = Mode::Verify;
            }
            other => args.decks.push(other.to_string()),
        }
    }
    if args.serial && args.jobs.is_some() {
        return Err("--serial and --jobs are mutually exclusive".into());
    }
    match args.mode {
        Mode::Run => {
            if args.decks.is_empty() && args.batch.is_empty() {
                return Err("a deck file (or --batch pattern) is required".into());
            }
            if args.decks.len() > 1 && args.batch.is_empty() {
                return Err("exactly one deck file is expected (use --batch for many)".into());
            }
            if args.resume && args.checkpoint.is_none() {
                return Err("--resume needs --checkpoint DIR".into());
            }
        }
        Mode::Record | Mode::Verify => {
            let verb = if args.mode == Mode::Record {
                "record"
            } else {
                "verify"
            };
            let expected = if args.mode == Mode::Record {
                "a deck file and a trace directory"
            } else {
                "a trace directory"
            };
            let want = if args.mode == Mode::Record { 2 } else { 1 };
            if args.decks.len() != want {
                return Err(format!("`{verb}` expects {expected}"));
            }
            for (flag, set) in [
                ("--batch", !args.batch.is_empty()),
                ("--csv", args.csv.is_some()),
                ("--json", args.json.is_some()),
                ("--checkpoint", args.checkpoint.is_some()),
                ("--resume", args.resume),
                ("--plan", args.plan_only),
            ] {
                if set {
                    return Err(format!("{flag} cannot be combined with `{verb}`"));
                }
            }
            if args.mode == Mode::Verify && args.engine.is_some() {
                return Err(
                    "--engine cannot be combined with `verify`: the engine is part of the \
                     recorded deck"
                        .into(),
                );
            }
        }
    }
    Ok(args)
}

/// Matches a `*`/`?` wildcard pattern against a file name (iterative, no
/// backtracking blow-up).
fn glob_match(pattern: &str, text: &str) -> bool {
    let (p, t): (Vec<char>, Vec<char>) = (pattern.chars().collect(), text.chars().collect());
    let (mut pi, mut ti) = (0, 0);
    let (mut star, mut mark) = (None, 0);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            mark = ti;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Expands one `--batch` pattern: wildcards match within the final path
/// component only; a pattern without wildcards names a file literally.
///
/// `position` is the 1-based position of the pattern among the `--batch`
/// arguments: a multi-pattern invocation that fails must say *which*
/// pattern is at fault, not just quote it (two patterns can be textually
/// identical yet only one intended). Zero-match patterns and missing
/// literal files are hard errors — a silently empty pattern would let a
/// typo'd glob pass the whole batch as vacuously successful.
fn expand_pattern(pattern: &str, position: usize) -> Result<Vec<String>, String> {
    if !pattern.contains(['*', '?']) {
        if !std::path::Path::new(pattern).is_file() {
            return Err(format!(
                "--batch pattern #{position} names `{pattern}`, which is not a file"
            ));
        }
        return Ok(vec![pattern.to_string()]);
    }
    let (dir, file_pattern) = match pattern.rsplit_once('/') {
        Some((dir, file)) => (dir.to_string(), file),
        None => (".".to_string(), pattern),
    };
    if dir.contains(['*', '?']) {
        return Err(format!(
            "--batch pattern #{position} (`{pattern}`): wildcards are only supported in \
             the file name, not in directories"
        ));
    }
    let entries = std::fs::read_dir(&dir).map_err(|e| {
        format!("--batch pattern #{position} (`{pattern}`): cannot read directory `{dir}`: {e}")
    })?;
    let mut matches: Vec<String> = entries
        .filter_map(Result::ok)
        .filter(|entry| entry.path().is_file())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| glob_match(file_pattern, name))
        .map(|name| {
            if dir == "." && !pattern.starts_with("./") {
                name
            } else {
                format!("{dir}/{name}")
            }
        })
        .collect();
    matches.sort();
    if matches.is_empty() {
        return Err(format!(
            "--batch pattern #{position} (`{pattern}`) matched no files in `{dir}/`"
        ));
    }
    Ok(matches)
}

/// The file stem of a deck path: `examples/decks/set.cir` → `set`.
fn deck_stem(path: &str) -> String {
    let file = path.rsplit_once('/').map_or(path, |(_, file)| file);
    let stem = match file.rsplit_once('.') {
        Some((stem, _)) if !stem.is_empty() => stem,
        _ => file,
    };
    stem.to_string()
}

fn print_result(result: &SimulationResult) {
    println!("## {} — engine: {}", result.label(), result.engine());
    if let Some(effort) = result.solver_effort() {
        eprintln!(
            "sesim: solver {}: {} solves ({} warm-started), {} iterations, max residual {:.3e}",
            effort.solver,
            effort.solves,
            effort.warm_solves,
            effort.iterations,
            effort.residual_max
        );
    }
    if result.len() > MAX_PRINTED_ROWS {
        println!(
            "({} rows x {} columns; use --csv or --json to export the full table)",
            result.len(),
            result.columns().len()
        );
        return;
    }
    let headers: Vec<&str> = result.columns().iter().map(String::as_str).collect();
    let mut table = Table::new(result.label(), &headers);
    for row in result.rows() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.4e}")).collect();
        table.add_row(&cells);
    }
    print!("{table}");
}

/// Loads and parses one deck, printing diagnostics to stderr.
fn load_deck(path: &str, args: &Args) -> Result<Deck, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut deck = parse_full_deck(&text).map_err(|e| e.to_string())?;
    if !args.quiet {
        for diagnostic in &deck.diagnostics {
            eprintln!("sesim: warning: {path}: {diagnostic}");
        }
    }
    if let Some(engine) = args.engine {
        deck.options.engine = engine;
    }
    Ok(deck)
}

fn exec_options(args: &Args, label: String) -> ExecOptions {
    ExecOptions {
        workers: if args.serial {
            Workers::Serial
        } else {
            match args.jobs {
                Some(n) => Workers::Count(n),
                None => Workers::Auto,
            }
        },
        chunk: args.chunk,
        checkpoint: args.checkpoint.clone(),
        resume: args.resume,
        progress: (args.progress || !args.batch.is_empty()) && !args.quiet,
        csv: args.csv.clone(),
        label: Some(label),
        cancel: None,
        scalar_ensemble: args.scalar_ensemble,
        lane_width: args.lane_width,
    }
}

/// Compiles one deck, printing the plan to stderr, and returns the plan
/// so the caller never has to compile twice.
fn report_plan(deck: &Deck, args: &Args, name: &str) -> Result<SimulationPlan, String> {
    let plan = compile(deck).map_err(|e| e.to_string())?;
    if !args.quiet {
        eprintln!("sesim: deck `{}` ({name})", plan.title);
        for run in &plan.runs {
            eprintln!(
                "sesim: {} -> engine {} ({})",
                run.label,
                run.engine.name(),
                run.rationale
            );
            if run.engine == se_sim::EngineChoice::Master {
                let solver = deck.options.solver.unwrap_or_default();
                eprintln!(
                    "sesim: {} -> solver {} (warm-started {}-point blocks)",
                    run.label,
                    solver.as_deck_str(),
                    se_sim::MASTER_WARM_BLOCK
                );
            }
        }
    }
    Ok(plan)
}

/// Prints results and writes the post-hoc JSON export. `csv_base` is only
/// used to *announce* the files the substrate already streamed.
/// `json_written` tracks every JSON path of the invocation: adversarial
/// deck names can make two decks' spliced paths collide, and silently
/// overwriting one deck's export with another's must be refused.
fn emit_results(
    results: &[SimulationResult],
    args: &Args,
    csv_base: Option<&str>,
    json_base: Option<&str>,
    json_written: &mut std::collections::HashSet<String>,
) -> Result<(), String> {
    for (index, result) in results.iter().enumerate() {
        if !args.quiet {
            if index > 0 {
                println!();
            }
            print_result(result);
            if let Some(base) = csv_base {
                eprintln!("sesim: wrote {}", se_sim::export_path(base, index));
            }
        }
        if let Some(base) = json_base {
            let path = se_sim::export_path(base, index);
            if !json_written.insert(path.clone()) {
                return Err(format!(
                    "JSON export path `{path}` collides with an earlier export — rename \
                     the decks or choose a different export base"
                ));
            }
            std::fs::write(&path, result.to_json())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            if !args.quiet {
                eprintln!("sesim: wrote {path}");
            }
        }
    }
    Ok(())
}

/// Single-deck mode: the historical behaviour, now over the substrate.
fn run_single(args: &Args) -> Result<(), String> {
    let path = &args.decks[0];
    let deck = load_deck(path, args)?;
    let plan = report_plan(&deck, args, path)?;
    if args.plan_only {
        return Ok(());
    }
    let results = execute_with_options(&deck, &plan, &exec_options(args, deck_stem(path)))
        .map_err(|e| e.to_string())?;
    let mut json_written = std::collections::HashSet::new();
    emit_results(
        &results,
        args,
        args.csv.as_deref(),
        args.json.as_deref(),
        &mut json_written,
    )
}

/// Assigns each deck path a unique batch name: the file stem, with a
/// `-2`, `-3`, … suffix on collisions (two `set.cir` files in different
/// directories must not share CSV exports or checkpoint directories).
/// Candidates are checked against *every* name already taken, so a
/// generated `x-2` can never collide with a literal `x-2.cir` stem.
fn unique_names(paths: &[String]) -> Vec<String> {
    let mut taken = std::collections::HashSet::new();
    paths
        .iter()
        .map(|path| {
            let stem = deck_stem(path);
            let mut name = stem.clone();
            let mut n = 1_usize;
            while !taken.insert(name.clone()) {
                n += 1;
                name = format!("{stem}-{n}");
            }
            name
        })
        .collect()
}

/// Batch mode: every matching deck through one shared scheduler.
fn run_batch_mode(args: &Args) -> Result<(), String> {
    let mut paths: Vec<String> = Vec::new();
    for (position, pattern) in args.batch.iter().enumerate() {
        paths.extend(expand_pattern(pattern, position + 1)?);
    }
    paths.extend(args.decks.iter().cloned());
    // Global, order-preserving dedup: overlapping patterns (or a pattern
    // plus an explicit path) must not run a deck twice — two jobs with one
    // name would clobber each other's CSV exports and checkpoints.
    let mut seen = std::collections::HashSet::new();
    paths.retain(|path| seen.insert(path.clone()));
    let total = paths.len();
    let names = unique_names(&paths);

    let mut decks: Vec<(String, Deck)> = Vec::with_capacity(paths.len());
    let mut failures = 0usize;
    for (path, name) in paths.iter().zip(names) {
        match load_deck(path, args) {
            Ok(deck) => {
                if args.plan_only {
                    if let Err(message) = report_plan(&deck, args, path) {
                        eprintln!("sesim: error: {path}: {message}");
                        failures += 1;
                    }
                } else {
                    decks.push((name, deck));
                }
            }
            Err(message) => {
                eprintln!("sesim: error: {message}");
                failures += 1;
            }
        }
    }
    if args.plan_only {
        return if failures == 0 {
            Ok(())
        } else {
            Err(format!("{failures} of {total} decks failed to compile"))
        };
    }

    if !args.quiet {
        eprintln!("sesim: batch of {} decks on one scheduler", decks.len());
    }
    let outcomes = run_deck_batch(decks, &exec_options(args, "batch".into()));
    let mut ok = 0usize;
    let mut first = true;
    let mut json_written = std::collections::HashSet::new();
    for outcome in &outcomes {
        match &outcome.results {
            Ok(results) => {
                ok += 1;
                if !args.quiet {
                    if !first {
                        println!();
                    }
                    println!("# deck {}", outcome.name);
                    first = false;
                }
                let csv_base = args
                    .csv
                    .as_ref()
                    .map(|base| se_sim::deck_export_base(base, &outcome.name));
                let json_base = args
                    .json
                    .as_ref()
                    .map(|base| se_sim::deck_export_base(base, &outcome.name));
                emit_results(
                    results,
                    args,
                    csv_base.as_deref(),
                    json_base.as_deref(),
                    &mut json_written,
                )?;
            }
            Err(e) => {
                eprintln!("sesim: error: deck {}: {e}", outcome.name);
                failures += 1;
            }
        }
    }
    if !args.quiet {
        eprintln!("sesim: batch done — {ok} ok, {failures} failed");
    }
    if failures > 0 {
        return Err(format!("{failures} of {total} decks failed"));
    }
    Ok(())
}

/// `sesim record <deck.cir> <trace-dir>`: run the deck (printing tables as
/// usual) while recording every output bit into the trace directory.
fn run_record(args: &Args) -> Result<(), String> {
    let path = &args.decks[0];
    let dir = PathBuf::from(&args.decks[1]);
    let deck = load_deck(path, args)?;
    let plan = report_plan(&deck, args, path)?;
    let options = exec_options(args, deck_stem(path));
    let (results, summary) =
        se_sim::record_deck(&deck, &plan, &options, &dir).map_err(|e| e.to_string())?;
    let mut json_written = std::collections::HashSet::new();
    emit_results(&results, args, None, None, &mut json_written)?;
    if !args.quiet {
        eprintln!(
            "sesim: recorded {} analyses (deck fingerprint {:016x}) into {}",
            summary.analyses.len(),
            summary.fingerprint,
            summary.dir.display()
        );
        for (label, file, items) in &summary.analyses {
            eprintln!("sesim: trace {file}: `{label}`, {items} items");
        }
    }
    Ok(())
}

/// `sesim verify <trace-dir>`: re-execute the recorded deck and compare
/// every output bit. Returns whether the verification was clean; the
/// divergence report goes to stdout.
fn run_verify(args: &Args) -> Result<bool, String> {
    let dir = PathBuf::from(&args.decks[0]);
    let options = exec_options(args, "verify".into());
    let report = se_sim::verify_trace_dir(&dir, &options).map_err(|e| e.to_string())?;
    if !args.quiet || !report.is_clean() {
        println!(
            "# verify {} — deck `{}`, fingerprint {:016x}",
            dir.display(),
            report.title,
            report.fingerprint
        );
        for verdict in &report.analyses {
            if verdict.is_clean() {
                println!(
                    "ok   {}: engine {}, {} items in {} chunks — bit-identical",
                    verdict.label, verdict.engine, verdict.items, verdict.chunks
                );
                continue;
            }
            if let Some(chunk) = verdict.corrupt_chunk {
                println!(
                    "FAIL {}: trace corruption — chunk {chunk} no longer matches its \
                     recorded content hash",
                    verdict.label
                );
            }
            if let Some(divergence) = &verdict.divergence {
                println!("FAIL {}: {divergence}", verdict.label);
            }
            for (key, value) in &verdict.provenance {
                println!("     recorded {key}: {value}");
            }
        }
    }
    Ok(report.is_clean())
}

/// Exit code of a completed invocation: 0 clean, 3 divergence/corruption
/// (1 = usage and 2 = error are produced in `main`).
fn run(args: &Args) -> Result<ExitCode, String> {
    match args.mode {
        Mode::Run => {
            if args.batch.is_empty() {
                run_single(args)?;
            } else {
                run_batch_mode(args)?;
            }
            Ok(ExitCode::SUCCESS)
        }
        Mode::Record => {
            run_record(args)?;
            Ok(ExitCode::SUCCESS)
        }
        Mode::Verify => {
            if run_verify(args)? {
                Ok(ExitCode::SUCCESS)
            } else {
                Ok(ExitCode::from(3))
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("sesim: {message}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(1);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("sesim: error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{deck_stem, expand_pattern, glob_match, unique_names};

    #[test]
    fn glob_matching_covers_star_and_question_mark() {
        assert!(glob_match("*.cir", "set_staircase.cir"));
        assert!(glob_match("set_*.cir", "set_staircase.cir"));
        assert!(!glob_match("set_*.cir", "pulse_train.cir"));
        assert!(glob_match("pulse_trai?.cir", "pulse_train.cir"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*b*c", "a-x-b-y-c"));
        assert!(!glob_match("a*b*c", "a-x-b-y"));
        assert!(!glob_match("?", ""));
        assert!(glob_match("**", "x"));
    }

    #[test]
    fn colliding_deck_stems_get_unique_batch_names() {
        let paths = vec![
            "a/set.cir".to_string(),
            "b/set.cir".into(),
            "c/other.cir".into(),
            "d/set.cir".into(),
        ];
        assert_eq!(unique_names(&paths), vec!["set", "set-2", "other", "set-3"]);
        // A generated suffix must not collide with a literal `-2` stem.
        let tricky = vec!["x-2.cir".to_string(), "a/x.cir".into(), "b/x.cir".into()];
        assert_eq!(unique_names(&tricky), vec!["x-2", "x", "x-3"]);
    }

    #[test]
    fn zero_match_patterns_fail_with_their_argument_position() {
        let dir = std::env::temp_dir().join(format!("sesim-glob-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("one.cir"), "").unwrap();
        let dir_text = dir.to_str().unwrap();

        // A matching wildcard pattern expands.
        let found = expand_pattern(&format!("{dir_text}/*.cir"), 1).unwrap();
        assert_eq!(found, vec![format!("{dir_text}/one.cir")]);

        // A zero-match pattern is a hard error naming its 1-based position
        // and the directory searched — not a silently empty batch.
        let err = expand_pattern(&format!("{dir_text}/*.deck"), 3).unwrap_err();
        assert!(err.contains("#3"), "{err}");
        assert!(err.contains("matched no files"), "{err}");
        assert!(err.contains(dir_text), "{err}");

        // A literal (wildcard-free) pattern must name an existing file.
        let err = expand_pattern(&format!("{dir_text}/absent.cir"), 2).unwrap_err();
        assert!(err.contains("#2"), "{err}");
        assert!(err.contains("not a file"), "{err}");
        let ok = expand_pattern(&format!("{dir_text}/one.cir"), 2).unwrap();
        assert_eq!(ok, vec![format!("{dir_text}/one.cir")]);

        // An unreadable directory also cites the pattern position.
        let err = expand_pattern(&format!("{dir_text}/absent-dir/*.cir"), 4).unwrap_err();
        assert!(err.contains("#4"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deck_stems_strip_directories_and_extensions() {
        assert_eq!(deck_stem("examples/decks/set.cir"), "set");
        assert_eq!(deck_stem("set.cir"), "set");
        assert_eq!(deck_stem("set"), "set");
        assert_eq!(deck_stem(".hidden"), ".hidden");
    }
}
