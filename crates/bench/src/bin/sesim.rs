//! `sesim` — run a SPICE-style simulation deck end to end.
//!
//! ```text
//! sesim deck.cir                 parse, compile, run, print tables
//! sesim deck.cir --csv out.csv   also export CSV (per-analysis suffixes)
//! sesim deck.cir --json out.json also export JSON
//! sesim deck.cir --engine kmc    override the deck's .options engine
//! sesim deck.cir --serial        single-threaded execution (same results)
//! sesim deck.cir --plan          compile and report the plan, don't run
//! ```
//!
//! The deck carries the circuit *and* the analysis commands (`.dc`,
//! `.tran`, `.options`, `.print`); `sesim` parses it with
//! `se_netlist::parse_full_deck`, compiles it with `se_sim::compile`
//! (partition-driven engine auto-selection) and executes it through the
//! parallel runners. Parser diagnostics and the engine rationale go to
//! stderr; result tables go to stdout.

use se_netlist::{parse_full_deck, EnginePreference};
use se_sim::{compile, execute, execute_serial, SimulationResult};
use single_electronics::report::Table;
use std::process::ExitCode;

/// Rows above this threshold are summarised on stdout instead of printed
/// in full (exports always carry every row).
const MAX_PRINTED_ROWS: usize = 64;

struct Args {
    deck_path: String,
    csv: Option<String>,
    json: Option<String>,
    engine: Option<EnginePreference>,
    serial: bool,
    plan_only: bool,
}

fn usage() -> &'static str {
    "usage: sesim <deck.cir> [--csv PATH] [--json PATH] [--engine NAME] [--serial] [--plan]\n\
     \n\
     Runs a SPICE-style deck (.dc / .tran / .options / .print cards) through\n\
     the partition-selected engine and prints one table per analysis.\n\
     --engine NAME overrides the deck's .options engine\n\
     (auto, analytic, master, kmc, spice, hybrid)."
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mut deck_path = None;
    let mut csv = None;
    let mut json = None;
    let mut engine = None;
    let mut serial = false;
    let mut plan_only = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--csv" => csv = Some(argv.next().ok_or("--csv needs a path")?),
            "--json" => json = Some(argv.next().ok_or("--json needs a path")?),
            "--engine" => {
                let name = argv.next().ok_or("--engine needs a name")?;
                engine = Some(EnginePreference::parse(&name)?);
            }
            "--serial" => serial = true,
            "--plan" => plan_only = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            other => {
                if deck_path.replace(other.to_string()).is_some() {
                    return Err("exactly one deck file is expected".into());
                }
            }
        }
    }
    Ok(Args {
        deck_path: deck_path.ok_or("a deck file is required")?,
        csv,
        json,
        engine,
        serial,
        plan_only,
    })
}

/// Splices an analysis index into an export path: `out.csv` → `out-2.csv`
/// for the second analysis (the first keeps the bare name). Only the file
/// name is rewritten — dots in directory components are left alone.
fn export_path(base: &str, index: usize) -> String {
    if index == 0 {
        return base.to_string();
    }
    let (dir, file) = match base.rsplit_once('/') {
        Some((dir, file)) => (Some(dir), file),
        None => (None, base),
    };
    let renamed = match file.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}-{}.{ext}", index + 1),
        _ => format!("{file}-{}", index + 1),
    };
    match dir {
        Some(dir) => format!("{dir}/{renamed}"),
        None => renamed,
    }
}

fn print_result(result: &SimulationResult) {
    println!("## {} — engine: {}", result.label(), result.engine());
    if result.len() > MAX_PRINTED_ROWS {
        println!(
            "({} rows x {} columns; use --csv or --json to export the full table)",
            result.len(),
            result.columns().len()
        );
        return;
    }
    let headers: Vec<&str> = result.columns().iter().map(String::as_str).collect();
    let mut table = Table::new(result.label(), &headers);
    for row in result.rows() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.4e}")).collect();
        table.add_row(&cells);
    }
    print!("{table}");
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.deck_path)
        .map_err(|e| format!("cannot read `{}`: {e}", args.deck_path))?;
    let mut deck = parse_full_deck(&text).map_err(|e| e.to_string())?;
    for diagnostic in &deck.diagnostics {
        eprintln!("sesim: warning: {diagnostic}");
    }
    if let Some(engine) = args.engine {
        deck.options.engine = engine;
    }
    let plan = compile(&deck).map_err(|e| e.to_string())?;
    eprintln!("sesim: deck `{}`", plan.title);
    for run in &plan.runs {
        eprintln!(
            "sesim: {} -> engine {} ({})",
            run.label,
            run.engine.name(),
            run.rationale
        );
    }
    if args.plan_only {
        return Ok(());
    }
    let results = if args.serial {
        execute_serial(&deck, &plan)
    } else {
        execute(&deck, &plan)
    }
    .map_err(|e| e.to_string())?;

    for (index, result) in results.iter().enumerate() {
        if index > 0 {
            println!();
        }
        print_result(result);
        if let Some(base) = &args.csv {
            let path = export_path(base, index);
            std::fs::write(&path, result.to_csv())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("sesim: wrote {path}");
        }
        if let Some(base) = &args.json {
            let path = export_path(base, index);
            std::fs::write(&path, result.to_json())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("sesim: wrote {path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("sesim: {message}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(1);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sesim: error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::export_path;

    #[test]
    fn export_paths_suffix_only_the_file_name() {
        assert_eq!(export_path("out.csv", 0), "out.csv");
        assert_eq!(export_path("out.csv", 1), "out-2.csv");
        assert_eq!(export_path("out", 2), "out-3");
        // A dot in a directory component must not be split.
        assert_eq!(export_path("runs.v1/out", 1), "runs.v1/out-2");
        assert_eq!(export_path("runs.v1/out.csv", 1), "runs.v1/out-2.csv");
        // Hidden files keep their leading dot.
        assert_eq!(export_path(".hidden", 1), ".hidden-2");
    }
}
