//! Shared kinetic Monte-Carlo bench harness.
//!
//! One place that builds, runs and times the scalar incremental engine and
//! the batched lockstep engine, so `benches/kmc_throughput.rs` and
//! `benches/kmc_hotpath.rs` measure the *same* loops instead of each
//! reconstructing its own copy.

use se_engine::derive_seed;
use se_exec::{lane_group_count, lane_group_range, run_collect, JobSpec};
use se_montecarlo::{
    BatchedKmcEngine, KmcKernel, MonteCarloError, MonteCarloSimulator, SimulationOptions,
};
use se_orthodox::TunnelSystem;
use std::time::Instant;

/// Builds a scalar simulator over a clone of `system`.
///
/// # Panics
///
/// Panics if the system is rejected by the engine (bench fixtures are
/// valid by construction).
#[must_use]
pub fn simulator(
    system: &TunnelSystem,
    temperature: f64,
    seed: u64,
    equilibration: usize,
) -> MonteCarloSimulator {
    MonteCarloSimulator::new(
        system.clone(),
        SimulationOptions::new(temperature)
            .with_seed(seed)
            .with_equilibration(equilibration),
    )
    .expect("valid bench system")
}

/// Runs `events` measured events on the scalar incremental engine (with
/// its default event-rate kernel) and returns
/// `(events executed, simulated seconds)`.
///
/// # Panics
///
/// Panics if the engine rejects the system or the run fails.
#[must_use]
pub fn run_scalar(
    system: &TunnelSystem,
    temperature: f64,
    seed: u64,
    equilibration: usize,
    events: usize,
) -> (u64, f64) {
    let mut sim = simulator(system, temperature, seed, equilibration);
    let result = sim.run_events(events).expect("run succeeds");
    (result.events(), result.total_time())
}

/// [`run_scalar`] with an explicit event-rate maintenance kernel — the
/// kernel-scaling sweep measures [`KmcKernel::Incremental`] against
/// [`KmcKernel::FullRecompute`] on the same circuits and seeds.
///
/// # Panics
///
/// Panics if the engine rejects the system or the run fails.
#[must_use]
pub fn run_scalar_with_kernel(
    system: &TunnelSystem,
    temperature: f64,
    seed: u64,
    equilibration: usize,
    events: usize,
    kernel: KmcKernel,
) -> (u64, f64) {
    let mut sim = MonteCarloSimulator::new(
        system.clone(),
        SimulationOptions::new(temperature)
            .with_seed(seed)
            .with_equilibration(equilibration)
            .with_kernel(kernel),
    )
    .expect("valid bench system");
    let result = sim.run_events(events).expect("run succeeds");
    (result.events(), result.total_time())
}

/// Runs `events` measured events on each of `replicas` sequential scalar
/// simulators with the batched engine's per-replica seed contract
/// (replica `k` gets [`derive_seed`]`(base_seed, k)`) and returns the
/// aggregate `(events executed, summed simulated seconds)` — the
/// one-replica-at-a-time baseline the batched engine is measured against.
///
/// # Panics
///
/// Panics if the engine rejects the system or a run fails.
#[must_use]
pub fn run_sequential_replicas(
    system: &TunnelSystem,
    temperature: f64,
    base_seed: u64,
    replicas: usize,
    equilibration: usize,
    events: usize,
) -> (u64, f64) {
    let mut total_events = 0;
    let mut total_time = 0.0;
    for replica in 0..replicas as u64 {
        let (executed, time) = run_scalar(
            system,
            temperature,
            derive_seed(base_seed, replica),
            equilibration,
            events,
        );
        total_events += executed;
        total_time += time;
    }
    (total_events, total_time)
}

/// Runs `events` measured events on each of `replicas` lockstep replicas
/// of the batched engine and returns the aggregate
/// `(events executed, summed simulated seconds)`. Replica `k` is
/// bit-identical to the scalar run with seed
/// [`derive_seed`]`(base_seed, k)`.
///
/// # Panics
///
/// Panics if the engine rejects the system or the run fails.
#[must_use]
pub fn run_batched(
    system: &TunnelSystem,
    temperature: f64,
    base_seed: u64,
    replicas: usize,
    equilibration: usize,
    events: usize,
) -> (u64, f64) {
    let options = SimulationOptions::new(temperature).with_equilibration(equilibration);
    let mut batch = BatchedKmcEngine::from_base_seed(system.clone(), options, replicas, base_seed)
        .expect("valid bench system");
    let results = batch.run_events_all(events).expect("batched run succeeds");
    let total_events = results.iter().map(se_montecarlo::RunResult::events).sum();
    let total_time = results
        .iter()
        .map(se_montecarlo::RunResult::total_time)
        .sum();
    (total_events, total_time)
}

/// Runs `replicas` batched lockstep replicas sharded into lane groups of
/// `lane_width` — each group one work item on an se-exec job capped at
/// `workers` workers, exactly the deck executor's ensemble geometry — and
/// returns the aggregate `(events executed, summed simulated seconds)`.
/// Replica `k` keeps the [`derive_seed`]`(base_seed, k)` contract whatever
/// the width or worker count, so every replica walk is bit-identical to
/// [`run_batched`] and [`run_sequential_replicas`]; the summed simulated
/// time is reduction-order deterministic per width (groups reduce in index
/// order), identical for every worker count.
///
/// # Panics
///
/// Panics if the engine rejects the system or a run fails.
#[must_use]
// Bench harness entry point: the argument list mirrors the sibling
// `run_batched`/`run_sequential_replicas` signatures plus the two
// scheduling knobs under measurement.
#[allow(clippy::too_many_arguments)]
pub fn run_lane_groups(
    system: &TunnelSystem,
    temperature: f64,
    base_seed: u64,
    replicas: usize,
    lane_width: usize,
    equilibration: usize,
    events: usize,
    workers: usize,
) -> (u64, f64) {
    let groups = lane_group_count(replicas, lane_width);
    let spec = JobSpec::new(groups)
        .with_seed(base_seed)
        .with_chunk(1)
        .with_workers(workers);
    let per_group = run_collect(&spec, &mut (), |group, _item_seed| {
        let seeds: Vec<u64> = lane_group_range(replicas, lane_width, group)
            .map(|k| derive_seed(base_seed, k as u64))
            .collect();
        let options = SimulationOptions::new(temperature).with_equilibration(equilibration);
        let mut batch = BatchedKmcEngine::new(system.clone(), options, &seeds)?;
        let results = batch.run_events_all(events)?;
        let group_events: u64 = results.iter().map(se_montecarlo::RunResult::events).sum();
        let group_time: f64 = results
            .iter()
            .map(se_montecarlo::RunResult::total_time)
            .sum();
        Ok::<_, MonteCarloError>((group_events, group_time))
    })
    .expect("lane-group run succeeds");
    let total_events = per_group.iter().map(|&(events, _)| events).sum();
    // Groups are summed in index order, so the total is reduction-order
    // deterministic for every worker count.
    let total_time = per_group.iter().map(|&(_, time)| time).sum();
    (total_events, total_time)
}

/// Best-of-`samples` wall-clock throughput of the scalar measurement
/// loop under an explicit event-rate kernel, in events/second.
///
/// Unlike [`best_events_per_sec`] over [`run_scalar_with_kernel`], the
/// simulator is constructed *outside* the timed region, so the number is
/// the per-event cost of the kernel itself. That is the honest basis for
/// the N ∈ {8, 64, 256} scaling sweep: at 256 islands the capacitance
/// solve and coupling-table build would otherwise dominate a sample and
/// mask the per-event comparison the speedup gate is about.
///
/// # Panics
///
/// Panics if the engine rejects the system or a sample executes fewer
/// than `events` events (the circuit froze).
#[must_use]
pub fn kernel_events_per_sec(
    system: &TunnelSystem,
    temperature: f64,
    samples: usize,
    events: usize,
    kernel: KmcKernel,
) -> f64 {
    let mut best = 0.0_f64;
    for sample in 0..samples as u64 {
        let mut sim = MonteCarloSimulator::new(
            system.clone(),
            SimulationOptions::new(temperature)
                .with_seed(sample + 1)
                .with_equilibration(0)
                .with_kernel(kernel),
        )
        .expect("valid bench system");
        let start = Instant::now();
        let result = sim.run_events(events).expect("run succeeds");
        let elapsed = start.elapsed().as_secs_f64();
        assert!(
            result.events() == events as u64,
            "expected {events} events, executed {} (the circuit froze)",
            result.events()
        );
        best = best.max(events as f64 / elapsed);
    }
    best
}

/// Best-of-`samples` wall-clock throughput of one run shape, in
/// events/second. `run` is handed the 1-based sample index (vary the seed
/// with it so samples are independent) and must return
/// `(events executed, simulated seconds)`.
///
/// # Panics
///
/// Panics if a sample executes fewer events than `expected` (the circuit
/// froze) or reports a non-positive simulated time.
#[must_use]
pub fn best_events_per_sec(
    expected: u64,
    samples: usize,
    mut run: impl FnMut(u64) -> (u64, f64),
) -> f64 {
    let mut best = 0.0_f64;
    for sample in 0..samples {
        let start = Instant::now();
        let (executed, time) = run(sample as u64 + 1);
        let elapsed = start.elapsed().as_secs_f64();
        assert!(
            executed == expected,
            "expected {expected} events, executed {executed} (the circuit froze)"
        );
        assert!(time > 0.0, "simulated time must advance");
        best = best.max(expected as f64 / elapsed);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_system;

    #[test]
    fn batched_and_sequential_replicas_agree_bit_for_bit() {
        let system = chain_system(2, 0.15, crate::REFERENCE_C_GATE);
        let (seq_events, seq_time) = run_sequential_replicas(&system, 0.1, 9, 4, 0, 500);
        let (batch_events, batch_time) = run_batched(&system, 0.1, 9, 4, 0, 500);
        assert_eq!(seq_events, batch_events);
        assert_eq!(seq_time.to_bits(), batch_time.to_bits());
    }

    #[test]
    fn lane_group_runs_match_the_flat_batch_for_every_width_and_worker_count() {
        let system = chain_system(2, 0.15, crate::REFERENCE_C_GATE);
        let (flat_events, flat_time) = run_batched(&system, 0.1, 9, 6, 0, 300);
        for width in [1, 2, 4, 6, 8] {
            for workers in [1, 4] {
                let (events, time) = run_lane_groups(&system, 0.1, 9, 6, width, 0, 300, workers);
                assert_eq!(events, flat_events, "width {width} workers {workers}");
                // Same replica walks; the group-wise reduction may round
                // differently from the flat sum, but stays within an ulp
                // per group.
                assert!(
                    (time - flat_time).abs() <= 1e-12 * flat_time.abs(),
                    "width {width} workers {workers}: {time} vs {flat_time}"
                );
            }
        }
        // Width ≥ replicas is exactly the flat batch: one group, one sum.
        let (events, time) = run_lane_groups(&system, 0.1, 9, 6, 8, 0, 300, 1);
        assert_eq!(events, flat_events);
        assert_eq!(time.to_bits(), flat_time.to_bits());
    }

    #[test]
    fn throughput_harness_reports_positive_rates() {
        let system = chain_system(2, 0.15, crate::REFERENCE_C_GATE);
        let rate = best_events_per_sec(1000, 2, |seed| run_scalar(&system, 0.1, seed, 0, 1000));
        assert!(rate > 0.0);
    }
}
