//! Shared fixtures for the experiment harnesses and Criterion benches.
//!
//! Every binary in `src/bin/` reproduces one experiment of EXPERIMENTS.md;
//! the helpers here build the reference devices and circuits so the
//! harnesses stay focused on the sweep being reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kmc;

use se_orthodox::set::SingleElectronTransistor;
use se_orthodox::{TunnelSystem, TunnelSystemBuilder};

/// Gate capacitance of the reference SET, farad.
pub const REFERENCE_C_GATE: f64 = 1e-18;

/// Junction capacitance of the reference SET, farad.
pub const REFERENCE_C_JUNCTION: f64 = 0.5e-18;

/// Junction tunnel resistance of the reference SET, ohm.
pub const REFERENCE_R_JUNCTION: f64 = 100e3;

/// The reference single-electron transistor used across the experiments.
///
/// # Panics
///
/// Never panics: the reference parameters are valid by construction.
#[must_use]
pub fn reference_set() -> SingleElectronTransistor {
    SingleElectronTransistor::symmetric(
        REFERENCE_C_GATE,
        REFERENCE_C_JUNCTION,
        REFERENCE_R_JUNCTION,
    )
    .expect("reference parameters are valid")
}

/// The reference SET as a [`TunnelSystem`] for the Monte-Carlo and
/// master-equation engines, with the drain at `vds`, the source grounded
/// and the gate at `vg`.
///
/// # Panics
///
/// Never panics: the reference parameters are valid by construction.
#[must_use]
pub fn reference_system(vds: f64, vg: f64, q0: f64) -> TunnelSystem {
    let mut builder = TunnelSystemBuilder::new();
    let island = builder.island("island", q0);
    let drain = builder.external("drain", vds);
    let source = builder.external("source", 0.0);
    let gate = builder.external("gate", vg);
    builder.junction(
        "JD",
        drain,
        island,
        REFERENCE_C_JUNCTION,
        REFERENCE_R_JUNCTION,
    );
    builder.junction(
        "JS",
        island,
        source,
        REFERENCE_C_JUNCTION,
        REFERENCE_R_JUNCTION,
    );
    builder.capacitor("CG", gate, island, REFERENCE_C_GATE);
    builder.build().expect("reference parameters are valid")
}

/// A serial chain of `islands` islands between the drain and the source,
/// each with its own gate capacitor — used for the circuit-size scaling
/// benchmarks of experiment E10.
///
/// # Panics
///
/// Panics if `islands == 0`.
#[must_use]
pub fn chain_system(islands: usize, vds: f64, vg: f64) -> TunnelSystem {
    assert!(islands > 0, "the chain needs at least one island");
    let mut builder = TunnelSystemBuilder::new();
    let drain = builder.external("drain", vds);
    let source = builder.external("source", 0.0);
    let gate = builder.external("gate", vg);
    let mut previous = drain;
    for i in 0..islands {
        let island = builder.island(format!("island{i}"), 0.0);
        builder.junction(
            format!("J{i}"),
            previous,
            island,
            REFERENCE_C_JUNCTION,
            REFERENCE_R_JUNCTION,
        );
        builder.capacitor(format!("CG{i}"), gate, island, REFERENCE_C_GATE);
        previous = island;
    }
    builder.junction(
        format!("J{islands}"),
        previous,
        source,
        REFERENCE_C_JUNCTION,
        REFERENCE_R_JUNCTION,
    );
    builder.build().expect("chain parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_fixtures_build() {
        let set = reference_set();
        assert!(set.gate_period() > 0.0);
        let system = reference_system(1e-3, 0.0, 0.0);
        assert_eq!(system.island_count(), 1);
        assert_eq!(system.junctions().len(), 2);
    }

    #[test]
    fn chain_grows_with_island_count() {
        let chain = chain_system(4, 1e-3, 0.0);
        assert_eq!(chain.island_count(), 4);
        assert_eq!(chain.junctions().len(), 5);
        assert_eq!(chain.capacitors().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one island")]
    fn empty_chain_panics() {
        let _ = chain_system(0, 0.0, 0.0);
    }
}
