//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment of this repository has no access to a crate
//! registry, so the bench harnesses vendor the *exact subset* of the
//! criterion API they use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical machinery, each benchmark runs
//! `sample_size` timed samples after one warm-up and prints
//! median/min/max wall-clock per iteration. Numbers are indicative, not
//! publication-grade; the structure and IDs match the real crate so swapping
//! it in later is a one-line manifest change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// An identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`, running one warm-up iteration and `sample_size` measured
    /// iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.sample_size, |b| f(b));
        let _ = &self.criterion;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        last_median: Duration::ZERO,
    };
    let wall = Instant::now();
    f(&mut bencher);
    println!(
        "bench {name:<60} median {:>12.3?} / iter  ({} samples, total {:.2?})",
        bencher.last_median,
        samples,
        wall.elapsed()
    );
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_id(), 10, |b| f(b));
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
