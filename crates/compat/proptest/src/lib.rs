//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment of this repository has no access to a crate
//! registry, so the test suites vendor the *exact subset* of the proptest
//! API they use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute;
//! * range strategies (`-1.0_f64..1.0`, `0_usize..4`, `-3_i64..=3`, …);
//! * [`collection::vec`] with `Range`/`RangeInclusive` size bounds;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from the real crate: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name, so failures reproduce exactly)
//! and there is **no shrinking** — a failing case panics with the sampled
//! arguments instead. If a registry becomes available, replacing this crate
//! with the real `proptest` is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Configuration of a [`proptest!`] block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count towards
    /// the case budget.
    Reject(String),
    /// A [`prop_assert!`] failed; the whole property fails.
    Fail(String),
}

/// The deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`, so a
    /// failing property reproduces identically on every run.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0x853c_49e6_748f_ea9b_u64;
        for byte in name.bytes() {
            state = state
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(byte as u64);
        }
        TestRng { state }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A source of random values of one type, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty integer strategy range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// A strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case fails with the sampled arguments reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Rejects the current case (it is re-drawn and does not count towards the
/// case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a zero-
/// argument test that samples the strategies `config.cases` times and runs
/// the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(64);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "property {} rejected too many cases ({} attempts for {} accepted)",
                    stringify!($name),
                    attempts,
                    accepted
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => panic!(
                        "property {} failed on case {}: {}\n  arguments: {:#?}",
                        stringify!($name),
                        accepted,
                        message,
                        ($(&$arg,)*)
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -2.5_f64..7.5, n in -3_i64..=3, k in 0_usize..4) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((-3..=3).contains(&n));
            prop_assert!(k < 4);
        }

        #[test]
        fn vec_strategy_respects_size_window(
            xs in crate::collection::vec(0.0_f64..1.0, 2..10),
            fixed in crate::collection::vec(-1.0_f64..1.0, 3..=3),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 10);
            prop_assert_eq!(fixed.len(), 3);
            for &x in &xs {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0_f64..1.0) {
            prop_assume!(x > 0.25);
            prop_assert!(x > 0.25);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::TestRng::deterministic("name");
        let mut b = crate::TestRng::deterministic("name");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics_with_arguments() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0.0_f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        always_fails();
    }
}
