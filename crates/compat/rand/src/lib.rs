//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to a crate
//! registry, so the toolkit vendors the *exact subset* of the `rand 0.8`
//! API it uses: [`RngCore`], [`Rng::gen`] for `f64`/`bool`/integer types,
//! [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_entropy`], and
//! [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — not the
//! ChaCha12 core of the real crate, but a high-quality, deterministic,
//! reproducible PRNG which is all the Monte-Carlo engine requires. If a
//! registry becomes available, replacing this crate with the real `rand` is
//! a one-line change in the workspace manifest (call sites are already
//! API-compatible).

#![forbid(unsafe_code)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A distribution that can produce values of type `T` from an RNG.
pub trait Distribution<T> {
    /// Samples one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform `[0, 1)` for floats, uniform over the
/// whole domain for integers and `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Convenience extension trait over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG that can be constructed from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from ambient entropy (wall clock). Use
    /// [`SeedableRng::seed_from_u64`] for anything that must be
    /// reproducible.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos ^ std::process::id() as u64)
    }
}

/// SplitMix64 step, used for seeding and seed derivation.
#[must_use]
pub fn split_mix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{split_mix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman–Vigna), seeded
    /// via SplitMix64 as its authors recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                x = split_mix64(x);
                *word = x;
            }
            // The all-zero state is the one forbidden xoshiro state; the
            // SplitMix64 expansion cannot produce it from any seed, but
            // guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_live_in_unit_interval_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn bool_samples_are_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((heads as f64 / 1e5 - 0.5).abs() < 0.01);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
