//! Workspace-local stand-in for the `rayon` crate.
//!
//! The build environment of this repository has no access to a crate
//! registry, so the sweep layer vendors the *exact subset* of the rayon API
//! it uses: `into_par_iter()` over ranges, vectors and slices, `map`, and
//! order-preserving `collect()`. Work is distributed over
//! [`std::thread::scope`] with one chunk per available core; results are
//! written back by index, so `collect()` returns items in input order —
//! exactly the guarantee the deterministic sweep runner relies on.
//!
//! If a registry becomes available, replacing this crate with the real
//! `rayon` is a one-line change in the workspace manifest (call sites are
//! already API-compatible).

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// The number of worker threads a parallel iterator will fan out to.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Order-preserving parallel map: applies `f` to every item, splitting the
/// items into one contiguous chunk per worker. The first chunk runs on the
/// calling thread, so a map only ever spawns `threads - 1` OS threads and a
/// single-core machine pays no spawn overhead at all. (A persistent worker
/// pool is what the real rayon brings; this shim keeps per-call scoped
/// threads for simplicity.)
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    let run_chunk = |inputs: &mut [Option<T>], outputs: &mut [Option<R>]| {
        for (input, output) in inputs.iter_mut().zip(outputs.iter_mut()) {
            let item = input.take().expect("each slot is consumed exactly once");
            *output = Some(f(item));
        }
    };
    let run_chunk = &run_chunk;
    std::thread::scope(|scope| {
        let mut pairs = slots.chunks_mut(chunk).zip(results.chunks_mut(chunk));
        let first = pairs.next();
        for (inputs, outputs) in pairs {
            scope.spawn(move || run_chunk(inputs, outputs));
        }
        if let Some((inputs, outputs)) = first {
            run_chunk(inputs, outputs);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot was filled by its worker"))
        .collect()
}

/// A parallel iterator that owns its items eagerly.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

/// A parallel iterator with a pending `map` stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> IntoParIter<T> {
    /// Applies `f` to every item in parallel (lazily; runs on `collect`).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items (no-op map), preserving order.
    #[must_use]
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Runs the map across worker threads and collects the results in input
    /// order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type produced by the iterator.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The (borrowed) item type.
    type Item: Send;

    /// Returns a parallel iterator over references to the items.
    fn par_iter(&'a self) -> IntoParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

/// The commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn par_iter_over_slices_borrows() {
        let values = vec![1.0_f64, 2.0, 3.0];
        let doubled: Vec<f64> = values.par_iter().map(|v| 2.0 * v).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn results_match_serial_execution_bit_for_bit() {
        let serial: Vec<f64> = (0..257).map(|i| (i as f64).sin().exp()).collect();
        let parallel: Vec<f64> = (0..257)
            .into_par_iter()
            .map(|i| (i as f64).sin().exp())
            .collect();
        assert_eq!(serial, parallel);
    }
}
