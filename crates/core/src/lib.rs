//! # single-electronics
//!
//! A toolkit for simulating single-electron circuits and the hybrid
//! SET/CMOS applications surveyed in *"Recent Advances and Future Prospects
//! in Single-Electronics"*: orthodox-theory physics, a SIMON-class
//! Monte-Carlo / master-equation simulator, a SPICE-class circuit simulator
//! with analytic SET compact models, a co-simulator coupling the two, and
//! the application layer (background-charge-immune AM/FM logic, the
//! SET/MOSFET multiple-valued literal gate, the SET/CMOS random-number
//! generator and the power-dissipation analysis).
//!
//! This crate is the facade: it re-exports the sub-crates under stable
//! names and provides a [`prelude`] plus a small [`report`] helper used by
//! the experiment harnesses to print aligned tables.
//!
//! | Layer | Crate | Re-export |
//! |---|---|---|
//! | Constants & quantities | `se-units` | [`units`] |
//! | Numerics | `se-numeric` | [`numeric`] |
//! | Netlists | `se-netlist` | [`netlist`] |
//! | Execution substrate (jobs, sinks, checkpoints) | `se-exec` | [`exec`] |
//! | Unified engine trait & parallel sweeps | `se-engine` | [`engine`] |
//! | Orthodox physics | `se-orthodox` | [`orthodox`] |
//! | Monte-Carlo / master equation | `se-montecarlo` | [`montecarlo`] |
//! | SPICE engine | `se-spice` | [`spice`] |
//! | Co-simulation | `se-hybrid` | [`hybrid`] |
//! | Logic & applications | `se-logic` | [`logic`] |
//! | Deck pipeline & `sesim` | `se-sim` | [`sim`] |
//!
//! Every simulator implements [`engine::StationaryEngine`] ("bias point in,
//! junction currents out"), and every sweep — gate sweeps, staircases, 2-D
//! stability maps — runs through the one parallel, deterministic
//! [`engine::SweepRunner`]. The time domain mirrors the design: the SPICE
//! integrator, the kinetic Monte-Carlo event clock, the hybrid
//! co-simulator and the [`engine::QuasiStatic`] adapter all implement
//! [`engine::TransientEngine`] ("initial state + stimulus waveforms in,
//! sampled currents out"), driven by the same [`engine::Waveform`]
//! vocabulary and fanned out by the ensemble-parallel
//! [`engine::TransientRunner`]. Both runners derive per-run seeds with the
//! same SplitMix64 discipline, so serial and parallel runs are
//! bit-identical everywhere. See `docs/ARCHITECTURE.md` for the full map.
//!
//! # Quickstart: a 1-D stationary sweep
//!
//! ```
//! use single_electronics::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The reference SET: 1 aF gate, 0.5 aF junctions, 100 kΩ.
//! let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3)?;
//! // Coulomb oscillations: one full gate period at 1 mV drain bias, 1 K.
//! let sweep = set.gate_sweep(1e-3, 0.0, set.gate_period(), 41, 0.0, 1.0)?;
//! let peak = sweep.iter().map(|p| p.current).fold(f64::MIN, f64::max);
//! assert!(peak > 0.0);
//!
//! // The same device through the unified engine surface: any
//! // StationaryEngine sweeps through the parallel, deterministic runner.
//! let engine = set.stationary_engine(1.0, 0.0)?.with_bias(1e-3, 0.0);
//! let values = single_electronics::engine::linspace(0.0, set.gate_period(), 41)?;
//! let points = SweepRunner::new().with_seed(7).run(&engine, "gate", &values, "drain")?;
//! assert_eq!(points.len(), 41);
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart: a transient pulse run
//!
//! ```
//! use single_electronics::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Lift the analytic SET into a transient backend and pulse its drain:
//! // 0 → 1 mV pulses, 2 ns wide, 8 ns period, gate held at the
//! // conductance peak.
//! let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3)?;
//! let engine = QuasiStatic::new(set.stationary_engine(1.0, 0.0)?);
//! let pulse = Waveform::pulse(0.0, 1e-3, 1e-9, 2e-9, 8e-9)?;
//! let gate = Waveform::dc(0.5 * set.gate_period());
//! let times = single_electronics::engine::sample_times(0.5e-9, 8e-9)?;
//! let trace = TransientRunner::new().with_seed(7).run(
//!     &engine,
//!     &[("drain", pulse), ("gate", gate)],
//!     &["drain"],
//!     &times,
//! )?;
//! // The drain current follows the pulse train: on inside, off outside.
//! let on = trace.at(3, 0).abs(); // t = 1.5 ns, inside the first pulse
//! let off = trace.at(0, 0).abs(); // t = 0, before the first edge
//! assert!(on > 10.0 * off.max(1e-18));
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart: run a deck
//!
//! No Rust required at all: a SPICE-style deck carries the circuit *and*
//! the analysis commands, and [`sim::run_deck`] (or the `sesim` binary)
//! parses, compiles and executes it — the partition picks the engine.
//!
//! ```
//! use single_electronics::sim::run_deck;
//!
//! # fn main() -> Result<(), single_electronics::sim::SimError> {
//! let deck = "\
//! single SET gate sweep
//! VD drain 0 1m
//! VG gate 0 0
//! J1 drain island C=0.5a R=100k
//! J2 island 0 C=0.5a R=100k
//! CG gate island 1a
//! .options temp=1 seed=7
//! .dc VG 0 0.16 8m
//! .print dc i(J1)
//! .end
//! ";
//! let run = run_deck(deck)?;
//! // Pure tunnel-junction deck: the compiler picked the master equation.
//! assert_eq!(run.results[0].engine(), "master-equation");
//! assert_eq!(run.results[0].len(), 21);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use se_engine as engine;
pub use se_exec as exec;
pub use se_hybrid as hybrid;
pub use se_logic as logic;
pub use se_montecarlo as montecarlo;
pub use se_netlist as netlist;
pub use se_numeric as numeric;
pub use se_orthodox as orthodox;
pub use se_sim as sim;
pub use se_spice as spice;
pub use se_units as units;

pub mod report;

/// The most commonly used types across the whole toolkit.
pub mod prelude {
    pub use crate::report::Table;
    pub use se_engine::{
        ControlId, ObservableId, QuasiStatic, Scenario, StabilityMap, StationaryEngine,
        SweepRunner, TransientEngine, TransientRunner, TransientTrace, Waveform,
    };
    pub use se_exec::{
        CancelToken, CheckpointStore, CsvSink, JobBuilder, JobSpec, ProgressSink, ResultSink,
        TableSink, Workers,
    };
    pub use se_hybrid::{HybridOptions, HybridSimulator, HybridTransientEngine, IslandEngine};
    pub use se_logic::amfm::{AmCodedGate, FmCodedGate, GateSpeedModel};
    pub use se_logic::encoding::{AmplitudeEncoding, FrequencyEncoding, LevelEncoding};
    pub use se_logic::gates::SetInverter;
    pub use se_logic::mvl::MvlGate;
    pub use se_logic::power::{CmosPowerModel, SetLogicPowerModel};
    pub use se_logic::randomness::RandomnessReport;
    pub use se_logic::rng::{RngComparison, SetMosRng};
    pub use se_montecarlo::prelude::*;
    pub use se_netlist::prelude::*;
    pub use se_orthodox::set::SingleElectronTransistor;
    pub use se_orthodox::{AnalyticSetEngine, ChargeState, TunnelSystem, TunnelSystemBuilder};
    pub use se_sim::{
        compile, execute, execute_serial, execute_with_options, run_deck, run_deck_batch,
        BatchOutcome, DeckRun, EngineChoice, ExecOptions, SimError, SimulationPlan,
        SimulationResult,
    };
    pub use se_spice::prelude::*;
    pub use se_units::constants::{BOLTZMANN, E, RESISTANCE_QUANTUM};
}
