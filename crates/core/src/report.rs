//! Plain-text table formatting for the experiment harnesses.
//!
//! Every experiment binary in `se-bench` prints its reproduced figure or
//! table through this helper so EXPERIMENTS.md and the console output stay
//! consistent.

use std::fmt;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of pre-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn add_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of `f64` values formatted in scientific
    /// notation with 4 significant digits, prefixed by a label.
    pub fn add_numeric_row(&mut self, label: impl Into<String>, values: &[f64]) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.4e}")));
        self.add_row(&cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no data rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "# {}", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", rule.join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_formats_a_table() {
        let mut table = Table::new("demo", &["x", "y"]);
        assert!(table.is_empty());
        table.add_row(&["1".to_string(), "2".to_string()]);
        table.add_numeric_row("row", &[3.14159e-9]);
        assert_eq!(table.len(), 2);
        assert_eq!(table.title(), "demo");
        let text = table.to_string();
        assert!(text.contains("# demo"));
        assert!(text.contains("3.1416e-9"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut table = Table::new("demo", &["a", "b"]);
        table.add_row(&["only one".to_string()]);
    }
}
