//! Shared sweep-grid construction.
//!
//! Every engine used to carry its own copy of `linspace` with its own error
//! type and its own quirks (none of them accepted descending ranges, which
//! made reverse-bias sweeps impossible without manual `rev()` gymnastics).
//! This is now the single canonical implementation; the per-engine wrappers
//! only convert [`GridError`] into their local error enums.

use std::fmt;

/// Errors of grid construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// Fewer than two points were requested.
    TooFewPoints(usize),
    /// The range endpoints coincide or are not finite.
    DegenerateRange {
        /// The requested start value (stringified to keep `Eq`).
        start: String,
        /// The requested stop value.
        stop: String,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::TooFewPoints(points) => {
                write!(f, "a sweep needs at least two points, got {points}")
            }
            GridError::DegenerateRange { start, stop } => write!(
                f,
                "sweep range must have distinct, finite endpoints, got [{start}, {stop}]"
            ),
        }
    }
}

impl std::error::Error for GridError {}

/// Generates `points` evenly spaced values covering `[start, stop]`.
///
/// Ascending (`start < stop`) and descending (`start > stop`) ranges are
/// both supported — a descending grid runs a reverse-bias sweep without any
/// caller-side reversal. The first value is exactly `start` and the last is
/// exactly `stop`.
///
/// # Errors
///
/// Returns [`GridError::TooFewPoints`] if `points < 2` and
/// [`GridError::DegenerateRange`] if the endpoints coincide or are not
/// finite.
pub fn linspace(start: f64, stop: f64, points: usize) -> Result<Vec<f64>, GridError> {
    if points < 2 {
        return Err(GridError::TooFewPoints(points));
    }
    if start == stop || !start.is_finite() || !stop.is_finite() {
        return Err(GridError::DegenerateRange {
            start: start.to_string(),
            stop: stop.to_string(),
        });
    }
    let last = (points - 1) as f64;
    Ok((0..points)
        .map(|i| {
            if i == points - 1 {
                stop
            } else {
                start + (stop - start) * i as f64 / last
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_too_few_points_and_degenerate_ranges() {
        assert_eq!(linspace(0.0, 1.0, 0), Err(GridError::TooFewPoints(0)));
        assert_eq!(linspace(0.0, 1.0, 1), Err(GridError::TooFewPoints(1)));
        assert!(matches!(
            linspace(2.0, 2.0, 5),
            Err(GridError::DegenerateRange { .. })
        ));
        assert!(linspace(f64::NAN, 1.0, 5).is_err());
        assert!(linspace(0.0, f64::INFINITY, 5).is_err());
    }

    #[test]
    fn ascending_grid_covers_the_range() {
        let xs = linspace(0.0, 1.0, 5).unwrap();
        assert_eq!(xs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn descending_grid_enables_reverse_bias_sweeps() {
        let xs = linspace(0.1, -0.1, 5).unwrap();
        assert_eq!(xs.len(), 5);
        assert_eq!(xs[0], 0.1);
        assert_eq!(xs[4], -0.1);
        for pair in xs.windows(2) {
            assert!(pair[1] < pair[0]);
        }
    }

    #[test]
    fn endpoints_are_exact() {
        let xs = linspace(-3.0, 7.0, 1001).unwrap();
        assert_eq!(xs[0], -3.0);
        assert_eq!(*xs.last().unwrap(), 7.0);
    }
}
