//! Shared sweep-grid construction.
//!
//! Every engine used to carry its own copy of `linspace` with its own error
//! type and its own quirks (none of them accepted descending ranges, which
//! made reverse-bias sweeps impossible without manual `rev()` gymnastics).
//! This is now the single canonical implementation; the per-engine wrappers
//! only convert [`GridError`] into their local error enums.

use std::fmt;

/// Errors of grid construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// Fewer than two points were requested.
    TooFewPoints(usize),
    /// The range endpoints coincide or are not finite.
    DegenerateRange {
        /// The requested start value (stringified to keep `Eq`).
        start: String,
        /// The requested stop value.
        stop: String,
    },
    /// A transient sample grid is empty, non-finite, negative, or not
    /// strictly increasing.
    BadSampleTimes(
        /// Human-readable description of the violation.
        String,
    ),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::TooFewPoints(points) => {
                write!(f, "a sweep needs at least two points, got {points}")
            }
            GridError::DegenerateRange { start, stop } => write!(
                f,
                "sweep range must have distinct, finite endpoints, got [{start}, {stop}]"
            ),
            GridError::BadSampleTimes(reason) => {
                write!(f, "invalid transient sample times: {reason}")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// Generates `points` evenly spaced values covering `[start, stop]`.
///
/// Ascending (`start < stop`) and descending (`start > stop`) ranges are
/// both supported — a descending grid runs a reverse-bias sweep without any
/// caller-side reversal. The first value is exactly `start` and the last is
/// exactly `stop`.
///
/// # Errors
///
/// Returns [`GridError::TooFewPoints`] if `points < 2` and
/// [`GridError::DegenerateRange`] if the endpoints coincide or are not
/// finite.
pub fn linspace(start: f64, stop: f64, points: usize) -> Result<Vec<f64>, GridError> {
    if points < 2 {
        return Err(GridError::TooFewPoints(points));
    }
    if start == stop || !start.is_finite() || !stop.is_finite() {
        return Err(GridError::DegenerateRange {
            start: start.to_string(),
            stop: stop.to_string(),
        });
    }
    let last = (points - 1) as f64;
    Ok((0..points)
        .map(|i| {
            if i == points - 1 {
                stop
            } else {
                start + (stop - start) * i as f64 / last
            }
        })
        .collect())
}

/// Builds the uniform transient sample grid `[0, step, 2·step, …]` up to
/// and including the last multiple of `step` that does not exceed
/// `stop + step/2` (so `stop` itself is hit despite rounding).
///
/// ```
/// let times = se_engine::grid::sample_times(1e-9, 4e-9).unwrap();
/// assert_eq!(times.len(), 5);
/// assert_eq!(times[0], 0.0);
/// assert!((times[4] - 4e-9).abs() < 1e-21);
/// ```
///
/// # Errors
///
/// Returns [`GridError::BadSampleTimes`] for a non-positive or non-finite
/// step, or a stop time smaller than one step.
pub fn sample_times(step: f64, stop: f64) -> Result<Vec<f64>, GridError> {
    if !(step > 0.0) || !step.is_finite() {
        return Err(GridError::BadSampleTimes(format!(
            "step must be positive and finite, got {step}"
        )));
    }
    if !(stop >= step) || !stop.is_finite() {
        return Err(GridError::BadSampleTimes(format!(
            "stop must be at least one step, got {stop} with step {step}"
        )));
    }
    let steps = (stop / step).round() as usize;
    Ok((0..=steps).map(|i| i as f64 * step).collect())
}

/// Validates a transient sample grid: non-empty, finite, non-negative and
/// strictly increasing. Every [`crate::TransientEngine`] backend runs its
/// sample times through this check (mapped into its own error type).
///
/// # Errors
///
/// Returns [`GridError::BadSampleTimes`] describing the first violation.
pub fn validate_sample_times(times: &[f64]) -> Result<(), GridError> {
    if times.is_empty() {
        return Err(GridError::BadSampleTimes(
            "at least one sample time is required".into(),
        ));
    }
    if !(times[0] >= 0.0) || !times[0].is_finite() {
        return Err(GridError::BadSampleTimes(format!(
            "sample times must start at or after t = 0, got {}",
            times[0]
        )));
    }
    for (index, pair) in times.windows(2).enumerate() {
        if !(pair[1] > pair[0]) || !pair[1].is_finite() {
            return Err(GridError::BadSampleTimes(format!(
                "sample times must be strictly increasing and finite, got {} then {} at index {}",
                pair[0],
                pair[1],
                index + 1
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_too_few_points_and_degenerate_ranges() {
        assert_eq!(linspace(0.0, 1.0, 0), Err(GridError::TooFewPoints(0)));
        assert_eq!(linspace(0.0, 1.0, 1), Err(GridError::TooFewPoints(1)));
        assert!(matches!(
            linspace(2.0, 2.0, 5),
            Err(GridError::DegenerateRange { .. })
        ));
        assert!(linspace(f64::NAN, 1.0, 5).is_err());
        assert!(linspace(0.0, f64::INFINITY, 5).is_err());
    }

    #[test]
    fn ascending_grid_covers_the_range() {
        let xs = linspace(0.0, 1.0, 5).unwrap();
        assert_eq!(xs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn descending_grid_enables_reverse_bias_sweeps() {
        let xs = linspace(0.1, -0.1, 5).unwrap();
        assert_eq!(xs.len(), 5);
        assert_eq!(xs[0], 0.1);
        assert_eq!(xs[4], -0.1);
        for pair in xs.windows(2) {
            assert!(pair[1] < pair[0]);
        }
    }

    #[test]
    fn endpoints_are_exact() {
        let xs = linspace(-3.0, 7.0, 1001).unwrap();
        assert_eq!(xs[0], -3.0);
        assert_eq!(*xs.last().unwrap(), 7.0);
    }

    // The PR-1 descending-range support left the `n = 0` / `n = 1` and
    // reversed-bounds corners untested; these pin the edge behaviour down.

    #[test]
    fn zero_and_one_point_requests_error_for_reversed_bounds_too() {
        assert_eq!(linspace(1.0, 0.0, 0), Err(GridError::TooFewPoints(0)));
        assert_eq!(linspace(1.0, -1.0, 1), Err(GridError::TooFewPoints(1)));
        assert_eq!(linspace(-5.0, -5.0, 0), Err(GridError::TooFewPoints(0)));
    }

    #[test]
    fn two_point_grids_are_exactly_the_endpoints_in_either_direction() {
        assert_eq!(linspace(0.25, 0.75, 2).unwrap(), vec![0.25, 0.75]);
        assert_eq!(linspace(0.75, 0.25, 2).unwrap(), vec![0.75, 0.25]);
        assert_eq!(linspace(-1.0, 1.0, 2).unwrap(), vec![-1.0, 1.0]);
    }

    #[test]
    fn reversed_bounds_mirror_the_ascending_grid() {
        let up = linspace(-0.2, 0.4, 31).unwrap();
        let down = linspace(0.4, -0.2, 31).unwrap();
        for (a, b) in up.iter().zip(down.iter().rev()) {
            assert!((a - b).abs() < 1e-15, "asymmetric grid: {a} vs {b}");
        }
    }

    #[test]
    fn sample_grid_covers_zero_to_stop_inclusive() {
        let times = sample_times(0.5e-9, 2e-9).unwrap();
        assert_eq!(times.len(), 5);
        assert_eq!(times[0], 0.0);
        assert!((times[4] - 2e-9).abs() < 1e-24);
        validate_sample_times(&times).unwrap();
    }

    #[test]
    fn sample_grid_rejects_degenerate_requests() {
        assert!(matches!(
            sample_times(0.0, 1e-9),
            Err(GridError::BadSampleTimes(_))
        ));
        assert!(sample_times(-1e-9, 1e-9).is_err());
        assert!(sample_times(1e-9, 0.5e-9).is_err());
        assert!(sample_times(1e-9, f64::INFINITY).is_err());
    }

    #[test]
    fn sample_time_validation_catches_each_violation() {
        assert!(validate_sample_times(&[]).is_err());
        assert!(validate_sample_times(&[-1e-9]).is_err());
        assert!(validate_sample_times(&[0.0, 0.0]).is_err());
        assert!(validate_sample_times(&[0.0, 2e-9, 1e-9]).is_err());
        assert!(validate_sample_times(&[0.0, 1e-9, f64::NAN]).is_err());
        assert!(validate_sample_times(&[0.0]).is_ok());
        assert!(validate_sample_times(&[1e-9, 2e-9]).is_ok());
    }
}
