//! The unified engine layer of the single-electronics toolkit: one
//! stationary trait, one transient trait, and one deterministic parallel
//! runner for each.
//!
//! The paper's central contrast (Section 4) is between SPICE-style analytic
//! SET models and detailed Monte-Carlo / master-equation simulators — and
//! its closing argument is that device-level accuracy must compose with
//! *circuit-level time-domain* simulation before real single-electron logic
//! can be evaluated. This crate gives every engine of the toolkit one face
//! and one execution layer in both domains:
//!
//! * [`StationaryEngine`] — "bias point in, junction currents out". An
//!   engine resolves electrode/observable *names* to typed handles once
//!   ([`ControlId`], [`ObservableId`]) and then solves stationary currents
//!   at arbitrary control values;
//! * [`SweepRunner`] — the single generic sweep loop used by the analytic
//!   SET, the master-equation solver, the kinetic Monte-Carlo engine and
//!   the SPICE DC engine. It is a thin adapter over the [`se_exec`] job
//!   substrate: bias points fan out across all cores in chunks, and every
//!   point's RNG seed derives deterministically from the sweep seed and
//!   the point index (see [`runner::derive_seed`], re-exported from
//!   [`se_exec::seed`] — the single source of truth), so **serial,
//!   parallel, chunked and resumed runs are bit-identical**;
//! * [`TransientEngine`] — "initial state + stimulus waveforms in, sampled
//!   currents out". Implemented by the SPICE backward-Euler integrator, the
//!   kinetic Monte-Carlo event clock and the hybrid co-simulator, and by
//!   [`QuasiStatic`], which lifts any stationary engine into a sampling
//!   transient backend;
//! * [`TransientRunner`] — the ensemble loop of the time domain: seed
//!   ensembles, corner sweeps and input-vector batteries run concurrently
//!   under the same SplitMix64 per-run seeding discipline, so transient
//!   ensembles are also bit-identical serial vs parallel;
//! * [`Waveform`] — the shared stimulus vocabulary (step, ramp, pulse
//!   train, PWL, sine) every transient backend consumes;
//! * [`grid`] — shared grid construction: [`grid::linspace`] (ascending
//!   *and* descending ranges) for bias sweeps, [`grid::sample_times`] and
//!   [`grid::validate_sample_times`] for transient sample grids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(a > b)` is the idiom this workspace uses to reject NaN alongside
// ordinary range violations.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod grid;
pub mod runner;
pub mod transient;
pub mod waveform;

pub use grid::{linspace, sample_times, validate_sample_times, GridError};
pub use runner::{derive_seed, StabilityMap, SweepPoint, SweepRunner};
pub use transient::{
    QuasiStatic, Scenario, TransientEngine, TransientRunner, TransientTrace, ENSEMBLE_CHUNK,
};
pub use waveform::{Waveform, WaveformError};

/// Typed handle to a swept control (an electrode or voltage source),
/// returned by [`StationaryEngine::resolve_control`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlId(pub usize);

/// Typed handle to a measured observable (a junction or source current),
/// returned by [`StationaryEngine::resolve_observable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObservableId(pub usize);

/// A stationary simulation engine: voltages in, stationary currents out.
///
/// Implementations must be cheap to share across threads (`Sync`); the
/// [`SweepRunner`] calls [`StationaryEngine::stationary_current`] for many
/// bias points concurrently, each call carrying its own derived seed.
/// Deterministic engines (master equation, analytic models) simply ignore
/// the seed; stochastic engines must use it as the *only* source of
/// randomness so sweeps are reproducible.
pub trait StationaryEngine: Sync {
    /// The engine's error type.
    type Error: std::error::Error + Send + 'static;

    /// A short human-readable engine name (used in reports and benches).
    fn engine_name(&self) -> &'static str;

    /// Resolves a control name (electrode / voltage source) to a typed
    /// handle, or errors if no such control exists.
    fn resolve_control(&self, name: &str) -> Result<ControlId, Self::Error>;

    /// Resolves an observable name (junction / source current) to a typed
    /// handle, or errors if no such observable exists.
    fn resolve_observable(&self, name: &str) -> Result<ObservableId, Self::Error>;

    /// Solves the stationary state with the given control values applied
    /// and returns the current (ampere) of each requested observable, in
    /// order. One call performs one solve, however many observables are
    /// read from it.
    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seed: u64,
    ) -> Result<Vec<f64>, Self::Error>;

    /// Convenience wrapper for a single observable.
    fn stationary_current(
        &self,
        controls: &[(ControlId, f64)],
        observable: ObservableId,
        seed: u64,
    ) -> Result<f64, Self::Error> {
        let currents = self.stationary_currents(controls, &[observable], seed)?;
        Ok(currents
            .first()
            .copied()
            .expect("stationary_currents returns one value per observable"))
    }

    /// Solves `seeds.len()` statistically independent repeats of the *same*
    /// bias point — a seed ensemble — returning one observable row per
    /// seed, in seed order.
    ///
    /// The default implementation loops [`Self::stationary_currents`] once
    /// per seed; engines with a batched ensemble path (the kinetic
    /// Monte-Carlo engine steps all replicas in lockstep over SoA-packed
    /// state) override it together with
    /// [`Self::has_batched_stationary_ensemble`]. Overrides must keep the
    /// ensemble contract: row `k` is **bit-identical** to
    /// `stationary_currents(controls, observables, seeds[k])`.
    ///
    /// # Errors
    ///
    /// Propagates the first failing solve.
    fn stationary_currents_ensemble(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seeds: &[u64],
    ) -> Result<Vec<Vec<f64>>, Self::Error> {
        seeds
            .iter()
            .map(|&seed| self.stationary_currents(controls, observables, seed))
            .collect()
    }

    /// Whether [`Self::stationary_currents_ensemble`] runs replicas through
    /// a genuinely batched engine (`true`) or the default per-seed loop
    /// (`false`). Ensemble consumers use this to decide whether grouping
    /// repeats into one call buys anything.
    fn has_batched_stationary_ensemble(&self) -> bool {
        false
    }
}

impl<E: StationaryEngine + ?Sized> StationaryEngine for &E {
    type Error = E::Error;

    fn engine_name(&self) -> &'static str {
        (**self).engine_name()
    }

    fn resolve_control(&self, name: &str) -> Result<ControlId, Self::Error> {
        (**self).resolve_control(name)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, Self::Error> {
        (**self).resolve_observable(name)
    }

    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seed: u64,
    ) -> Result<Vec<f64>, Self::Error> {
        (**self).stationary_currents(controls, observables, seed)
    }

    fn stationary_currents_ensemble(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seeds: &[u64],
    ) -> Result<Vec<Vec<f64>>, Self::Error> {
        (**self).stationary_currents_ensemble(controls, observables, seeds)
    }

    fn has_batched_stationary_ensemble(&self) -> bool {
        (**self).has_batched_stationary_ensemble()
    }
}
