//! The unified stationary-engine layer of the single-electronics toolkit.
//!
//! The paper's central contrast (Section 4) is between SPICE-style analytic
//! SET models and detailed Monte-Carlo / master-equation simulators. This
//! toolkit ships all three engine families, and all of its headline
//! experiments — Coulomb oscillations, staircases, temperature washout,
//! stability (Coulomb-diamond) maps — are *embarrassingly parallel grids of
//! independent bias points*. This crate gives every engine one face and one
//! execution layer:
//!
//! * [`StationaryEngine`] — "bias point in, junction currents out". An
//!   engine resolves electrode/observable *names* to typed handles once
//!   ([`ControlId`], [`ObservableId`]) and then solves stationary currents
//!   at arbitrary control values;
//! * [`SweepRunner`] — the single generic sweep loop used by the analytic
//!   SET, the master-equation solver, the kinetic Monte-Carlo engine and
//!   the SPICE DC engine. It fans bias points out across all cores with
//!   rayon, and derives every point's RNG seed deterministically from the
//!   sweep seed and the point index (see [`runner::derive_seed`]), so
//!   **parallel and serial runs are bit-identical**;
//! * [`grid`] — shared grid construction ([`grid::linspace`] supports
//!   ascending *and* descending ranges, enabling reverse-bias sweeps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod runner;

pub use grid::{linspace, GridError};
pub use runner::{derive_seed, StabilityMap, SweepPoint, SweepRunner};

/// Typed handle to a swept control (an electrode or voltage source),
/// returned by [`StationaryEngine::resolve_control`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlId(pub usize);

/// Typed handle to a measured observable (a junction or source current),
/// returned by [`StationaryEngine::resolve_observable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObservableId(pub usize);

/// A stationary simulation engine: voltages in, stationary currents out.
///
/// Implementations must be cheap to share across threads (`Sync`); the
/// [`SweepRunner`] calls [`StationaryEngine::stationary_current`] for many
/// bias points concurrently, each call carrying its own derived seed.
/// Deterministic engines (master equation, analytic models) simply ignore
/// the seed; stochastic engines must use it as the *only* source of
/// randomness so sweeps are reproducible.
pub trait StationaryEngine: Sync {
    /// The engine's error type.
    type Error: std::error::Error + Send + 'static;

    /// A short human-readable engine name (used in reports and benches).
    fn engine_name(&self) -> &'static str;

    /// Resolves a control name (electrode / voltage source) to a typed
    /// handle, or errors if no such control exists.
    fn resolve_control(&self, name: &str) -> Result<ControlId, Self::Error>;

    /// Resolves an observable name (junction / source current) to a typed
    /// handle, or errors if no such observable exists.
    fn resolve_observable(&self, name: &str) -> Result<ObservableId, Self::Error>;

    /// Solves the stationary state with the given control values applied
    /// and returns the current (ampere) of each requested observable, in
    /// order. One call performs one solve, however many observables are
    /// read from it.
    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seed: u64,
    ) -> Result<Vec<f64>, Self::Error>;

    /// Convenience wrapper for a single observable.
    fn stationary_current(
        &self,
        controls: &[(ControlId, f64)],
        observable: ObservableId,
        seed: u64,
    ) -> Result<f64, Self::Error> {
        let currents = self.stationary_currents(controls, &[observable], seed)?;
        Ok(currents
            .first()
            .copied()
            .expect("stationary_currents returns one value per observable"))
    }
}

impl<E: StationaryEngine + ?Sized> StationaryEngine for &E {
    type Error = E::Error;

    fn engine_name(&self) -> &'static str {
        (**self).engine_name()
    }

    fn resolve_control(&self, name: &str) -> Result<ControlId, Self::Error> {
        (**self).resolve_control(name)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, Self::Error> {
        (**self).resolve_observable(name)
    }

    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seed: u64,
    ) -> Result<Vec<f64>, Self::Error> {
        (**self).stationary_currents(controls, observables, seed)
    }
}
