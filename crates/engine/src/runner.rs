//! The generic, parallel, deterministic sweep runner — a thin adapter over
//! the [`se_exec`] job substrate.

use crate::StationaryEngine;
use se_exec::{ExecError, JobSpec};

/// One point of a 1-D bias sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept control value (a gate or drain voltage, in volt).
    pub control: f64,
    /// The measured observable current in ampere.
    pub current: f64,
}

/// A 2-D stability (Coulomb-diamond) map: the observable current on an
/// `outer × inner` control grid, stored row-major with the outer control as
/// the slow axis.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityMap {
    outer: Vec<f64>,
    inner: Vec<f64>,
    currents: Vec<f64>,
}

impl StabilityMap {
    /// The outer (slow-axis, usually gate) control values.
    #[must_use]
    pub fn outer_values(&self) -> &[f64] {
        &self.outer
    }

    /// The inner (fast-axis, usually drain) control values.
    #[must_use]
    pub fn inner_values(&self) -> &[f64] {
        &self.inner
    }

    /// The current at outer index `i`, inner index `j`.
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.currents[i * self.inner.len() + j]
    }

    /// One row of currents (fixed outer value).
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        let n = self.inner.len();
        &self.currents[i * n..(i + 1) * n]
    }

    /// The raw row-major current data.
    #[must_use]
    pub fn as_flat(&self) -> &[f64] {
        &self.currents
    }

    /// Converts into nested `rows[outer][inner]` vectors (the historical
    /// return shape of the per-engine stability-map helpers). A map with an
    /// empty inner grid yields one empty row per outer value.
    #[must_use]
    pub fn into_rows(self) -> Vec<Vec<f64>> {
        let n = self.inner.len();
        if n == 0 {
            return vec![Vec::new(); self.outer.len()];
        }
        self.currents.chunks(n).map(<[f64]>::to_vec).collect()
    }
}

/// The toolkit-wide per-item seed derivation, re-exported from its single
/// source of truth, [`se_exec::seed`]:
/// `SplitMix64(SplitMix64(seed) ⊕ index)`. The derivation depends only on
/// `(seed, index)` — never on thread scheduling or chunking — which is
/// what makes parallel sweeps bit-identical to serial ones.
pub use se_exec::seed::derive_seed;

/// The parallel core shared by [`SweepRunner`] and
/// [`crate::TransientRunner`]: evaluates `solve(index, derive_seed(seed,
/// index))` for `count` indices through the [`se_exec`] substrate —
/// chunked across all cores when `parallel` — and returns the results in
/// index order, or the first error by index.
pub(crate) fn map_indexed<T, Err, F>(
    seed: u64,
    parallel: bool,
    chunk: Option<usize>,
    count: usize,
    solve: F,
) -> Result<Vec<T>, Err>
where
    T: Send,
    Err: Send,
    F: Fn(usize, u64) -> Result<T, Err> + Sync,
{
    let mut spec = JobSpec::new(count).with_seed(seed);
    if let Some(chunk) = chunk {
        spec = spec.with_chunk(chunk);
    }
    if !parallel {
        spec = spec.serial();
    }
    match se_exec::run_collect(&spec, &mut (), solve) {
        Ok(items) => Ok(items),
        Err(ExecError::Job { error, .. }) => Err(error),
        Err(other) => unreachable!(
            "collect-only jobs cannot fail outside the solver ({})",
            match other {
                ExecError::Sink(_) => "sink",
                ExecError::Checkpoint(_) => "checkpoint",
                ExecError::Cancelled { .. } => "cancelled",
                ExecError::Job { .. } => "job",
            }
        ),
    }
}

/// The single generic sweep loop shared by every engine — a thin adapter
/// over the [`se_exec`] job substrate.
///
/// A runner is a small value object holding the sweep seed, the
/// parallelism switch and an optional chunk size. Every execution mode
/// visits the same points with the same derived seeds, so toggling
/// [`SweepRunner::serial`] or [`SweepRunner::with_chunk`] never changes
/// results — only scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    seed: u64,
    parallel: bool,
    chunk: Option<usize>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new()
    }
}

impl SweepRunner {
    /// A parallel runner with seed 0 and automatic chunking.
    #[must_use]
    pub fn new() -> Self {
        SweepRunner {
            seed: 0,
            parallel: true,
            chunk: None,
        }
    }

    /// Sets the sweep seed all per-point seeds are derived from.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many consecutive points one scheduled task solves (see
    /// [`se_exec::JobSpec::with_chunk`]); larger chunks amortize per-task
    /// overhead on cheap engines. Results never depend on it.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk);
        self
    }

    /// Forces single-threaded execution (results are identical; useful for
    /// profiling and for the determinism tests).
    #[must_use]
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// The sweep seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether points fan out across threads.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// The explicit chunk size, if one was set.
    #[must_use]
    pub fn chunk(&self) -> Option<usize> {
        self.chunk
    }

    /// The parallel core every sweep is built on: evaluates
    /// `solve(index, derived_seed)` for `points` indices — across all cores
    /// when the runner is parallel — and returns the results in index
    /// order, or the first error by index.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest-index) error returned by `solve`.
    pub fn map_points<T, Err, F>(&self, points: usize, solve: F) -> Result<Vec<T>, Err>
    where
        T: Send,
        Err: Send,
        F: Fn(usize, u64) -> Result<T, Err> + Sync,
    {
        map_indexed(self.seed, self.parallel, self.chunk, points, solve)
    }

    /// Runs a 1-D sweep: applies each value of `values` to `control` and
    /// measures `observable`.
    ///
    /// # Errors
    ///
    /// Propagates name-resolution failures and the first per-point engine
    /// error.
    pub fn run<E: StationaryEngine>(
        &self,
        engine: &E,
        control: &str,
        values: &[f64],
        observable: &str,
    ) -> Result<Vec<SweepPoint>, E::Error> {
        let control = engine.resolve_control(control)?;
        let observable = engine.resolve_observable(observable)?;
        self.map_points(values.len(), |i, seed| {
            let value = values[i];
            let current = engine.stationary_current(&[(control, value)], observable, seed)?;
            Ok(SweepPoint {
                control: value,
                current,
            })
        })
    }

    /// Runs a 2-D sweep over `outer × inner` control grids (for a SET:
    /// gate × drain) and returns the stability map. Every grid point is an
    /// independent task, so the whole map parallelises, not just rows.
    ///
    /// # Errors
    ///
    /// Propagates name-resolution failures and the first per-point engine
    /// error.
    pub fn stability_map<E: StationaryEngine>(
        &self,
        engine: &E,
        outer_control: &str,
        outer_values: &[f64],
        inner_control: &str,
        inner_values: &[f64],
        observable: &str,
    ) -> Result<StabilityMap, E::Error> {
        let outer = engine.resolve_control(outer_control)?;
        let inner = engine.resolve_control(inner_control)?;
        let observable = engine.resolve_observable(observable)?;
        let n_inner = inner_values.len();
        let currents = self.map_points(outer_values.len() * n_inner, |index, seed| {
            let controls = [
                (outer, outer_values[index / n_inner]),
                (inner, inner_values[index % n_inner]),
            ];
            engine.stationary_current(&controls, observable, seed)
        })?;
        Ok(StabilityMap {
            outer: outer_values.to_vec(),
            inner: inner_values.to_vec(),
            currents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlId, ObservableId, StationaryEngine};
    use std::fmt;

    /// A deterministic toy engine: current = sum of control values plus a
    /// seed-dependent jitter, so determinism tests notice wrong seeds.
    struct ToyEngine;

    #[derive(Debug, PartialEq)]
    struct ToyError(String);

    impl fmt::Display for ToyError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for ToyError {}

    impl StationaryEngine for ToyEngine {
        type Error = ToyError;

        fn engine_name(&self) -> &'static str {
            "toy"
        }

        fn resolve_control(&self, name: &str) -> Result<ControlId, ToyError> {
            match name {
                "gate" => Ok(ControlId(0)),
                "drain" => Ok(ControlId(1)),
                other => Err(ToyError(format!("no control `{other}`"))),
            }
        }

        fn resolve_observable(&self, name: &str) -> Result<ObservableId, ToyError> {
            match name {
                "I" => Ok(ObservableId(0)),
                other => Err(ToyError(format!("no observable `{other}`"))),
            }
        }

        fn stationary_currents(
            &self,
            controls: &[(ControlId, f64)],
            observables: &[ObservableId],
            seed: u64,
        ) -> Result<Vec<f64>, ToyError> {
            let bias: f64 = controls.iter().map(|(_, v)| v).sum();
            let jitter = (seed % 1024) as f64 * 1e-12;
            Ok(observables.iter().map(|_| bias + jitter).collect())
        }
    }

    #[test]
    fn resolution_errors_surface() {
        let runner = SweepRunner::new();
        assert!(runner.run(&ToyEngine, "nope", &[0.0], "I").is_err());
        assert!(runner.run(&ToyEngine, "gate", &[0.0], "nope").is_err());
    }

    #[test]
    fn parallel_and_serial_runs_are_bit_identical() {
        let values: Vec<f64> = (0..257).map(|i| i as f64 * 1e-3).collect();
        let parallel = SweepRunner::new()
            .with_seed(42)
            .run(&ToyEngine, "gate", &values, "I")
            .unwrap();
        let serial = SweepRunner::new()
            .with_seed(42)
            .serial()
            .run(&ToyEngine, "gate", &values, "I")
            .unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let values = [0.0_f64; 4];
        let a = SweepRunner::new()
            .with_seed(1)
            .run(&ToyEngine, "gate", &values, "I")
            .unwrap();
        let b = SweepRunner::new()
            .with_seed(2)
            .run(&ToyEngine, "gate", &values, "I")
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn stability_map_is_row_major_and_complete() {
        let outer = [0.0, 1.0];
        let inner = [10.0, 20.0, 30.0];
        let map = SweepRunner::new()
            .stability_map(&ToyEngine, "gate", &outer, "drain", &inner, "I")
            .unwrap();
        assert_eq!(map.outer_values(), &outer);
        assert_eq!(map.inner_values(), &inner);
        for (i, &vg) in outer.iter().enumerate() {
            for (j, &vd) in inner.iter().enumerate() {
                let expected_bias = vg + vd;
                assert!((map.at(i, j) - expected_bias).abs() < 1e-9 + 1e-9 * expected_bias);
            }
        }
        let rows = map.clone().into_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 3);
        assert_eq!(rows[1], map.row(1));
    }

    #[test]
    fn empty_inner_grid_degenerates_gracefully() {
        let map = SweepRunner::new()
            .stability_map(&ToyEngine, "gate", &[0.0, 1.0], "drain", &[], "I")
            .unwrap();
        assert_eq!(map.into_rows(), vec![Vec::<f64>::new(), Vec::new()]);
        let empty = SweepRunner::new()
            .stability_map(&ToyEngine, "gate", &[], "drain", &[1.0], "I")
            .unwrap();
        assert!(empty.into_rows().is_empty());
    }

    #[test]
    fn first_error_by_index_wins() {
        let runner = SweepRunner::new();
        let err = runner
            .map_points(8, |i, _| {
                if i >= 3 {
                    Err(ToyError(format!("boom at {i}")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(err, ToyError("boom at 3".into()));
    }

    #[test]
    fn derive_seed_is_the_substrate_derivation() {
        // The historical `se_engine::derive_seed` path must keep producing
        // the exact values the substrate pins (see `se_exec::seed`).
        assert_eq!(derive_seed(42, 0), 0x57e1_faba_6510_7204);
        assert_eq!(derive_seed(42, 7), se_exec::derive_seed(42, 7));
    }

    #[test]
    fn chunked_sweeps_are_bit_identical_to_unchunked() {
        let values: Vec<f64> = (0..101).map(|i| i as f64 * 1e-3).collect();
        let baseline = SweepRunner::new()
            .with_seed(11)
            .run(&ToyEngine, "gate", &values, "I")
            .unwrap();
        for chunk in [1, 7, 64, 1000] {
            let chunked = SweepRunner::new()
                .with_seed(11)
                .with_chunk(chunk)
                .run(&ToyEngine, "gate", &values, "I")
                .unwrap();
            assert_eq!(chunked, baseline, "chunk={chunk}");
        }
    }
}
