//! The unified transient-engine layer: one trait and one parallel runner
//! for every time-domain backend.
//!
//! The stationary layer ([`crate::StationaryEngine`] + [`crate::SweepRunner`])
//! answers "what current flows at this bias point?"; this module answers the
//! circuit-level question the paper poses for real single-electron logic:
//! "what currents flow *over time* under this stimulus?". The contract is
//! the same three-step shape:
//!
//! 1. resolve drive (source/electrode) and observable (junction/branch)
//!    *names* to typed handles once;
//! 2. hand the engine a set of [`Waveform`] drives, a sample grid and a
//!    seed;
//! 3. get back a [`TransientTrace`] of observable currents sampled on that
//!    grid.
//!
//! [`TransientRunner`] then runs *ensembles* of such scenarios — seed
//! ensembles, corner sweeps, input-vector batteries — across all cores with
//! the exact per-run seeding discipline of the sweep layer
//! ([`crate::derive_seed`]), so serial and parallel ensembles are
//! bit-identical.
//!
//! Three families implement the trait: the SPICE backward-Euler integrator
//! (`se-spice`), the kinetic Monte-Carlo event clock (`se-montecarlo`) and
//! the hybrid co-simulator (`se-hybrid`); [`QuasiStatic`] lifts any
//! stationary engine (e.g. the analytic SET) into a fourth, sampling
//! backend.

use crate::grid::validate_sample_times;
use crate::runner::map_indexed;
use crate::waveform::Waveform;
use crate::{derive_seed, ControlId, GridError, ObservableId, StationaryEngine};

/// A time-resolved simulation engine: initial state + stimulus waveforms
/// in, sampled observable currents out.
///
/// Implementations must be cheap to share across threads (`Sync`); the
/// [`TransientRunner`] calls [`TransientEngine::transient_currents`] for
/// many independent runs concurrently, each call carrying its own derived
/// seed. A run starts from the engine's natural initial state (for circuit
/// engines: the DC solution with all drives evaluated at `t = 0`),
/// integrates forward and reports each observable at every requested sample
/// time. Stochastic engines must use the seed as their *only* source of
/// randomness; engines that need per-sample randomness derive sub-seeds
/// with [`crate::derive_seed`]`(seed, sample_index)` so the discipline
/// stays uniform across the toolkit.
///
/// What "the current at sample `t`" means is backend-specific and
/// documented on each implementation: the SPICE integrator reports
/// instantaneous branch currents, the kinetic Monte-Carlo engine reports
/// window-averaged junction currents over `(t_prev, t]`, and quasi-static
/// backends report the stationary currents at the instantaneous drive
/// values.
pub trait TransientEngine: Sync {
    /// The engine's error type.
    type Error: std::error::Error + Send + 'static;

    /// A short human-readable engine name (used in reports and benches).
    fn engine_name(&self) -> &'static str;

    /// Resolves a drive name (a voltage source or external electrode) to a
    /// typed handle, or errors if no such drive exists.
    fn resolve_drive(&self, name: &str) -> Result<ControlId, Self::Error>;

    /// Resolves an observable name (a junction or source branch current) to
    /// a typed handle, or errors if no such observable exists.
    fn resolve_observable(&self, name: &str) -> Result<ObservableId, Self::Error>;

    /// Runs one transient: applies the drive waveforms, integrates from
    /// `t = 0` and returns the observable currents (ampere) sampled at
    /// `times` (strictly increasing, non-negative seconds — see
    /// [`crate::grid::validate_sample_times`]).
    fn transient_currents(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seed: u64,
    ) -> Result<TransientTrace, Self::Error>;

    /// Runs `seeds.len()` statistically independent repeats of the *same*
    /// transient scenario — a seed ensemble — returning one trace per seed,
    /// in seed order.
    ///
    /// The default implementation loops [`Self::transient_currents`] once
    /// per seed; engines with a batched ensemble path (the kinetic
    /// Monte-Carlo engine steps all replicas in lockstep over SoA-packed
    /// state) override it together with
    /// [`Self::has_batched_transient_ensemble`]. Overrides must keep the
    /// ensemble contract: trace `k` is **bit-identical** to
    /// `transient_currents(drives, observables, times, seeds[k])`, so
    /// routing an ensemble through the batch never changes a published
    /// number.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    fn transient_currents_ensemble(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seeds: &[u64],
    ) -> Result<Vec<TransientTrace>, Self::Error> {
        seeds
            .iter()
            .map(|&seed| self.transient_currents(drives, observables, times, seed))
            .collect()
    }

    /// Whether [`Self::transient_currents_ensemble`] runs replicas through
    /// a genuinely batched engine (`true`) or the default per-seed loop
    /// (`false`). [`TransientRunner::run_repeats`] uses this to decide
    /// whether to group repeats into batched ensemble calls.
    fn has_batched_transient_ensemble(&self) -> bool {
        false
    }
}

impl<E: TransientEngine + ?Sized> TransientEngine for &E {
    type Error = E::Error;

    fn engine_name(&self) -> &'static str {
        (**self).engine_name()
    }

    fn resolve_drive(&self, name: &str) -> Result<ControlId, Self::Error> {
        (**self).resolve_drive(name)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, Self::Error> {
        (**self).resolve_observable(name)
    }

    fn transient_currents(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seed: u64,
    ) -> Result<TransientTrace, Self::Error> {
        (**self).transient_currents(drives, observables, times, seed)
    }

    fn transient_currents_ensemble(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seeds: &[u64],
    ) -> Result<Vec<TransientTrace>, Self::Error> {
        (**self).transient_currents_ensemble(drives, observables, times, seeds)
    }

    fn has_batched_transient_ensemble(&self) -> bool {
        (**self).has_batched_transient_ensemble()
    }
}

/// The sampled result of one transient run: a `times × observables` matrix
/// of currents, stored row-major with time as the slow axis.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientTrace {
    times: Vec<f64>,
    observables: usize,
    currents: Vec<f64>,
}

impl TransientTrace {
    /// Assembles a trace; `currents` is row-major with
    /// `times.len() × observables` entries.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are inconsistent (an engine bug, not a user
    /// input error).
    #[must_use]
    pub fn new(times: Vec<f64>, observables: usize, currents: Vec<f64>) -> Self {
        assert_eq!(
            currents.len(),
            times.len() * observables,
            "trace dimensions are inconsistent"
        );
        TransientTrace {
            times,
            observables,
            currents,
        }
    }

    /// The sample times, in seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of sample times.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the trace holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of observables per sample.
    #[must_use]
    pub fn observable_count(&self) -> usize {
        self.observables
    }

    /// The current of observable `k` at time index `i`, ampere.
    #[must_use]
    pub fn at(&self, i: usize, k: usize) -> f64 {
        self.currents[i * self.observables + k]
    }

    /// All observable currents at time index `i`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.currents[i * self.observables..(i + 1) * self.observables]
    }

    /// The full time series of observable `k` — the waveform of one
    /// junction or branch current.
    #[must_use]
    pub fn channel(&self, k: usize) -> Vec<f64> {
        (0..self.times.len()).map(|i| self.at(i, k)).collect()
    }

    /// The raw row-major current data.
    #[must_use]
    pub fn as_flat(&self) -> &[f64] {
        &self.currents
    }
}

/// One named transient scenario of an ensemble: a label plus the drive
/// waveforms it applies.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    label: String,
    drives: Vec<(String, Waveform)>,
}

impl Scenario {
    /// Creates an empty scenario with the given label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Scenario {
            label: label.into(),
            drives: Vec::new(),
        }
    }

    /// Attaches a drive waveform to the named source/electrode.
    #[must_use]
    pub fn drive(mut self, name: impl Into<String>, waveform: Waveform) -> Self {
        self.drives.push((name.into(), waveform));
        self
    }

    /// The scenario label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The attached `(name, waveform)` drives.
    #[must_use]
    pub fn drives(&self) -> &[(String, Waveform)] {
        &self.drives
    }
}

/// The generic, parallel, deterministic ensemble runner for transient
/// scenarios — the time-domain sibling of [`crate::SweepRunner`].
///
/// A runner is a small value object holding the ensemble seed and the
/// parallelism switch. Run `index` of an ensemble always executes with seed
/// [`crate::derive_seed`]`(ensemble_seed, index)`, independent of thread
/// scheduling, so toggling [`TransientRunner::serial`] never changes
/// results — only scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientRunner {
    seed: u64,
    parallel: bool,
    chunk: Option<usize>,
}

impl Default for TransientRunner {
    fn default() -> Self {
        TransientRunner::new()
    }
}

impl TransientRunner {
    /// A parallel runner with seed 0 and automatic chunking.
    #[must_use]
    pub fn new() -> Self {
        TransientRunner {
            seed: 0,
            parallel: true,
            chunk: None,
        }
    }

    /// Sets the ensemble seed all per-run seeds are derived from.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many consecutive runs one scheduled task executes (see
    /// [`se_exec::JobSpec::with_chunk`]). Results never depend on it.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk);
        self
    }

    /// Forces single-threaded execution (results are identical; useful for
    /// profiling and for the determinism tests).
    #[must_use]
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// The ensemble seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether runs fan out across threads.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Resolves named drives against an engine.
    fn resolve_drives<E: TransientEngine>(
        engine: &E,
        drives: &[(String, Waveform)],
    ) -> Result<Vec<(ControlId, Waveform)>, E::Error> {
        drives
            .iter()
            .map(|(name, waveform)| Ok((engine.resolve_drive(name)?, waveform.clone())))
            .collect()
    }

    /// Resolves named observables against an engine.
    fn resolve_observables<E: TransientEngine>(
        engine: &E,
        observables: &[&str],
    ) -> Result<Vec<ObservableId>, E::Error> {
        observables
            .iter()
            .map(|name| engine.resolve_observable(name))
            .collect()
    }

    /// Runs a single transient scenario (run index 0 of a one-element
    /// ensemble): applies each `(drive name, waveform)` pair and samples
    /// the named observables at `times`.
    ///
    /// # Errors
    ///
    /// Propagates name-resolution failures and engine errors.
    pub fn run<E: TransientEngine>(
        &self,
        engine: &E,
        drives: &[(&str, Waveform)],
        observables: &[&str],
        times: &[f64],
    ) -> Result<TransientTrace, E::Error> {
        let owned: Vec<(String, Waveform)> = drives
            .iter()
            .map(|(name, waveform)| ((*name).to_string(), waveform.clone()))
            .collect();
        let resolved = Self::resolve_drives(engine, &owned)?;
        let observables = Self::resolve_observables(engine, observables)?;
        engine.transient_currents(&resolved, &observables, times, derive_seed(self.seed, 0))
    }

    /// Runs an ensemble of independent scenarios — a corner sweep or an
    /// input-vector battery — concurrently, one derived seed per scenario
    /// index. The traces come back in scenario order.
    ///
    /// # Errors
    ///
    /// Propagates name-resolution failures and the first (lowest-index)
    /// engine error.
    pub fn run_ensemble<E: TransientEngine>(
        &self,
        engine: &E,
        scenarios: &[Scenario],
        observables: &[&str],
        times: &[f64],
    ) -> Result<Vec<TransientTrace>, E::Error> {
        let observables = Self::resolve_observables(engine, observables)?;
        let resolved: Vec<Vec<(ControlId, Waveform)>> = scenarios
            .iter()
            .map(|scenario| Self::resolve_drives(engine, scenario.drives()))
            .collect::<Result<_, _>>()?;
        map_indexed(
            self.seed,
            self.parallel,
            self.chunk,
            scenarios.len(),
            |index, seed| engine.transient_currents(&resolved[index], &observables, times, seed),
        )
    }

    /// Runs `repeats` statistically independent repetitions of the *same*
    /// scenario — a seed ensemble — concurrently. For a stochastic engine
    /// each repeat explores a different event sequence; for a deterministic
    /// engine all repeats are identical.
    ///
    /// When the engine advertises a batched ensemble path
    /// ([`TransientEngine::has_batched_transient_ensemble`]), repeats are
    /// grouped into lockstep batches of [`ENSEMBLE_CHUNK`] replicas that
    /// share one SoA-packed system walk, and the batches still fan out
    /// across cores. Repeat `k` always runs with seed
    /// [`crate::derive_seed`]`(ensemble_seed, k)` — the identical seed the
    /// per-repeat loop would use — and the batched engines' bit-identity
    /// contract makes the routing invisible in the results.
    ///
    /// # Errors
    ///
    /// Propagates name-resolution failures and the first (lowest-index)
    /// engine error.
    pub fn run_repeats<E: TransientEngine>(
        &self,
        engine: &E,
        drives: &[(&str, Waveform)],
        observables: &[&str],
        times: &[f64],
        repeats: usize,
    ) -> Result<Vec<TransientTrace>, E::Error> {
        let owned: Vec<(String, Waveform)> = drives
            .iter()
            .map(|(name, waveform)| ((*name).to_string(), waveform.clone()))
            .collect();
        let resolved = Self::resolve_drives(engine, &owned)?;
        let observables = Self::resolve_observables(engine, observables)?;
        if engine.has_batched_transient_ensemble() && repeats > 1 {
            let batches = repeats.div_ceil(ENSEMBLE_CHUNK);
            let grouped = map_indexed(self.seed, self.parallel, None, batches, |index, _| {
                let lo = index * ENSEMBLE_CHUNK;
                let hi = (lo + ENSEMBLE_CHUNK).min(repeats);
                let seeds: Vec<u64> = (lo..hi)
                    .map(|repeat| derive_seed(self.seed, repeat as u64))
                    .collect();
                engine.transient_currents_ensemble(&resolved, &observables, times, &seeds)
            })?;
            return Ok(grouped.into_iter().flatten().collect());
        }
        map_indexed(self.seed, self.parallel, self.chunk, repeats, |_, seed| {
            engine.transient_currents(&resolved, &observables, times, seed)
        })
    }
}

/// How many repeats [`TransientRunner::run_repeats`] packs into one batched
/// ensemble call when the engine has a lockstep path — chosen to match the
/// replica count the batched KMC hot path is benchmarked at (and small
/// enough that batches of a large ensemble still fan out across cores).
pub const ENSEMBLE_CHUNK: usize = 16;

/// Lifts any [`StationaryEngine`] into a [`TransientEngine`] by
/// quasi-static sampling: at every sample time the drives are evaluated
/// and one stationary solve reports the observables.
///
/// This is the correct time-domain model whenever the stimulus changes
/// slowly compared with the tunnelling dynamics — the regime of the
/// paper's logic applications, where a gate ramp crosses many Coulomb
/// oscillations and each sample sees a fully settled device. Sample `k` of
/// a run with seed `s` solves with seed [`crate::derive_seed`]`(s, k)`, so
/// stochastic stationary engines stay reproducible and ensemble-parallel
/// runs stay bit-identical to serial ones.
#[derive(Debug, Clone)]
pub struct QuasiStatic<E> {
    inner: E,
}

impl<E: StationaryEngine> QuasiStatic<E> {
    /// Wraps a stationary engine for quasi-static transient sampling.
    #[must_use]
    pub fn new(inner: E) -> Self {
        QuasiStatic { inner }
    }

    /// The wrapped stationary engine.
    #[must_use]
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

/// Maps a sample-grid violation into an engine's own error type via the
/// conversion the engine already has for its constructor errors.
///
/// # Errors
///
/// Returns the converted [`GridError::BadSampleTimes`] if `times` is not a
/// valid sample grid.
pub fn check_sample_times<Err: From<GridError>>(times: &[f64]) -> Result<(), Err> {
    validate_sample_times(times).map_err(Err::from)
}

impl<E: StationaryEngine> TransientEngine for QuasiStatic<E>
where
    E::Error: From<GridError>,
{
    type Error = E::Error;

    fn engine_name(&self) -> &'static str {
        "quasi-static"
    }

    fn resolve_drive(&self, name: &str) -> Result<ControlId, Self::Error> {
        self.inner.resolve_control(name)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, Self::Error> {
        self.inner.resolve_observable(name)
    }

    fn transient_currents(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seed: u64,
    ) -> Result<TransientTrace, Self::Error> {
        check_sample_times::<Self::Error>(times)?;
        let mut currents = Vec::with_capacity(times.len() * observables.len());
        let mut controls = Vec::with_capacity(drives.len());
        for (index, &t) in times.iter().enumerate() {
            controls.clear();
            controls.extend(
                drives
                    .iter()
                    .map(|(control, waveform)| (*control, waveform.value_at(t))),
            );
            let row = self.inner.stationary_currents(
                &controls,
                observables,
                derive_seed(seed, index as u64),
            )?;
            currents.extend(row);
        }
        Ok(TransientTrace::new(
            times.to_vec(),
            observables.len(),
            currents,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt;

    /// A toy stationary engine whose current is `sum(controls) + seed
    /// jitter`, reused through [`QuasiStatic`] to exercise the whole
    /// transient surface without any physics.
    struct ToyEngine;

    #[derive(Debug, PartialEq)]
    struct ToyError(String);

    impl fmt::Display for ToyError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for ToyError {}

    impl From<GridError> for ToyError {
        fn from(e: GridError) -> Self {
            ToyError(e.to_string())
        }
    }

    impl StationaryEngine for ToyEngine {
        type Error = ToyError;

        fn engine_name(&self) -> &'static str {
            "toy"
        }

        fn resolve_control(&self, name: &str) -> Result<ControlId, ToyError> {
            match name {
                "gate" => Ok(ControlId(0)),
                "drain" => Ok(ControlId(1)),
                other => Err(ToyError(format!("no control `{other}`"))),
            }
        }

        fn resolve_observable(&self, name: &str) -> Result<ObservableId, ToyError> {
            match name {
                "I" => Ok(ObservableId(0)),
                other => Err(ToyError(format!("no observable `{other}`"))),
            }
        }

        fn stationary_currents(
            &self,
            controls: &[(ControlId, f64)],
            observables: &[ObservableId],
            seed: u64,
        ) -> Result<Vec<f64>, ToyError> {
            let bias: f64 = controls.iter().map(|(_, v)| v).sum();
            let jitter = (seed % 1024) as f64 * 1e-12;
            Ok(observables.iter().map(|_| bias + jitter).collect())
        }
    }

    fn toy() -> QuasiStatic<ToyEngine> {
        QuasiStatic::new(ToyEngine)
    }

    #[test]
    fn trace_accessors_are_consistent() {
        let trace = TransientTrace::new(vec![0.0, 1.0], 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.observable_count(), 2);
        assert_eq!(trace.at(1, 0), 3.0);
        assert_eq!(trace.row(0), &[1.0, 2.0]);
        assert_eq!(trace.channel(1), vec![2.0, 4.0]);
        assert_eq!(trace.as_flat().len(), 4);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn trace_rejects_mismatched_dimensions() {
        let _ = TransientTrace::new(vec![0.0, 1.0], 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn quasi_static_samples_the_waveforms() {
        let ramp = Waveform::ramp(0.0, 1.0, 0.0, 1.0).unwrap();
        let times = [0.0, 0.5, 1.0];
        let trace = TransientRunner::new()
            .run(&toy(), &[("gate", ramp)], &["I"], &times)
            .unwrap();
        assert_eq!(trace.times(), &times);
        // Same derived per-sample seeds each call → exact reproducibility.
        let again = TransientRunner::new()
            .run(
                &toy(),
                &[("gate", Waveform::ramp(0.0, 1.0, 0.0, 1.0).unwrap())],
                &["I"],
                &times,
            )
            .unwrap();
        assert_eq!(trace, again);
        // The ramp dominates the tiny seed jitter.
        assert!(trace.at(2, 0) > trace.at(0, 0) + 0.9);
    }

    #[test]
    fn bad_sample_grids_are_rejected() {
        let dc = Waveform::dc(0.0);
        let runner = TransientRunner::new();
        assert!(runner
            .run(&toy(), &[("gate", dc.clone())], &["I"], &[])
            .is_err());
        assert!(runner
            .run(&toy(), &[("gate", dc.clone())], &["I"], &[1.0, 0.5])
            .is_err());
        assert!(runner
            .run(&toy(), &[("gate", dc)], &["I"], &[-1.0])
            .is_err());
    }

    #[test]
    fn resolution_errors_surface() {
        let runner = TransientRunner::new();
        let dc = Waveform::dc(0.0);
        assert!(runner
            .run(&toy(), &[("nope", dc.clone())], &["I"], &[0.0])
            .is_err());
        assert!(runner
            .run(&toy(), &[("gate", dc)], &["nope"], &[0.0])
            .is_err());
    }

    #[test]
    fn ensembles_are_bit_identical_serial_vs_parallel() {
        let times: Vec<f64> = (0..32).map(|i| i as f64 * 1e-9).collect();
        let scenarios: Vec<Scenario> = (0..17)
            .map(|i| {
                Scenario::new(format!("corner {i}"))
                    .drive("gate", Waveform::step(0.0, 1e-3 * i as f64, 4e-9).unwrap())
            })
            .collect();
        let parallel = TransientRunner::new()
            .with_seed(7)
            .run_ensemble(&toy(), &scenarios, &["I"], &times)
            .unwrap();
        let serial = TransientRunner::new()
            .with_seed(7)
            .serial()
            .run_ensemble(&toy(), &scenarios, &["I"], &times)
            .unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(parallel.len(), 17);
    }

    #[test]
    fn repeats_draw_distinct_seeds() {
        let times = [0.0, 1e-9];
        let repeats = TransientRunner::new()
            .with_seed(3)
            .run_repeats(&toy(), &[("gate", Waveform::dc(0.0))], &["I"], &times, 4)
            .unwrap();
        assert_eq!(repeats.len(), 4);
        // The toy engine folds the seed into the current, so distinct
        // per-repeat seeds must show up as distinct traces.
        assert_ne!(repeats[0], repeats[1]);
        // And repeat ordering is deterministic.
        let again = TransientRunner::new()
            .with_seed(3)
            .serial()
            .run_repeats(&toy(), &[("gate", Waveform::dc(0.0))], &["I"], &times, 4)
            .unwrap();
        assert_eq!(repeats, again);
    }

    #[test]
    fn scenario_builder_collects_drives() {
        let s = Scenario::new("a")
            .drive("gate", Waveform::dc(1.0))
            .drive("drain", Waveform::dc(2.0));
        assert_eq!(s.label(), "a");
        assert_eq!(s.drives().len(), 2);
    }
}
