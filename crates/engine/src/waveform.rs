//! Shared stimulus waveforms for the time domain.
//!
//! Every transient backend — the SPICE backward-Euler integrator, the
//! kinetic Monte-Carlo event clock and the hybrid co-simulator — consumes
//! the same [`Waveform`] description of a time-dependent source, so one
//! pulse train drives all three engines identically. A waveform is a pure
//! value object: evaluating it at a time `t` never mutates state, which is
//! what lets the [`crate::TransientRunner`] fan whole scenario ensembles
//! out across threads.
//!
//! ```
//! use se_engine::Waveform;
//!
//! // A 1 GHz pulse train: 0 V → 1 mV, 0.2 ns delay, 0.4 ns wide pulses.
//! let clock = Waveform::pulse(0.0, 1e-3, 0.2e-9, 0.4e-9, 1e-9).unwrap();
//! assert_eq!(clock.value_at(0.0), 0.0);      // before the delay
//! assert_eq!(clock.value_at(0.3e-9), 1e-3);  // inside the first pulse
//! assert_eq!(clock.value_at(0.7e-9), 0.0);   // between pulses
//! assert_eq!(clock.value_at(1.3e-9), 1e-3);  // the train repeats
//! ```

use std::fmt;

/// Errors of waveform construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveformError(String);

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid waveform: {}", self.0)
    }
}

impl std::error::Error for WaveformError {}

/// A time-dependent source value shared by every transient backend.
///
/// All variants are total functions of time: evaluation outside the
/// "active" region clamps to the nearest defined value (a ramp holds its
/// endpoints, a PWL holds its first and last points), so an engine can
/// sample a waveform at any non-negative time without special-casing.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// A constant level (a DC source that merely participates in a
    /// transient).
    Dc {
        /// The constant value.
        level: f64,
    },
    /// An ideal step from `before` to `after` at `at` seconds.
    Step {
        /// Value for `t < at`.
        before: f64,
        /// Value for `t >= at`.
        after: f64,
        /// Switching time, seconds.
        at: f64,
    },
    /// A linear ramp from `start` to `stop` over `[t_start, t_stop]`,
    /// holding the endpoint values outside that window.
    Ramp {
        /// Value at and before `t_start`.
        start: f64,
        /// Value at and after `t_stop`.
        stop: f64,
        /// Ramp begin, seconds.
        t_start: f64,
        /// Ramp end, seconds.
        t_stop: f64,
    },
    /// A periodic pulse train: `low` until `delay`, then repeating periods
    /// that begin with `width` seconds at `high` followed by `period -
    /// width` seconds at `low`.
    Pulse {
        /// Baseline value.
        low: f64,
        /// Pulse-top value.
        high: f64,
        /// Time of the first rising edge, seconds.
        delay: f64,
        /// Pulse width, seconds.
        width: f64,
        /// Repetition period, seconds.
        period: f64,
    },
    /// Piece-wise linear interpolation through `(time, value)` points,
    /// holding the first value before the first point and the last value
    /// after the last point.
    Pwl {
        /// The interpolation points, in strictly increasing time order.
        points: Vec<(f64, f64)>,
    },
    /// A sinusoid `offset + amplitude·sin(2πf·t + phase)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        frequency: f64,
        /// Phase in radians.
        phase: f64,
    },
}

impl Waveform {
    /// A constant source.
    #[must_use]
    pub fn dc(level: f64) -> Self {
        Waveform::Dc { level }
    }

    /// An ideal step from `before` to `after` at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError`] for non-finite parameters.
    pub fn step(before: f64, after: f64, at: f64) -> Result<Self, WaveformError> {
        if !(before.is_finite() && after.is_finite() && at.is_finite()) {
            return Err(WaveformError(format!(
                "step parameters must be finite, got {before}, {after} at {at}"
            )));
        }
        Ok(Waveform::Step { before, after, at })
    }

    /// A linear ramp from `start` to `stop` over `[t_start, t_stop]`.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError`] unless `t_start < t_stop` and all
    /// parameters are finite.
    pub fn ramp(start: f64, stop: f64, t_start: f64, t_stop: f64) -> Result<Self, WaveformError> {
        if !(start.is_finite() && stop.is_finite() && t_start.is_finite() && t_stop.is_finite()) {
            return Err(WaveformError("ramp parameters must be finite".into()));
        }
        if !(t_start < t_stop) {
            return Err(WaveformError(format!(
                "a ramp needs t_start < t_stop, got [{t_start}, {t_stop}]"
            )));
        }
        Ok(Waveform::Ramp {
            start,
            stop,
            t_start,
            t_stop,
        })
    }

    /// A periodic pulse train (see [`Waveform::Pulse`]).
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError`] unless `0 < width <= period`, `delay >= 0`
    /// and all parameters are finite.
    pub fn pulse(
        low: f64,
        high: f64,
        delay: f64,
        width: f64,
        period: f64,
    ) -> Result<Self, WaveformError> {
        if !(low.is_finite() && high.is_finite() && delay.is_finite()) {
            return Err(WaveformError("pulse parameters must be finite".into()));
        }
        if !(delay >= 0.0) {
            return Err(WaveformError(format!(
                "pulse delay must be non-negative, got {delay}"
            )));
        }
        if !(width > 0.0 && width.is_finite() && period >= width && period.is_finite()) {
            return Err(WaveformError(format!(
                "a pulse train needs 0 < width <= period, got width {width}, period {period}"
            )));
        }
        Ok(Waveform::Pulse {
            low,
            high,
            delay,
            width,
            period,
        })
    }

    /// A piece-wise linear waveform through the given `(time, value)`
    /// points.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError`] for an empty point list, non-finite
    /// entries, or times that are not strictly increasing.
    pub fn pwl(points: Vec<(f64, f64)>) -> Result<Self, WaveformError> {
        if points.is_empty() {
            return Err(WaveformError(
                "a PWL waveform needs at least one point".into(),
            ));
        }
        for &(t, v) in &points {
            if !(t.is_finite() && v.is_finite()) {
                return Err(WaveformError(format!(
                    "PWL points must be finite, got ({t}, {v})"
                )));
            }
        }
        for pair in points.windows(2) {
            if !(pair[1].0 > pair[0].0) {
                return Err(WaveformError(format!(
                    "PWL times must be strictly increasing, got {} then {}",
                    pair[0].0, pair[1].0
                )));
            }
        }
        Ok(Waveform::Pwl { points })
    }

    /// A sinusoid `offset + amplitude·sin(2πf·t + phase)`.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError`] unless the frequency is positive and all
    /// parameters are finite.
    pub fn sine(
        offset: f64,
        amplitude: f64,
        frequency: f64,
        phase: f64,
    ) -> Result<Self, WaveformError> {
        if !(offset.is_finite() && amplitude.is_finite() && phase.is_finite()) {
            return Err(WaveformError("sine parameters must be finite".into()));
        }
        if !(frequency > 0.0 && frequency.is_finite()) {
            return Err(WaveformError(format!(
                "sine frequency must be positive and finite, got {frequency}"
            )));
        }
        Ok(Waveform::Sine {
            offset,
            amplitude,
            frequency,
            phase,
        })
    }

    /// Evaluates the waveform at time `t` (seconds).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc { level } => *level,
            Waveform::Step { before, after, at } => {
                if t < *at {
                    *before
                } else {
                    *after
                }
            }
            Waveform::Ramp {
                start,
                stop,
                t_start,
                t_stop,
            } => {
                if t <= *t_start {
                    *start
                } else if t >= *t_stop {
                    *stop
                } else {
                    start + (stop - start) * (t - t_start) / (t_stop - t_start)
                }
            }
            Waveform::Pulse {
                low,
                high,
                delay,
                width,
                period,
            } => {
                if t < *delay {
                    return *low;
                }
                // Edges are resolved with a relative tolerance of 1e-9 of
                // the period: sample grids are built by accumulating
                // floating-point times, so a sample meant to land exactly
                // on an edge can arrive a few ULP on either side. Snapping
                // puts such samples deterministically on the post-edge
                // segment, keeping edge-aligned sampling reproducible.
                let eps = 1e-9 * period;
                let elapsed = t - delay;
                let mut phase = elapsed - (elapsed / period).floor() * period;
                if phase >= period - eps {
                    phase = 0.0;
                }
                if phase < width - eps {
                    *high
                } else {
                    *low
                }
            }
            Waveform::Pwl { points } => {
                let first = points[0];
                let last = points[points.len() - 1];
                if t <= first.0 {
                    return first.1;
                }
                if t >= last.0 {
                    return last.1;
                }
                let right = points
                    .iter()
                    .position(|&(pt, _)| pt > t)
                    .expect("t < last point time");
                let (t0, v0) = points[right - 1];
                let (t1, v1) = points[right];
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
            Waveform::Sine {
                offset,
                amplitude,
                frequency,
                phase,
            } => offset + amplitude * (2.0 * std::f64::consts::PI * frequency * t + phase).sin(),
        }
    }

    /// Samples the waveform at each of the given times.
    #[must_use]
    pub fn sample(&self, times: &[f64]) -> Vec<f64> {
        times.iter().map(|&t| self.value_at(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(Waveform::step(0.0, 1.0, f64::NAN).is_err());
        assert!(Waveform::ramp(0.0, 1.0, 1.0, 1.0).is_err());
        assert!(Waveform::ramp(0.0, 1.0, 2.0, 1.0).is_err());
        assert!(Waveform::pulse(0.0, 1.0, -1.0, 1e-9, 2e-9).is_err());
        assert!(Waveform::pulse(0.0, 1.0, 0.0, 0.0, 2e-9).is_err());
        assert!(Waveform::pulse(0.0, 1.0, 0.0, 3e-9, 2e-9).is_err());
        assert!(Waveform::pwl(vec![]).is_err());
        assert!(Waveform::pwl(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(Waveform::pwl(vec![(f64::INFINITY, 1.0)]).is_err());
        assert!(Waveform::sine(0.0, 1.0, 0.0, 0.0).is_err());
        assert!(Waveform::sine(0.0, 1.0, -1e6, 0.0).is_err());
    }

    #[test]
    fn step_switches_exactly_at_the_edge() {
        let step = Waveform::step(0.0, 1.0, 1e-9).unwrap();
        assert_eq!(step.value_at(0.999e-9), 0.0);
        assert_eq!(step.value_at(1e-9), 1.0);
        assert_eq!(step.value_at(2e-9), 1.0);
    }

    #[test]
    fn ramp_clamps_its_endpoints() {
        let ramp = Waveform::ramp(1.0, 3.0, 1.0, 3.0).unwrap();
        assert_eq!(ramp.value_at(0.0), 1.0);
        assert_eq!(ramp.value_at(2.0), 2.0);
        assert_eq!(ramp.value_at(10.0), 3.0);
    }

    #[test]
    fn pulse_train_repeats_with_its_period() {
        let pulse = Waveform::pulse(-1.0, 1.0, 1e-9, 2e-9, 5e-9).unwrap();
        assert_eq!(pulse.value_at(0.5e-9), -1.0);
        assert_eq!(pulse.value_at(1.5e-9), 1.0);
        assert_eq!(pulse.value_at(4.0e-9), -1.0);
        // One period later the pattern repeats.
        assert_eq!(pulse.value_at(6.5e-9), 1.0);
        assert_eq!(pulse.value_at(9.0e-9), -1.0);
    }

    #[test]
    fn pulse_edges_are_robust_to_accumulated_rounding() {
        // Sample times built by accumulation (i · dt) carry rounding, so a
        // sample aimed at an edge can land a few ULP past it; it must
        // still read the post-edge value.
        let pulse = Waveform::pulse(0.0, 1.0, 1e-9, 1e-9, 2e-9).unwrap();
        for i in 1..200_u32 {
            let t = f64::from(i) * 1e-9; // odd i: rising edges, even i: falling
            let expected = if i % 2 == 1 { 1.0 } else { 0.0 };
            assert_eq!(pulse.value_at(t), expected, "edge sample at i = {i}");
            // A quarter period after each edge sits deep in the segment.
            assert_eq!(
                pulse.value_at(t + 0.5e-9),
                expected,
                "mid-segment after i = {i}"
            );
        }
    }

    #[test]
    fn pwl_interpolates_and_holds_ends() {
        let pwl = Waveform::pwl(vec![(1.0, 0.0), (2.0, 10.0), (4.0, 10.0), (5.0, 0.0)]).unwrap();
        assert_eq!(pwl.value_at(0.0), 0.0);
        assert_eq!(pwl.value_at(1.5), 5.0);
        assert_eq!(pwl.value_at(3.0), 10.0);
        assert_eq!(pwl.value_at(4.5), 5.0);
        assert_eq!(pwl.value_at(99.0), 0.0);
    }

    #[test]
    fn sine_oscillates_around_its_offset() {
        let sine = Waveform::sine(0.5, 0.25, 1e9, 0.0).unwrap();
        assert!((sine.value_at(0.0) - 0.5).abs() < 1e-12);
        assert!((sine.value_at(0.25e-9) - 0.75).abs() < 1e-9);
        assert!((sine.value_at(0.75e-9) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pointwise_evaluation() {
        let ramp = Waveform::ramp(0.0, 1.0, 0.0, 1.0).unwrap();
        let times = [0.0, 0.25, 0.5, 1.0];
        assert_eq!(
            ramp.sample(&times),
            times.iter().map(|&t| ramp.value_at(t)).collect::<Vec<_>>()
        );
    }
}
