//! The shared worker pool: one scheduler for any number of jobs.
//!
//! [`run_batch`] flattens the pending chunks of every job into one task
//! list — interleaved round-robin so each job makes front-to-back progress
//! concurrently — and lets a bounded set of rayon workers claim tasks from
//! an atomic cursor. Because each [`crate::Job`] emits to its sink in
//! index order under its own lock, sharing the pool changes *scheduling
//! only*, never results.

use crate::cancel::CancelToken;
use crate::job::{ChunkTask, Workers};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs every pending chunk of every task on one shared worker pool.
///
/// The flattened task list interleaves tasks round-robin (each task makes
/// front-to-back progress concurrently) while preserving every task's
/// internal chunk order. Cancellation is cooperative: once `cancel`
/// fires, workers stop claiming tasks and abandon half-computed chunks.
///
/// Call each job's [`crate::Job::finish`] afterwards to surface errors and
/// collect results.
pub fn run_batch(tasks: &[&dyn ChunkTask], workers: Workers, cancel: &CancelToken) {
    let mut flat: Vec<(usize, usize)> = Vec::new();
    let deepest = tasks.iter().map(|t| t.pending()).max().unwrap_or(0);
    for slot in 0..deepest {
        for (index, task) in tasks.iter().enumerate() {
            if slot < task.pending() {
                flat.push((index, slot));
            }
        }
    }
    if flat.is_empty() {
        return;
    }
    let cursor = AtomicUsize::new(0);
    let work = |_worker: usize| loop {
        if cancel.is_cancelled() {
            return;
        }
        let claimed = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&(task, slot)) = flat.get(claimed) else {
            return;
        };
        tasks[task].run_pending(slot, cancel);
    };
    let worker_count = workers.resolve(flat.len());
    if worker_count <= 1 {
        work(0);
    } else {
        (0..worker_count)
            .into_par_iter()
            .map(work)
            .collect::<Vec<()>>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBuilder, JobSpec};
    use crate::sink::TableSink;

    /// Two jobs of different sizes through one pool: both complete, both
    /// in order, and the outcome matches their serial runs.
    #[test]
    fn heterogeneous_jobs_share_one_pool() {
        let solve_a = |i: usize, seed: u64| Ok::<_, std::io::Error>(vec![i as f64, seed as f64]);
        let solve_b = |i: usize, _seed: u64| Ok::<_, std::io::Error>(vec![-(i as f64)]);
        let mut sink_a = TableSink::new();
        let mut sink_b = TableSink::new();
        let job_a = JobBuilder::new(JobSpec::new(17).with_seed(1).with_chunk(3))
            .collect()
            .build(&mut sink_a, solve_a)
            .unwrap();
        let job_b = JobBuilder::new(JobSpec::new(5).with_seed(2).with_chunk(2))
            .collect()
            .build(&mut sink_b, solve_b)
            .unwrap();
        run_batch(&[&job_a, &job_b], Workers::Count(4), &CancelToken::new());
        let (a, report_a) = job_a.finish().unwrap();
        let (b, _) = job_b.finish().unwrap();
        assert_eq!(report_a.computed, 17);
        assert_eq!(a.len(), 17);
        assert_eq!(a[16][0], 16.0);
        assert_eq!(a[16][1], JobSpec::new(17).with_seed(1).item_seed(16) as f64);
        assert_eq!(b.len(), 5);
        assert_eq!(sink_a.rows().len(), 17);
        assert_eq!(sink_b.rows()[4], vec![-4.0]);
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        run_batch(&[], Workers::Auto, &CancelToken::new());
    }
}
