//! The raw IEEE-754 bit-pattern text codec for `f64` values.
//!
//! Checkpoint payloads and run traces both persist floats as their exact
//! 64-bit patterns rendered as fixed-width hex — never as decimal text —
//! which is what makes resume and replay *bit*-identical: no rounding, no
//! shortest-round-trip subtleties, NaN payloads and the sign of zero
//! survive untouched. This module is the single definition of that codec;
//! [`crate::checkpoint`] and [`crate::trace`] share it.

/// Appends one float's raw bit pattern (16 lowercase hex digits) to `out`.
pub fn encode_f64(value: f64, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "{:016x}", value.to_bits());
}

/// One float's raw bit pattern as a standalone 16-digit hex string.
#[must_use]
pub fn f64_bits_hex(value: f64) -> String {
    let mut out = String::with_capacity(16);
    encode_f64(value, &mut out);
    out
}

/// Decodes one raw-bit-pattern float, or `None` if `text` is not a valid
/// hex bit pattern.
#[must_use]
pub fn decode_f64(text: &str) -> Option<f64> {
    u64::from_str_radix(text, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trips must preserve the exact bit pattern — including NaN
    /// *payloads* (a plain `assert_eq!` on the values would pass for any
    /// NaN) and the sign of zero (where `0.0 == -0.0` compares equal).
    #[test]
    fn nan_payloads_round_trip_bit_exactly() {
        for bits in [
            0x7ff8_0000_0000_0000_u64, // the canonical quiet NaN
            0x7ff8_dead_beef_cafe,     // a payload-carrying quiet NaN
            0x7ff0_0000_0000_0001,     // a signalling NaN
            0xfff8_0000_0000_0042,     // a negative NaN with payload
        ] {
            let value = f64::from_bits(bits);
            assert!(value.is_nan());
            let encoded = f64_bits_hex(value);
            let back = decode_f64(&encoded).unwrap();
            assert_eq!(back.to_bits(), bits, "payload lost through `{encoded}`");
        }
    }

    #[test]
    fn signed_zero_round_trips_bit_exactly() {
        let plus = decode_f64(&f64_bits_hex(0.0)).unwrap();
        let minus = decode_f64(&f64_bits_hex(-0.0)).unwrap();
        assert_eq!(plus.to_bits(), 0.0_f64.to_bits());
        assert_eq!(minus.to_bits(), (-0.0_f64).to_bits());
        assert_ne!(plus.to_bits(), minus.to_bits(), "the sign of zero is data");
    }

    #[test]
    fn ordinary_and_extreme_values_round_trip() {
        for value in [
            1.5e-19,
            -7.25,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            f64::MAX,
        ] {
            let back = decode_f64(&f64_bits_hex(value)).unwrap();
            assert_eq!(back.to_bits(), value.to_bits(), "{value}");
        }
    }

    #[test]
    fn encodings_are_fixed_width_and_malformed_text_is_rejected() {
        assert_eq!(f64_bits_hex(0.0), "0000000000000000");
        assert_eq!(f64_bits_hex(1.0).len(), 16);
        assert!(decode_f64("zz").is_none());
        assert!(decode_f64("").is_none());
        // Width is not enforced by the decoder (leading zeros may be
        // dropped by hand-written tooling), but garbage hex is.
        assert_eq!(decode_f64("3ff0000000000000").unwrap(), 1.0);
    }
}
