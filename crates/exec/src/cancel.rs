//! Cooperative cancellation for long-running jobs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation flag shared between a job's owner and its
/// workers.
///
/// Cancellation is *cooperative*: the scheduler polls the token between
/// chunks and between items, finishes nothing new once it is set, and
/// reports how far the job got. Checkpointed jobs keep every chunk that
/// completed before the cancel, so a later resume picks up exactly where
/// the run stopped.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_share_state_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }
}
