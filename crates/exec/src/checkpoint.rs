//! Checkpoint/resume: a completed-chunk manifest plus bit-exact chunk
//! payload files, so an interrupted job restarts from the last finished
//! chunk and reproduces an uninterrupted run bit-identically.
//!
//! Layout under a [`CheckpointStore`] root:
//!
//! ```text
//! <root>/<job-id>/manifest.txt    header + one "chunk <id> <len>" line per chunk
//! <root>/<job-id>/chunk-<id>.txt  one encoded item per line
//! ```
//!
//! Durability protocol: a chunk's payload file is fully written and flushed
//! *before* its manifest line is appended, so every chunk the manifest
//! lists is complete on disk. Floats are stored as raw IEEE-754 bit
//! patterns (hex), which is what makes a resumed run *bit*-identical — no
//! decimal round-trip is involved.

use crate::bits::{decode_f64, encode_f64};
use crate::job::JobSpec;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Lossless one-line-per-item serialization for checkpointable job items.
///
/// `decode(encode(x)) == x` must hold exactly (for floats: the same bit
/// pattern), and the encoding must not contain newlines.
pub trait Codec: Sized {
    /// Appends the item's encoding (newline-free) to `out`.
    fn encode(&self, out: &mut String);

    /// Parses one encoded line back into an item, or `None` if the line is
    /// corrupt.
    fn decode(line: &str) -> Option<Self>;
}

/// A flat row of floats: space-separated bit patterns (the shared
/// [`crate::bits`] codec).
impl Codec for Vec<f64> {
    fn encode(&self, out: &mut String) {
        for (i, &v) in self.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            encode_f64(v, out);
        }
    }

    fn decode(line: &str) -> Option<Self> {
        if line.trim().is_empty() {
            return Some(Vec::new());
        }
        line.split_whitespace().map(decode_f64).collect()
    }
}

/// A block of rows (e.g. a whole transient trace): rows joined with `;`.
impl Codec for Vec<Vec<f64>> {
    fn encode(&self, out: &mut String) {
        for (i, row) in self.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            row.encode(out);
        }
    }

    fn decode(line: &str) -> Option<Self> {
        if line.trim().is_empty() {
            return Some(Vec::new());
        }
        line.split(';').map(Vec::<f64>::decode).collect()
    }
}

/// Replaces every character outside `[A-Za-z0-9._-]` with `_`, so deck
/// titles and file paths make safe job directory names.
#[must_use]
pub fn sanitize_job_id(id: &str) -> String {
    let cleaned: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "job".to_string()
    } else {
        cleaned
    }
}

/// A directory of per-job checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    root: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `root` (created lazily on first write).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        CheckpointStore { root: root.into() }
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory of one job's checkpoint: the sanitized id plus a
    /// short hash of the *raw* id. Sanitization is lossy (`a b` and `a_b`
    /// both sanitize to `a_b`), so the hash keeps distinct jobs in
    /// distinct directories — two jobs share a directory only if their raw
    /// ids are identical.
    #[must_use]
    pub fn job_dir(&self, id: &str) -> PathBuf {
        let tag = content_fingerprint(id) as u32;
        self.root.join(format!("{}-{tag:08x}", sanitize_job_id(id)))
    }
}

/// A stable FNV-1a content fingerprint, for guarding checkpoints against
/// resumption under *changed inputs* (an edited deck, say) that happen to
/// keep the same job geometry.
#[must_use]
pub fn content_fingerprint(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The manifest header a job writes; resuming against a different job
/// geometry — or a different input fingerprint — is refused rather than
/// silently restoring stale results.
fn header_line(spec: &JobSpec, fingerprint: u64) -> String {
    format!(
        "se-exec-checkpoint v1 items={} seed={} chunk={} fp={fingerprint:016x}",
        spec.items(),
        spec.seed(),
        spec.chunk_size()
    )
}

/// One job's open checkpoint: the manifest handle plus the payload
/// directory. Writing is thread-safe (chunks complete on worker threads).
#[derive(Debug)]
pub(crate) struct JobCheckpoint {
    dir: PathBuf,
    manifest: Mutex<fs::File>,
}

impl JobCheckpoint {
    /// Opens (or creates) a job checkpoint. With `resume`, previously
    /// completed chunks are loaded through `decode`; without it, any
    /// existing checkpoint is discarded. Returns the handle plus the
    /// restored `chunk id → items` map.
    ///
    /// Robustness: a torn manifest tail or an unreadable chunk file just
    /// drops that chunk (it is recomputed, bit-identically); a manifest
    /// written by a *different* job geometry is a hard error.
    pub(crate) fn open<T>(
        dir: PathBuf,
        spec: &JobSpec,
        fingerprint: u64,
        resume: bool,
        decode: fn(&str) -> Option<T>,
    ) -> io::Result<(Self, BTreeMap<usize, Vec<T>>)> {
        let manifest_path = dir.join("manifest.txt");
        let header = header_line(spec, fingerprint);
        let mut restored = BTreeMap::new();
        if resume && manifest_path.exists() {
            let text = fs::read_to_string(&manifest_path)?;
            let mut lines = text.lines();
            match lines.next() {
                None => {}
                Some(found) if found == header => {
                    for line in lines {
                        let Some((id, len)) = parse_manifest_line(line) else {
                            break; // torn tail — recompute everything after
                        };
                        if id >= spec.chunk_count() || len != spec.chunk_range(id).len() {
                            continue;
                        }
                        if let Some(items) = load_chunk(&dir, id, len, decode) {
                            restored.insert(id, items);
                        }
                    }
                }
                Some(found) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "checkpoint at `{}` was written by a different job: found \
                             `{found}`, expected `{header}` — clear the checkpoint \
                             directory or rerun with the original geometry",
                            dir.display()
                        ),
                    ));
                }
            }
        } else if !resume && dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        fs::create_dir_all(&dir)?;
        // Rewrite the manifest from scratch: the header plus one line per
        // chunk that survived loading. Chunks computed from here on append.
        let mut manifest = fs::File::create(&manifest_path)?;
        writeln!(manifest, "{header}")?;
        for (&id, items) in &restored {
            writeln!(manifest, "chunk {id} {}", items.len())?;
        }
        manifest.flush()?;
        Ok((
            JobCheckpoint {
                dir,
                manifest: Mutex::new(manifest),
            },
            restored,
        ))
    }

    /// Persists one completed chunk: payload file first (flushed), then the
    /// manifest line — the ordering the resume path relies on.
    pub(crate) fn record(&self, chunk: usize, lines: &[String]) -> io::Result<()> {
        let path = self.dir.join(format!("chunk-{chunk}.txt"));
        let mut payload = String::new();
        for line in lines {
            payload.push_str(line);
            payload.push('\n');
        }
        fs::write(&path, payload)?;
        let mut manifest = self
            .manifest
            .lock()
            .expect("a worker panicked while appending to the manifest");
        writeln!(manifest, "chunk {chunk} {}", lines.len())?;
        manifest.flush()
    }
}

/// Parses one `chunk <id> <len>` manifest line.
fn parse_manifest_line(line: &str) -> Option<(usize, usize)> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some("chunk") {
        return None;
    }
    let id = parts.next()?.parse().ok()?;
    let len = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((id, len))
}

/// Loads one chunk payload, or `None` if it is missing or corrupt.
fn load_chunk<T>(
    dir: &Path,
    id: usize,
    len: usize,
    decode: fn(&str) -> Option<T>,
) -> Option<Vec<T>> {
    let text = fs::read_to_string(dir.join(format!("chunk-{id}.txt"))).ok()?;
    let items: Vec<T> = text.lines().map(decode).collect::<Option<_>>()?;
    (items.len() == len).then_some(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("se-exec-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn f64_codec_round_trips_bit_patterns() {
        for value in [0.0, -0.0, 1.5e-19, f64::NAN, f64::INFINITY, -7.25] {
            let mut line = String::new();
            vec![value, 1.0].encode(&mut line);
            let back = Vec::<f64>::decode(&line).unwrap();
            assert_eq!(back.len(), 2);
            assert_eq!(back[0].to_bits(), value.to_bits());
        }
        assert_eq!(Vec::<f64>::decode("").unwrap(), Vec::<f64>::new());
        assert!(Vec::<f64>::decode("zz").is_none());
    }

    #[test]
    fn row_block_codec_round_trips() {
        let block = vec![vec![1.0, 2.0], vec![3.5e-9, -0.0]];
        let mut line = String::new();
        block.encode(&mut line);
        assert_eq!(Vec::<Vec<f64>>::decode(&line).unwrap(), block);
        assert_eq!(Vec::<Vec<f64>>::decode("").unwrap(), Vec::<Vec<f64>>::new());
    }

    #[test]
    fn job_ids_are_sanitized() {
        assert_eq!(sanitize_job_id("decks/set.cir a0"), "decks_set.cir_a0");
        assert_eq!(sanitize_job_id(""), "job");
    }

    #[test]
    fn record_then_resume_restores_only_listed_complete_chunks() {
        let root = temp_dir("roundtrip");
        let spec = JobSpec::new(10).with_seed(3).with_chunk(4); // chunks: 4,4,2
        let store = CheckpointStore::new(&root);
        let dir = store.job_dir("demo");
        let (ckpt, restored) =
            JobCheckpoint::open(dir.clone(), &spec, 0, true, Vec::<f64>::decode).unwrap();
        assert!(restored.is_empty());
        let rows: Vec<String> = (0..4)
            .map(|i| {
                let mut s = String::new();
                vec![i as f64].encode(&mut s);
                s
            })
            .collect();
        ckpt.record(1, &rows).unwrap();
        drop(ckpt);

        // A stray, unlisted chunk file must be ignored.
        fs::write(dir.join("chunk-0.txt"), "garbage\n").unwrap();
        let (_ckpt, restored) =
            JobCheckpoint::open(dir.clone(), &spec, 0, true, Vec::<f64>::decode).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[&1].len(), 4);
        assert_eq!(restored[&1][2], vec![2.0]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn mismatched_geometry_is_refused_and_fresh_runs_wipe() {
        let root = temp_dir("mismatch");
        let store = CheckpointStore::new(&root);
        let dir = store.job_dir("demo");
        let spec = JobSpec::new(10).with_chunk(4);
        let (ckpt, _) =
            JobCheckpoint::open(dir.clone(), &spec, 0, false, Vec::<f64>::decode).unwrap();
        ckpt.record(0, &vec!["0000000000000000".to_string(); 4])
            .unwrap();
        drop(ckpt);

        let other = JobSpec::new(10).with_chunk(5);
        let err =
            JobCheckpoint::open(dir.clone(), &other, 0, true, Vec::<f64>::decode).unwrap_err();
        assert!(err.to_string().contains("different job"), "{err}");

        // A non-resume open over the same dir starts fresh.
        let (_ckpt, restored) =
            JobCheckpoint::open(dir.clone(), &other, 0, false, Vec::<f64>::decode).unwrap();
        assert!(restored.is_empty());
        assert!(!dir.join("chunk-0.txt").exists());
        let _ = fs::remove_dir_all(&root);
    }
}
