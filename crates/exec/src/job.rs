//! Job description and the chunked, streaming job state machine.
//!
//! A [`JobSpec`] describes *what* to compute: how many items, under which
//! seed, in chunks of which size, on how many workers. A [`Job`] binds a
//! spec to a solve closure and a [`ResultSink`] and tracks the run: chunks
//! are claimed in order, computed on worker threads, optionally persisted
//! to a checkpoint, and **emitted to the sink in strict index order** —
//! which is why serial, parallel, chunked and resumed runs all produce
//! bit-identical output.

use crate::cancel::CancelToken;
use crate::checkpoint::{CheckpointStore, Codec, JobCheckpoint};
use crate::seed;
use crate::sink::ResultSink;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::ops::Range;
use std::path::PathBuf;
use std::sync::Mutex;

/// How many workers a job (or batch) fans out to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workers {
    /// One worker per available core.
    #[default]
    Auto,
    /// Single-threaded execution on the calling thread (identical results;
    /// useful for profiling and determinism tests).
    Serial,
    /// An explicit worker count (clamped to at least 1).
    Count(usize),
}

impl Workers {
    /// The concrete worker count for `tasks` schedulable chunks.
    #[must_use]
    pub fn resolve(self, tasks: usize) -> usize {
        let wanted = match self {
            Workers::Auto => rayon::current_num_threads(),
            Workers::Serial => 1,
            Workers::Count(n) => n.max(1),
        };
        wanted.clamp(1, tasks.max(1))
    }
}

/// The geometry of one job: item count, seed, chunking and parallelism.
///
/// Per-item seeds are derived with [`crate::seed::derive_seed`]`(seed,
/// index)` — a pure function of the spec, never of scheduling — so every
/// execution mode visits identical `(index, seed)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    items: usize,
    seed: u64,
    chunk: Option<usize>,
    workers: Workers,
}

impl JobSpec {
    /// A job over `items` work items: seed 0, automatic chunk size, one
    /// worker per core.
    #[must_use]
    pub fn new(items: usize) -> Self {
        JobSpec {
            items,
            seed: 0,
            chunk: None,
            workers: Workers::Auto,
        }
    }

    /// Sets the job seed all per-item seeds are derived from.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the chunk size: how many consecutive items one scheduled task
    /// computes. Larger chunks amortize per-task overhead (engine setup,
    /// sink locking); smaller chunks balance load better. Results never
    /// depend on it. Clamped to at least 1.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// Sets an explicit worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Workers::Count(workers);
        self
    }

    /// Forces single-threaded execution (identical results).
    #[must_use]
    pub fn serial(mut self) -> Self {
        self.workers = Workers::Serial;
        self
    }

    /// Number of work items.
    #[must_use]
    pub fn items(&self) -> usize {
        self.items
    }

    /// The job seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker policy.
    #[must_use]
    pub fn workers(&self) -> Workers {
        self.workers
    }

    /// The RNG seed of item `index` (the toolkit-wide SplitMix64
    /// discipline).
    #[must_use]
    pub fn item_seed(&self, index: usize) -> u64 {
        seed::derive_seed(self.seed, index as u64)
    }

    /// The effective chunk size. The automatic choice depends only on the
    /// item count (never on worker count), so checkpoints taken under
    /// different `--jobs` settings stay compatible.
    #[must_use]
    pub fn chunk_size(&self) -> usize {
        self.chunk
            .unwrap_or_else(|| (self.items / 256).clamp(1, 64))
    }

    /// Number of chunks the job splits into.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.items.div_ceil(self.chunk_size())
    }

    /// The item index range of chunk `chunk`.
    #[must_use]
    pub fn chunk_range(&self, chunk: usize) -> Range<usize> {
        let size = self.chunk_size();
        let start = (chunk * size).min(self.items);
        let end = (start + size).min(self.items);
        start..end
    }
}

/// Number of lane groups `replicas` ensemble replicas split into at lane
/// width `width`: the geometry ensemble jobs use to shard one bias point's
/// replica set into multiple schedulable work items (each group runs as
/// one SIMD-friendly lockstep batch on the shared pool). `width` is
/// clamped to at least 1.
#[must_use]
pub fn lane_group_count(replicas: usize, width: usize) -> usize {
    replicas.div_ceil(width.max(1))
}

/// The replica index range of lane group `group` (`0..lane_group_count`)
/// at lane width `width`. Groups tile the replica set in order — replica
/// `k` always lands in group `k / width` at offset `k % width` — so the
/// concatenation of all groups' results in group order is the plain
/// replica order, whatever the width: the property that makes ensemble
/// tables byte-identical across lane widths.
#[must_use]
pub fn lane_group_range(replicas: usize, width: usize, group: usize) -> Range<usize> {
    let width = width.max(1);
    let start = (group * width).min(replicas);
    let end = (start + width).min(replicas);
    start..end
}

/// What a completed job did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Report {
    /// Total items the job covered.
    pub items: usize,
    /// Items computed in this run.
    pub computed: usize,
    /// Items restored from a checkpoint instead of recomputed.
    pub restored: usize,
    /// Number of chunks the job was split into.
    pub chunks: usize,
}

/// Why a job did not complete.
#[derive(Debug)]
pub enum ExecError<E> {
    /// The solve closure failed; `index` is the lowest failing item index.
    Job {
        /// The failing item.
        index: usize,
        /// The solver's error.
        error: E,
    },
    /// A result sink failed to consume the stream.
    Sink(io::Error),
    /// The checkpoint store could not be read or written.
    Checkpoint(String),
    /// The job was cancelled; `emitted` items reached the sink first (and
    /// every completed chunk of a checkpointed job is on disk).
    Cancelled {
        /// Items emitted to the sink before the cancel took effect.
        emitted: usize,
    },
}

impl<E: fmt::Display> fmt::Display for ExecError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Job { index, error } => write!(f, "item {index} failed: {error}"),
            ExecError::Sink(e) => write!(f, "result sink failed: {e}"),
            ExecError::Checkpoint(message) => write!(f, "checkpoint error: {message}"),
            ExecError::Cancelled { emitted } => {
                write!(f, "cancelled after {emitted} emitted items")
            }
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for ExecError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Job { error, .. } => Some(error),
            ExecError::Sink(e) => Some(e),
            ExecError::Checkpoint(_) | ExecError::Cancelled { .. } => None,
        }
    }
}

/// The error slot of a running job; the precedence rule is: the
/// lowest-index solver error wins, then sink failures, then checkpoint
/// failures.
#[derive(Debug)]
enum Failure<E> {
    Job { index: usize, error: E },
    Sink(io::Error),
    Checkpoint(String),
}

/// One completed, not-yet-emitted chunk.
struct Ready<T> {
    items: Vec<T>,
}

/// The mutable half of a job, shared across workers behind one mutex.
struct JobState<'s, T, E> {
    sink: &'s mut (dyn ResultSink<T> + Send),
    ready: BTreeMap<usize, Ready<T>>,
    next_emit: usize,
    emitted: usize,
    computed: usize,
    restored: usize,
    collected: Vec<T>,
    failure: Option<Failure<E>>,
    sink_dead: bool,
}

/// A schedulable unit of work: something that exposes pending chunks to
/// the shared batch scheduler (see [`crate::run_batch`]). Implemented by
/// [`Job`]; the trait is object-safe so heterogeneous jobs can share one
/// worker pool.
pub trait ChunkTask: Sync {
    /// Number of chunks still to compute (restored chunks are excluded).
    fn pending(&self) -> usize;

    /// Computes pending chunk `slot` (`0..pending()`). Slots of one task
    /// are always claimed in increasing order.
    fn run_pending(&self, slot: usize, cancel: &CancelToken);

    /// A short label for progress and diagnostics.
    fn label(&self) -> &str;
}

/// Builds a [`Job`] incrementally: label, result collection, checkpoint.
pub struct JobBuilder<T> {
    spec: JobSpec,
    label: String,
    collect: bool,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    fingerprint: u64,
    encode: Option<fn(&T, &mut String)>,
    decode: Option<fn(&str) -> Option<T>>,
}

impl<T: Send> JobBuilder<T> {
    /// A builder for a job with the given geometry.
    #[must_use]
    pub fn new(spec: JobSpec) -> Self {
        JobBuilder {
            spec,
            label: "job".to_string(),
            collect: false,
            checkpoint_dir: None,
            resume: false,
            fingerprint: 0,
            encode: None,
            decode: None,
        }
    }

    /// Sets the job label (progress lines, diagnostics).
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Also collect the items in memory; [`Job::finish`] returns them in
    /// index order.
    #[must_use]
    pub fn collect(mut self) -> Self {
        self.collect = true;
        self
    }

    /// Persist completed chunks under `store`/`id`. With `resume`,
    /// previously completed chunks are restored instead of recomputed;
    /// without it, any existing checkpoint for the job is discarded.
    #[must_use]
    pub fn checkpoint(mut self, store: &CheckpointStore, id: &str, resume: bool) -> Self
    where
        T: Codec,
    {
        self.checkpoint_dir = Some(store.job_dir(id));
        self.resume = resume;
        self.encode = Some(T::encode as fn(&T, &mut String));
        self.decode = Some(T::decode as fn(&str) -> Option<T>);
        self
    }

    /// Stamps the checkpoint with an input-content fingerprint (see
    /// [`crate::checkpoint::content_fingerprint`]). A resume whose inputs
    /// hash differently — an edited deck with unchanged geometry, say — is
    /// refused instead of silently restoring stale results.
    #[must_use]
    pub fn fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = fingerprint;
        self
    }

    /// Binds the sink and solve closure, opening the checkpoint (if any)
    /// and streaming any restored prefix into the sink.
    ///
    /// # Errors
    ///
    /// [`ExecError::Checkpoint`] if the checkpoint cannot be opened,
    /// [`ExecError::Sink`] if the sink fails on start or on the restored
    /// prefix.
    pub fn build<'s, E, F>(
        self,
        sink: &'s mut (dyn ResultSink<T> + Send),
        solve: F,
    ) -> Result<Job<'s, T, E>, ExecError<E>>
    where
        E: Send,
        F: Fn(usize, u64) -> Result<T, E> + Sync + 's,
        T: 's,
    {
        let spec = self.spec;
        let (checkpoint, restored_chunks) = match self.checkpoint_dir {
            Some(dir) => {
                let decode = self.decode.expect("checkpoint() always sets the codec");
                let (ckpt, restored) =
                    JobCheckpoint::open(dir, &spec, self.fingerprint, self.resume, decode)
                        .map_err(|e| ExecError::Checkpoint(e.to_string()))?;
                (Some(ckpt), restored)
            }
            None => (None, BTreeMap::new()),
        };
        sink.start(&spec).map_err(ExecError::Sink)?;
        let restored: usize = restored_chunks.values().map(Vec::len).sum();
        let pending: Vec<usize> = (0..spec.chunk_count())
            .filter(|c| !restored_chunks.contains_key(c))
            .collect();
        let mut state = JobState {
            sink,
            ready: restored_chunks
                .into_iter()
                .map(|(c, items)| (c, Ready { items }))
                .collect(),
            next_emit: 0,
            emitted: 0,
            computed: 0,
            restored,
            collected: Vec::new(),
            failure: None,
            sink_dead: false,
        };
        // Stream the restored in-order prefix immediately.
        Job::<T, E>::drain(&spec, self.collect, &mut state);
        if state.sink_dead {
            match state.failure {
                Some(Failure::Sink(e)) => return Err(ExecError::Sink(e)),
                _ => unreachable!("a dead sink always records its error"),
            }
        }
        Ok(Job {
            spec,
            label: self.label,
            collect: self.collect,
            solve: Box::new(solve),
            encode: self.encode,
            checkpoint,
            pending,
            state: Mutex::new(state),
        })
    }
}

/// A bound, runnable job: spec + solve closure + sink (+ optional
/// checkpoint). Run it with [`crate::run_batch`] (or the [`crate::run`] /
/// [`crate::run_collect`] conveniences), then call [`Job::finish`].
pub struct Job<'s, T, E> {
    spec: JobSpec,
    label: String,
    collect: bool,
    solve: Box<dyn Fn(usize, u64) -> Result<T, E> + Sync + 's>,
    encode: Option<fn(&T, &mut String)>,
    checkpoint: Option<JobCheckpoint>,
    pending: Vec<usize>,
    state: Mutex<JobState<'s, T, E>>,
}

impl<'s, T: Send, E: Send> Job<'s, T, E> {
    /// The job geometry.
    #[must_use]
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Locks the state briefly; used by the scheduler path.
    fn lock(&self) -> std::sync::MutexGuard<'_, JobState<'s, T, E>> {
        self.state
            .lock()
            .expect("a worker panicked while holding the job state")
    }

    /// Emits every in-order completed chunk to the sink (and the collector).
    fn drain(spec: &JobSpec, collect: bool, state: &mut JobState<'_, T, E>) {
        while let Some(ready) = state.ready.remove(&state.next_emit) {
            let start = spec.chunk_range(state.next_emit).start;
            if !state.sink_dead {
                for (offset, item) in ready.items.iter().enumerate() {
                    if let Err(e) = state.sink.item(start + offset, item) {
                        state.sink_dead = true;
                        if state.failure.is_none() {
                            state.failure = Some(Failure::Sink(e));
                        }
                        break;
                    }
                }
                if !state.sink_dead {
                    if let Err(e) = state.sink.flush() {
                        state.sink_dead = true;
                        if state.failure.is_none() {
                            state.failure = Some(Failure::Sink(e));
                        }
                    }
                }
            }
            state.emitted += ready.items.len();
            if collect {
                state.collected.extend(ready.items);
            }
            state.next_emit += 1;
        }
    }

    /// Records a solver failure, keeping the lowest failing index.
    fn record_job_error(&self, index: usize, error: E) {
        let mut state = self.lock();
        let replace = match &state.failure {
            Some(Failure::Job { index: held, .. }) => index < *held,
            _ => true,
        };
        if replace {
            state.failure = Some(Failure::Job { index, error });
        }
    }

    /// Finishes the job: surfaces any failure, otherwise calls the sink's
    /// `finish` hook and returns the collected items (empty unless
    /// [`JobBuilder::collect`] was set) and the run report.
    ///
    /// # Errors
    ///
    /// The lowest-index solver error, a sink or checkpoint failure, or
    /// [`ExecError::Cancelled`] if the run was interrupted.
    pub fn finish(self) -> Result<(Vec<T>, Report), ExecError<E>> {
        let state = self
            .state
            .into_inner()
            .expect("a worker panicked while holding the job state");
        if let Some(failure) = state.failure {
            return Err(match failure {
                Failure::Job { index, error } => ExecError::Job { index, error },
                Failure::Sink(e) => ExecError::Sink(e),
                Failure::Checkpoint(message) => ExecError::Checkpoint(message),
            });
        }
        if state.emitted < self.spec.items() {
            return Err(ExecError::Cancelled {
                emitted: state.emitted,
            });
        }
        let report = Report {
            items: self.spec.items(),
            computed: state.computed,
            restored: state.restored,
            chunks: self.spec.chunk_count(),
        };
        let JobState {
            sink, collected, ..
        } = state;
        sink.finish(&report).map_err(ExecError::Sink)?;
        Ok((collected, report))
    }
}

impl<T: Send, E: Send> ChunkTask for Job<'_, T, E> {
    fn pending(&self) -> usize {
        self.pending.len()
    }

    fn run_pending(&self, slot: usize, cancel: &CancelToken) {
        // Note: a recorded failure does NOT skip later chunks. Every
        // claimed chunk still computes (exactly like the historical serial
        // loop), so the lowest failing item index always wins whatever the
        // scheduling — a fast-exit here could race a worker that claimed an
        // earlier chunk but has not started it yet.
        let chunk = self.pending[slot];
        let range = self.spec.chunk_range(chunk);
        let mut items = Vec::with_capacity(range.len());
        for index in range {
            if cancel.is_cancelled() {
                return; // abandon the incomplete chunk
            }
            match (self.solve)(index, self.spec.item_seed(index)) {
                Ok(item) => items.push(item),
                Err(error) => {
                    self.record_job_error(index, error);
                    return;
                }
            }
        }
        if let (Some(checkpoint), Some(encode)) = (&self.checkpoint, self.encode) {
            let lines: Vec<String> = items
                .iter()
                .map(|item| {
                    let mut line = String::new();
                    encode(item, &mut line);
                    line
                })
                .collect();
            if let Err(e) = checkpoint.record(chunk, &lines) {
                let mut state = self.lock();
                if state.failure.is_none() {
                    state.failure = Some(Failure::Checkpoint(e.to_string()));
                }
                return;
            }
        }
        let mut state = self.lock();
        state.computed += items.len();
        state.ready.insert(chunk, Ready { items });
        Self::drain(&self.spec, self.collect, &mut state);
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_geometry_covers_all_items_exactly_once() {
        for (items, chunk) in [(0, 4), (1, 4), (10, 3), (10, 4), (10, 100), (257, 1)] {
            let spec = JobSpec::new(items).with_chunk(chunk);
            let mut covered = Vec::new();
            for c in 0..spec.chunk_count() {
                covered.extend(spec.chunk_range(c));
            }
            assert_eq!(covered, (0..items).collect::<Vec<_>>(), "{items}/{chunk}");
        }
    }

    #[test]
    fn auto_chunk_size_depends_only_on_items() {
        assert_eq!(JobSpec::new(41).chunk_size(), 1);
        assert_eq!(JobSpec::new(1000).chunk_size(), 3);
        assert_eq!(JobSpec::new(500_000).chunk_size(), 64);
        assert_eq!(JobSpec::new(0).chunk_count(), 0);
    }

    #[test]
    fn item_seeds_follow_the_shared_discipline() {
        let spec = JobSpec::new(8).with_seed(42);
        assert_eq!(spec.item_seed(0), crate::seed::derive_seed(42, 0));
        assert_eq!(spec.item_seed(7), crate::seed::derive_seed(42, 7));
    }

    #[test]
    fn lane_groups_tile_the_replica_set_in_order() {
        for (replicas, width) in [(16, 4), (16, 16), (16, 5), (1, 8), (7, 1), (0, 4)] {
            let groups = lane_group_count(replicas, width);
            let mut covered = Vec::new();
            for g in 0..groups {
                let range = lane_group_range(replicas, width, g);
                assert!(range.len() <= width.max(1), "{replicas}/{width}");
                covered.extend(range);
            }
            assert_eq!(
                covered,
                (0..replicas).collect::<Vec<_>>(),
                "groups must concatenate to plain replica order ({replicas}/{width})"
            );
        }
        // Zero width is clamped, not a division by zero.
        assert_eq!(lane_group_count(8, 0), 8);
        assert_eq!(lane_group_range(8, 0, 3), 3..4);
    }

    #[test]
    fn workers_resolve_within_bounds() {
        assert_eq!(Workers::Serial.resolve(100), 1);
        assert_eq!(Workers::Count(0).resolve(100), 1);
        assert_eq!(Workers::Count(4).resolve(2), 2);
        assert!(Workers::Auto.resolve(100) >= 1);
        assert_eq!(Workers::Auto.resolve(0), 1);
    }

    #[test]
    fn exec_error_displays_are_informative() {
        let job: ExecError<io::Error> = ExecError::Job {
            index: 3,
            error: io::Error::other("boom"),
        };
        assert!(job.to_string().contains("item 3"));
        let cancelled: ExecError<io::Error> = ExecError::Cancelled { emitted: 5 };
        assert!(cancelled.to_string().contains("5"));
    }
}
