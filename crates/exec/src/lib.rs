//! # se-exec — the chunked, streaming, resumable job substrate
//!
//! Every parallel workload of the single-electronics toolkit — bias-point
//! sweeps, transient ensembles, whole deck batteries — is "N independent
//! items, each solved under a deterministic per-item seed". This crate is
//! the one execution layer for that shape, so batching, streaming,
//! progress, cancellation and resume are inherited by every engine instead
//! of reimplemented per runner:
//!
//! * [`JobSpec`] — the job geometry: item count, seed, chunk size, worker
//!   policy. Per-item seeds come from [`seed::derive_seed`] (the
//!   SplitMix64 discipline, moved here as the single source of truth) and
//!   depend only on `(seed, index)` — never on scheduling — which is what
//!   makes **serial ≡ parallel ≡ chunked ≡ resumed, bit-identically**.
//! * Chunked scheduling — consecutive items are computed in chunks
//!   (configurable via [`JobSpec::with_chunk`]) to amortize per-task
//!   overhead on hot engines; [`run_batch`] lets any number of jobs share
//!   one bounded worker pool, which is how a multi-deck batch saturates a
//!   machine.
//! * [`ResultSink`] — streaming consumption in strict index order:
//!   in-memory tables ([`TableSink`]), incremental CSV/JSONL writers
//!   ([`CsvSink`], [`JsonlSink`]), a throttled progress reporter
//!   ([`ProgressSink`]), all composable with [`Tee`].
//! * [`CancelToken`] — cooperative cancellation, polled between items.
//! * [`CheckpointStore`] — a completed-chunk manifest plus bit-exact
//!   payload files; an interrupted run resumes from the last finished
//!   chunk and reproduces the uninterrupted output bit for bit.
//! * [`trace`] — deterministic replay: [`TraceSink`] records a job's
//!   geometry, per-chunk content hashes and every output bit;
//!   [`VerifySink`] re-executes against the recording and localizes the
//!   first [`Divergence`] to chunk, item, row and column. The raw-bits
//!   float codec both checkpoint and trace payloads use lives in
//!   [`bits`].
//!
//! # Example
//!
//! ```
//! use se_exec::{run_collect, JobSpec};
//!
//! // 100 items, each "solved" from its index and derived seed.
//! let spec = JobSpec::new(100).with_seed(42).with_chunk(8);
//! let solve = |i: usize, seed: u64| Ok::<_, std::io::Error>(vec![i as f64, (seed % 97) as f64]);
//! let parallel = run_collect(&spec, &mut (), solve).unwrap();
//! let serial = run_collect(&spec.serial(), &mut (), solve).unwrap();
//! assert_eq!(parallel, serial); // bit-identical, whatever the scheduling
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bits;
pub mod cancel;
pub mod checkpoint;
pub mod job;
pub mod seed;
pub mod sink;
pub mod trace;

pub use batch::run_batch;
pub use cancel::CancelToken;
pub use checkpoint::{content_fingerprint, sanitize_job_id, CheckpointStore, Codec};
pub use job::{
    lane_group_count, lane_group_range, ChunkTask, ExecError, Job, JobBuilder, JobSpec, Report,
    Workers,
};
pub use seed::{derive_seed, split_mix64};
pub use sink::{CsvSink, JsonlSink, ProgressSink, ResultSink, TableSink, Tee, ToRows};
pub use trace::{Divergence, JobTrace, TraceSink, TraceValue, VerifySink};

/// Runs one job, streaming results into `sink`.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run<'s, T, E, F>(
    spec: &JobSpec,
    sink: &'s mut (dyn ResultSink<T> + Send),
    solve: F,
) -> Result<Report, ExecError<E>>
where
    T: Send + 's,
    E: Send + 's,
    F: Fn(usize, u64) -> Result<T, E> + Sync + 's,
{
    let job = JobBuilder::new(*spec).build(sink, solve)?;
    run_batch(&[&job], spec.workers(), &CancelToken::new());
    job.finish().map(|(_, report)| report)
}

/// Runs one job and returns the items in index order (streaming them
/// through `sink` on the way; pass `&mut ()` to only collect).
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_collect<'s, T, E, F>(
    spec: &JobSpec,
    sink: &'s mut (dyn ResultSink<T> + Send),
    solve: F,
) -> Result<Vec<T>, ExecError<E>>
where
    T: Send + 's,
    E: Send + 's,
    F: Fn(usize, u64) -> Result<T, E> + Sync + 's,
{
    let job = JobBuilder::new(*spec).collect().build(sink, solve)?;
    run_batch(&[&job], spec.workers(), &CancelToken::new());
    job.finish().map(|(items, _)| items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug, PartialEq)]
    struct ToyError(String);

    impl fmt::Display for ToyError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for ToyError {}

    fn toy_solve(index: usize, seed: u64) -> Result<Vec<f64>, ToyError> {
        Ok(vec![index as f64, (seed % 1024) as f64])
    }

    #[test]
    fn serial_parallel_and_chunked_runs_are_bit_identical() {
        let baseline =
            run_collect(&JobSpec::new(257).with_seed(9).serial(), &mut (), toy_solve).unwrap();
        for chunk in [1, 2, 7, 64, 1000] {
            let spec = JobSpec::new(257).with_seed(9).with_chunk(chunk);
            let chunked = run_collect(&spec, &mut (), toy_solve).unwrap();
            assert_eq!(chunked, baseline, "chunk={chunk}");
        }
    }

    #[test]
    fn first_error_by_index_wins_even_across_chunks() {
        let spec = JobSpec::new(64).with_chunk(4);
        let err = run_collect(&spec, &mut (), |i, _| {
            if i >= 10 {
                Err(ToyError(format!("boom at {i}")))
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        match err {
            ExecError::Job { index, error } => {
                assert_eq!(index, 10);
                assert_eq!(error, ToyError("boom at 10".into()));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn cancellation_stops_the_run_and_reports_progress() {
        let spec = JobSpec::new(100).with_chunk(5).serial();
        let cancel = CancelToken::new();
        let solved = AtomicUsize::new(0);
        let mut sink = TableSink::new();
        let job = JobBuilder::new(spec)
            .build(&mut sink, |i, _| {
                if solved.fetch_add(1, Ordering::SeqCst) == 12 {
                    cancel.cancel();
                }
                Ok::<_, ToyError>(vec![i as f64])
            })
            .unwrap();
        run_batch(&[&job], spec.workers(), &cancel);
        match job.finish() {
            Err(ExecError::Cancelled { emitted }) => {
                assert!(emitted < 100);
                assert_eq!(emitted % 5, 0, "only whole chunks are emitted");
            }
            other => panic!("expected cancellation, got {:?}", other.map(|(_, r)| r)),
        }
        assert!(sink.rows().len() < 100);
    }

    #[test]
    fn empty_jobs_finish_cleanly() {
        let report = run(&JobSpec::new(0), &mut (), toy_solve).unwrap();
        assert_eq!(report.items, 0);
        assert_eq!(report.chunks, 0);
    }

    #[test]
    fn checkpointed_interrupted_runs_resume_bit_identically() {
        let dir = std::env::temp_dir().join(format!("se-exec-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir);
        let spec = JobSpec::new(57).with_seed(5).with_chunk(8);

        let uninterrupted = run_collect(&spec, &mut (), toy_solve).unwrap();

        // First attempt: cancel once a few items have been solved.
        let cancel = CancelToken::new();
        let solved = AtomicUsize::new(0);
        let mut no_sink = ();
        let job = JobBuilder::new(spec)
            .collect()
            .checkpoint(&store, "demo", false)
            .build(&mut no_sink, |i, seed| {
                if solved.fetch_add(1, Ordering::SeqCst) == 20 {
                    cancel.cancel();
                }
                toy_solve(i, seed)
            })
            .unwrap();
        run_batch(&[&job], spec.workers(), &cancel);
        assert!(matches!(job.finish(), Err(ExecError::Cancelled { .. })));

        // Second attempt: resume; restored chunks are not recomputed.
        let recomputed = AtomicUsize::new(0);
        let mut still_no_sink = ();
        let job = JobBuilder::new(spec)
            .collect()
            .checkpoint(&store, "demo", true)
            .build(&mut still_no_sink, |i, seed| {
                recomputed.fetch_add(1, Ordering::SeqCst);
                toy_solve(i, seed)
            })
            .unwrap();
        run_batch(&[&job], spec.workers(), &CancelToken::new());
        let (resumed, report) = job.finish().unwrap();
        assert_eq!(resumed, uninterrupted, "resume must be bit-identical");
        assert!(report.restored > 0, "{report:?}");
        assert_eq!(report.restored + report.computed, 57);
        assert_eq!(recomputed.load(Ordering::SeqCst), report.computed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_csv_matches_across_modes() {
        let spec = JobSpec::new(13).with_seed(3).with_chunk(4);
        let columns = vec!["i".to_string(), "seed".into()];
        let mut parallel = CsvSink::new(Vec::new(), columns.clone());
        run(&spec, &mut parallel, toy_solve).unwrap();
        let mut serial = CsvSink::new(Vec::new(), columns);
        run(&spec.serial().with_chunk(1), &mut serial, toy_solve).unwrap();
        assert_eq!(parallel.into_inner(), serial.into_inner());
    }
}
