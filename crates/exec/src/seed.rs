//! The single source of truth for deterministic per-item seed derivation.
//!
//! Every parallel workload of the toolkit — bias-point sweeps, transient
//! ensembles, deck batteries — derives the RNG seed of work item `index`
//! from the job seed with [`derive_seed`]. The derivation depends only on
//! `(seed, index)`, never on thread scheduling, chunking or resume state,
//! which is what makes serial, parallel, chunked and resumed runs
//! bit-identical. This module used to live in `se-engine`'s sweep runner;
//! it moved here so the discipline has exactly one definition.

/// Derives the RNG seed of work item `index` from the job seed:
/// `SplitMix64(SplitMix64(seed) ⊕ index)`.
///
/// The job seed is avalanche-mixed *before* the item index is XORed in.
/// With a raw `seed ⊕ index` combiner, two jobs with nearby seeds (42
/// and 43, say) would share almost all per-item streams at permuted
/// indices — silently correlating "independent" repeat runs; mixing first
/// pushes such collisions to astronomically unlikely index offsets.
#[must_use]
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    split_mix64(split_mix64(seed) ^ index)
}

/// One round of the SplitMix64 avalanche function.
#[must_use]
pub fn split_mix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the exact SplitMix64 outputs, so any refactor that shifts the
    /// derivation — and with it every stochastic result in the toolkit —
    /// fails loudly. `split_mix64(0)` is the published reference value of
    /// the generator.
    #[test]
    fn split_mix64_matches_the_reference_values() {
        assert_eq!(split_mix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(split_mix64(1), 0x910a_2dec_8902_5cc1);
        assert_eq!(split_mix64(42), 0xbdd7_3226_2feb_6e95);
    }

    /// Pins the exact derived per-item seeds the sweep and transient layers
    /// have used since PR 1. These values must never change.
    #[test]
    fn derived_seeds_are_pinned() {
        assert_eq!(derive_seed(0, 0), 0xa706_dd2f_4d19_7e6f);
        assert_eq!(derive_seed(0, 1), 0x08b4_fda8_c892_b50e);
        assert_eq!(derive_seed(0, 2), 0xd7cc_9674_ff5f_fa39);
        assert_eq!(derive_seed(42, 0), 0x57e1_faba_6510_7204);
        assert_eq!(derive_seed(42, 7), 0x1606_2d6c_1339_e500);
        assert_eq!(derive_seed(0xdead_beef, 123_456_789), 0x41bd_9b2f_af62_00f9);
    }

    #[test]
    fn derived_seeds_are_decorrelated() {
        let a = derive_seed(7, 0);
        let b = derive_seed(7, 1);
        assert_ne!(a, b);
        assert_ne!(a ^ b, 1, "must not be a pure xor of the index");
    }

    #[test]
    fn nearby_job_seeds_do_not_share_item_streams() {
        // With a raw `seed ^ index` combiner, jobs seeded 42 and 43 would
        // reuse each other's per-item seeds at indices permuted by 1.
        let a: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_seed(43, i)).collect();
        let shared = a.iter().filter(|s| b.contains(s)).count();
        assert_eq!(shared, 0, "adjacent job seeds must give disjoint streams");
    }
}
