//! Streaming result consumption: the [`ResultSink`] trait and the stock
//! sinks (in-memory table, incremental CSV/JSONL writers, throttled
//! progress reporter, tee combinator).
//!
//! The scheduler feeds a sink its items **in index order**, whatever the
//! thread scheduling, chunking or resume state of the job — so a sink can
//! write straight to a file and the bytes come out identical to a serial
//! run. [`ResultSink::flush`] is called at chunk boundaries of the emission
//! stream, which is what makes an interrupted checkpointed run leave a
//! clean, resumable prefix behind.

use crate::job::{JobSpec, Report};
use std::io::{self, Write};
use std::time::{Duration, Instant};

/// A streaming consumer of job results.
///
/// The scheduler calls [`ResultSink::start`] once before any item,
/// [`ResultSink::item`] for every item **in index order**,
/// [`ResultSink::flush`] after each emitted chunk, and
/// [`ResultSink::finish`] once after the last item of a successful run
/// (errors and cancellations skip it). Items arrive by reference; a sink
/// that retains data copies what it needs.
pub trait ResultSink<T> {
    /// Called once, before any item, with the job geometry.
    ///
    /// # Errors
    ///
    /// An I/O failure here aborts the job with
    /// [`crate::ExecError::Sink`].
    fn start(&mut self, spec: &JobSpec) -> io::Result<()> {
        let _ = spec;
        Ok(())
    }

    /// Consumes the item at `index`. Items arrive in strictly increasing
    /// index order with no gaps.
    ///
    /// # Errors
    ///
    /// An I/O failure here aborts the job with
    /// [`crate::ExecError::Sink`].
    fn item(&mut self, index: usize, item: &T) -> io::Result<()>;

    /// Called after each emitted chunk; durable sinks should push buffered
    /// bytes to their backing store here.
    ///
    /// # Errors
    ///
    /// An I/O failure here aborts the job with
    /// [`crate::ExecError::Sink`].
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Called once after the last item of a successful run.
    ///
    /// # Errors
    ///
    /// An I/O failure here fails the job with
    /// [`crate::ExecError::Sink`].
    fn finish(&mut self, report: &Report) -> io::Result<()> {
        let _ = report;
        Ok(())
    }
}

/// The no-op sink: discards every item. Useful when a job is run only for
/// its collected results (see [`crate::run_collect`]).
impl<T> ResultSink<T> for () {
    fn item(&mut self, _index: usize, _item: &T) -> io::Result<()> {
        Ok(())
    }
}

/// `Option<S>` forwards to `S` when present and discards otherwise —
/// convenient for optional CSV export or progress reporting.
impl<T, S: ResultSink<T>> ResultSink<T> for Option<S> {
    fn start(&mut self, spec: &JobSpec) -> io::Result<()> {
        match self {
            Some(sink) => sink.start(spec),
            None => Ok(()),
        }
    }

    fn item(&mut self, index: usize, item: &T) -> io::Result<()> {
        match self {
            Some(sink) => sink.item(index, item),
            None => Ok(()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }

    fn finish(&mut self, report: &Report) -> io::Result<()> {
        match self {
            Some(sink) => sink.finish(report),
            None => Ok(()),
        }
    }
}

/// Feeds two sinks from one stream (chain `Tee`s for more).
#[derive(Debug)]
pub struct Tee<A, B>(pub A, pub B);

impl<T, A: ResultSink<T>, B: ResultSink<T>> ResultSink<T> for Tee<A, B> {
    fn start(&mut self, spec: &JobSpec) -> io::Result<()> {
        self.0.start(spec)?;
        self.1.start(spec)
    }

    fn item(&mut self, index: usize, item: &T) -> io::Result<()> {
        self.0.item(index, item)?;
        self.1.item(index, item)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()?;
        self.1.flush()
    }

    fn finish(&mut self, report: &Report) -> io::Result<()> {
        self.0.finish(report)?;
        self.1.finish(report)
    }
}

/// An item that renders as zero or more rows of named-column `f64` data —
/// the shape the tabular sinks ([`TableSink`], [`CsvSink`], [`JsonlSink`])
/// consume.
///
/// A bias-point result is one row; a whole transient trace is one row per
/// sample time.
pub trait ToRows {
    /// Emits the item's rows, in order, through `emit`.
    ///
    /// # Errors
    ///
    /// Propagates the first error `emit` returns.
    fn rows(&self, emit: &mut dyn FnMut(&[f64]) -> io::Result<()>) -> io::Result<()>;
}

impl ToRows for Vec<f64> {
    fn rows(&self, emit: &mut dyn FnMut(&[f64]) -> io::Result<()>) -> io::Result<()> {
        emit(self)
    }
}

impl ToRows for Vec<Vec<f64>> {
    fn rows(&self, emit: &mut dyn FnMut(&[f64]) -> io::Result<()>) -> io::Result<()> {
        for row in self {
            emit(row)?;
        }
        Ok(())
    }
}

/// The in-memory table sink: accumulates every row of the stream.
#[derive(Debug, Default)]
pub struct TableSink {
    rows: Vec<Vec<f64>>,
}

impl TableSink {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        TableSink::default()
    }

    /// The accumulated rows, in index order.
    #[must_use]
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Consumes the sink, returning the accumulated rows.
    #[must_use]
    pub fn into_rows(self) -> Vec<Vec<f64>> {
        self.rows
    }
}

impl<T: ToRows> ResultSink<T> for TableSink {
    fn item(&mut self, _index: usize, item: &T) -> io::Result<()> {
        let rows = &mut self.rows;
        item.rows(&mut |row| {
            rows.push(row.to_vec());
            Ok(())
        })
    }
}

/// Formats one CSV cell with shortest-round-trip precision — the same
/// `{v:?}` rendering the result tables use, so a streamed CSV is
/// byte-identical to one exported after the fact.
fn csv_cell(value: f64) -> String {
    format!("{value:?}")
}

/// The incremental CSV writer: a header row of column names at
/// [`ResultSink::start`], then one line per data row as chunks stream in,
/// flushed at every chunk boundary.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    out: W,
    columns: Vec<String>,
}

impl<W: Write> CsvSink<W> {
    /// A CSV sink writing `columns` as the header line.
    pub fn new(out: W, columns: Vec<String>) -> Self {
        CsvSink { out, columns }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<T: ToRows, W: Write> ResultSink<T> for CsvSink<W> {
    fn start(&mut self, _spec: &JobSpec) -> io::Result<()> {
        writeln!(self.out, "{}", self.columns.join(","))
    }

    fn item(&mut self, _index: usize, item: &T) -> io::Result<()> {
        let out = &mut self.out;
        item.rows(&mut |row| {
            let cells: Vec<String> = row.iter().map(|&v| csv_cell(v)).collect();
            writeln!(out, "{}", cells.join(","))
        })
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    fn finish(&mut self, _report: &Report) -> io::Result<()> {
        self.out.flush()
    }
}

/// The incremental JSONL writer: one JSON array of numbers per data row
/// (non-finite values become `null`, as JSON requires).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// A JSONL sink over the writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<T: ToRows, W: Write> ResultSink<T> for JsonlSink<W> {
    fn item(&mut self, _index: usize, item: &T) -> io::Result<()> {
        let out = &mut self.out;
        item.rows(&mut |row| {
            let cells: Vec<String> = row
                .iter()
                .map(|&v| {
                    if v.is_finite() {
                        format!("{v:?}")
                    } else {
                        "null".to_string()
                    }
                })
                .collect();
            writeln!(out, "[{}]", cells.join(", "))
        })
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    fn finish(&mut self, _report: &Report) -> io::Result<()> {
        self.out.flush()
    }
}

/// The throttled progress reporter: counts emitted items and prints
/// `label: done/total (pct%)` lines, at most one per refresh interval
/// (plus a final summary), so a million-point sweep does not flood the
/// terminal.
#[derive(Debug)]
pub struct ProgressSink<W: Write> {
    label: String,
    out: W,
    every: Duration,
    last: Option<Instant>,
    done: usize,
    total: usize,
}

impl ProgressSink<io::Stderr> {
    /// A progress reporter printing to stderr, refreshing at most every
    /// 200 ms.
    #[must_use]
    pub fn stderr(label: impl Into<String>) -> Self {
        ProgressSink::to_writer(label, io::stderr()).with_interval(Duration::from_millis(200))
    }
}

impl<W: Write> ProgressSink<W> {
    /// A progress reporter printing to an arbitrary writer with no
    /// throttling (every item reports) — useful for tests.
    pub fn to_writer(label: impl Into<String>, out: W) -> Self {
        ProgressSink {
            label: label.into(),
            out,
            every: Duration::ZERO,
            last: None,
            done: 0,
            total: 0,
        }
    }

    /// Sets the minimum interval between progress lines.
    #[must_use]
    pub fn with_interval(mut self, every: Duration) -> Self {
        self.every = every;
        self
    }
}

impl<T, W: Write> ResultSink<T> for ProgressSink<W> {
    fn start(&mut self, spec: &JobSpec) -> io::Result<()> {
        self.total = spec.items();
        self.done = 0;
        self.last = None;
        Ok(())
    }

    fn item(&mut self, _index: usize, _item: &T) -> io::Result<()> {
        self.done += 1;
        let due = self.last.is_none_or(|t| t.elapsed() >= self.every);
        if due && self.done < self.total {
            let pct = 100.0 * self.done as f64 / self.total.max(1) as f64;
            writeln!(
                self.out,
                "{}: {}/{} ({pct:.0}%)",
                self.label, self.done, self.total
            )?;
            self.last = Some(Instant::now());
        }
        Ok(())
    }

    fn finish(&mut self, report: &Report) -> io::Result<()> {
        writeln!(
            self.out,
            "{}: done — {} items ({} computed, {} restored)",
            self.label, report.items, report.computed, report.restored
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn feed<S: ResultSink<Vec<f64>>>(sink: &mut S, rows: &[Vec<f64>]) {
        let spec = JobSpec::new(rows.len());
        sink.start(&spec).unwrap();
        for (i, row) in rows.iter().enumerate() {
            sink.item(i, row).unwrap();
        }
        sink.flush().unwrap();
        let report = Report {
            items: rows.len(),
            computed: rows.len(),
            restored: 0,
            chunks: 1,
        };
        sink.finish(&report).unwrap();
    }

    #[test]
    fn table_sink_accumulates_rows_in_order() {
        let mut sink = TableSink::new();
        feed(&mut sink, &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(sink.rows(), &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(sink.into_rows().len(), 2);
    }

    #[test]
    fn csv_sink_writes_header_and_round_trippable_cells() {
        let mut sink = CsvSink::new(Vec::new(), vec!["VG".into(), "I(J1)".into()]);
        feed(&mut sink, &[vec![0.0, 1e-12], vec![0.1, 2.5e-9]]);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("VG,I(J1)"));
        let row: Vec<f64> = lines
            .next()
            .unwrap()
            .split(',')
            .map(|cell| cell.parse().unwrap())
            .collect();
        assert_eq!(row, vec![0.0, 1e-12]);
    }

    #[test]
    fn jsonl_sink_nulls_non_finite_values() {
        let mut sink = JsonlSink::new(Vec::new());
        feed(&mut sink, &[vec![1.5e-9, f64::NAN]]);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.trim(), "[1.5e-9, null]");
    }

    #[test]
    fn transient_blocks_expand_to_one_row_per_sample() {
        let mut sink = TableSink::new();
        let spec = JobSpec::new(1);
        ResultSink::<Vec<Vec<f64>>>::start(&mut sink, &spec).unwrap();
        let block = vec![vec![0.0, 1.0], vec![1e-9, 2.0]];
        sink.item(0, &block).unwrap();
        assert_eq!(sink.rows().len(), 2);
    }

    #[test]
    fn tee_and_option_forward_to_both_arms() {
        let mut sink = Tee(TableSink::new(), Some(TableSink::new()));
        feed(&mut sink, &[vec![7.0]]);
        assert_eq!(sink.0.rows().len(), 1);
        assert_eq!(sink.1.as_ref().unwrap().rows().len(), 1);
        let mut none: Option<TableSink> = None;
        feed(&mut none, &[vec![7.0]]);
        assert!(none.is_none());
    }

    #[test]
    fn progress_sink_reports_and_summarises() {
        let mut sink = ProgressSink::to_writer("deck/dc", Vec::new());
        let rows: Vec<Vec<f64>> = (0..3).map(|i| vec![i as f64]).collect();
        feed(&mut sink, &rows);
        let text = String::from_utf8(sink.out).unwrap();
        assert!(text.contains("deck/dc: 1/3 (33%)"), "{text}");
        assert!(
            text.contains("done — 3 items (3 computed, 0 restored)"),
            "{text}"
        );
    }
}
