//! Deterministic run traces: record a job's exact output bits, then
//! re-execute and pinpoint the first divergence.
//!
//! A trace is the replay contract of one job, persisted: the job geometry
//! (item count, seed, chunk layout, input-content fingerprint), free-form
//! provenance metadata (engine, columns, options), and — per chunk — a
//! content hash plus every item's payload in the raw-bits IEEE-754 codec
//! of [`crate::bits`]. Because the substrate emits items in strict index
//! order whatever the worker count, a trace recorded at `--jobs 1` and one
//! recorded at `--jobs 32` are byte-identical — and a later re-execution
//! on any machine either reproduces every bit or yields a [`Divergence`]
//! naming the first chunk, item, row and column that drifted.
//!
//! # File format (`se-trace v1`)
//!
//! ```text
//! se-trace v1 items=<n> seed=<s> chunk=<c> fp=<hex16>
//! meta <key> <value…>                 zero or more provenance lines
//! chunk <id> <len> <fnv64-hex>        then <len> item lines:
//! item <index> <payload>              payload = the Codec encoding
//! …
//! end <chunks> <items>
//! ```
//!
//! The format is append-safe: a chunk block is written and flushed as a
//! unit, in index order, and the `end` line is the completion marker — a
//! trace without it is refused as truncated rather than silently verified
//! against a prefix. The per-chunk hash ([`crate::content_fingerprint`]
//! over the chunk's item lines) distinguishes *trace corruption* (the file
//! no longer hashes to what the recorder wrote) from *execution
//! divergence* (the file is intact but a re-run computes different bits).

use crate::bits::{decode_f64, f64_bits_hex};
use crate::checkpoint::{content_fingerprint, Codec};
use crate::job::{JobSpec, Report};
use crate::sink::ResultSink;
use std::fmt;
use std::io::{self, Write};

/// The format tag every trace file opens with.
const MAGIC: &str = "se-trace v1";

/// Composes the header line of a trace with the given geometry.
fn header_line(spec: &JobSpec, fingerprint: u64) -> String {
    format!(
        "{MAGIC} items={} seed={} chunk={} fp={fingerprint:016x}",
        spec.items(),
        spec.seed(),
        spec.chunk_size()
    )
}

/// A [`ResultSink`] that records the stream into a trace.
///
/// Feed it to any substrate run (tee it with other sinks if the run also
/// exports CSV); the recorded trace is independent of worker count,
/// chunk-claim order and resume state because the sink sees items in
/// strict index order.
#[derive(Debug)]
pub struct TraceSink<W: Write> {
    out: W,
    fingerprint: u64,
    meta: Vec<(String, String)>,
    spec: Option<JobSpec>,
    /// Encoded `item` lines of the chunk currently being assembled.
    pending: Vec<String>,
    next_chunk: usize,
    items_written: usize,
}

impl<W: Write> TraceSink<W> {
    /// A trace recorder writing to `out`, stamped with the job's
    /// input-content fingerprint (see [`crate::content_fingerprint`]).
    pub fn new(out: W, fingerprint: u64) -> Self {
        TraceSink {
            out,
            fingerprint,
            meta: Vec::new(),
            spec: None,
            pending: Vec::new(),
            next_chunk: 0,
            items_written: 0,
        }
    }

    /// Attaches one provenance line (`meta <key> <value>`): engine name,
    /// column names, options — anything a divergence report should cite.
    /// Keys must be single tokens; values may contain spaces but not
    /// newlines.
    #[must_use]
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.push((key.into(), value.into()));
        self
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    /// Writes the pending chunk block: its hash line, then its item lines,
    /// then flushes — the append-safety unit.
    fn write_chunk(&mut self) -> io::Result<()> {
        let mut hashed = String::new();
        for line in &self.pending {
            hashed.push_str(line);
            hashed.push('\n');
        }
        let hash = content_fingerprint(&hashed);
        writeln!(
            self.out,
            "chunk {} {} {hash:016x}",
            self.next_chunk,
            self.pending.len()
        )?;
        self.out.write_all(hashed.as_bytes())?;
        self.out.flush()?;
        self.pending.clear();
        self.next_chunk += 1;
        Ok(())
    }
}

impl<T: Codec, W: Write> ResultSink<T> for TraceSink<W> {
    fn start(&mut self, spec: &JobSpec) -> io::Result<()> {
        self.spec = Some(*spec);
        writeln!(self.out, "{}", header_line(spec, self.fingerprint))?;
        for (key, value) in &self.meta {
            writeln!(self.out, "meta {key} {value}")?;
        }
        Ok(())
    }

    fn item(&mut self, index: usize, item: &T) -> io::Result<()> {
        let spec = self.spec.expect("start() always precedes item()");
        let mut line = format!("item {index} ");
        item.encode(&mut line);
        self.pending.push(line);
        self.items_written += 1;
        if self.pending.len() == spec.chunk_range(self.next_chunk).len() {
            self.write_chunk()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    fn finish(&mut self, _report: &Report) -> io::Result<()> {
        writeln!(self.out, "end {} {}", self.next_chunk, self.items_written)?;
        self.out.flush()
    }
}

/// One recorded chunk: its declared content hash and encoded item lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceChunk {
    /// The chunk id (chunks appear in increasing id order).
    pub id: usize,
    /// The recorder's FNV-1a hash over the chunk's item lines.
    pub hash: u64,
    /// The encoded `item <index> <payload>` lines, payload part only.
    pub lines: Vec<String>,
}

/// A parsed trace file: geometry, provenance and every recorded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTrace {
    /// Item count the trace covers.
    pub items: usize,
    /// The job seed every per-item seed derives from.
    pub seed: u64,
    /// The chunk size the trace was recorded under (re-verification forces
    /// the same chunk layout so chunk ids line up).
    pub chunk: usize,
    /// The input-content fingerprint stamped at record time.
    pub fingerprint: u64,
    /// Provenance lines, in file order.
    pub meta: Vec<(String, String)>,
    /// The recorded chunks, in id order.
    pub chunks: Vec<TraceChunk>,
}

impl JobTrace {
    /// Parses a complete trace. Truncated traces (no `end` marker, or an
    /// `end` marker that disagrees with the chunk/item counts), unknown
    /// versions and malformed lines are errors, not partial successes.
    ///
    /// # Errors
    ///
    /// A description of the first malformed construct.
    pub fn parse(text: &str) -> Result<JobTrace, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty trace file")?;
        let rest = header
            .strip_prefix(MAGIC)
            .ok_or_else(|| format!("not a `{MAGIC}` file: starts `{header}`"))?;
        let mut items = None;
        let mut seed = None;
        let mut chunk = None;
        let mut fingerprint = None;
        for field in rest.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed header field `{field}`"))?;
            match key {
                "items" => items = value.parse::<usize>().ok(),
                "seed" => seed = value.parse::<u64>().ok(),
                "chunk" => chunk = value.parse::<usize>().ok(),
                "fp" => fingerprint = u64::from_str_radix(value, 16).ok(),
                other => return Err(format!("unknown header field `{other}`")),
            }
        }
        let (Some(items), Some(seed), Some(chunk), Some(fingerprint)) =
            (items, seed, chunk, fingerprint)
        else {
            return Err(format!("incomplete header `{header}`"));
        };
        if chunk == 0 {
            return Err("chunk size 0 is invalid".into());
        }

        let mut meta = Vec::new();
        let mut chunks: Vec<TraceChunk> = Vec::new();
        let mut ended = false;
        let mut expected_items: usize = 0;
        while let Some((line_no, line)) = lines.next() {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("meta") => {
                    let key = parts
                        .next()
                        .ok_or_else(|| format!("line {}: meta line without key", line_no + 1))?;
                    let value = line.splitn(3, ' ').nth(2).unwrap_or_default().to_string();
                    meta.push((key.to_string(), value));
                }
                Some("chunk") => {
                    let mut parse = || -> Option<(usize, usize, u64)> {
                        let id = parts.next()?.parse().ok()?;
                        let len = parts.next()?.parse().ok()?;
                        let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
                        parts.next().is_none().then_some((id, len, hash))
                    };
                    let (id, len, hash) = parse()
                        .ok_or_else(|| format!("line {}: malformed chunk line", line_no + 1))?;
                    if id != chunks.len() {
                        return Err(format!(
                            "line {}: chunk {id} out of order (expected {})",
                            line_no + 1,
                            chunks.len()
                        ));
                    }
                    let mut chunk_lines = Vec::with_capacity(len);
                    for _ in 0..len {
                        let (item_no, item_line) = lines
                            .next()
                            .ok_or_else(|| format!("chunk {id}: truncated item block"))?;
                        let payload = parse_item_line(item_line, expected_items)
                            .map_err(|e| format!("line {}: {e}", item_no + 1))?;
                        chunk_lines.push(payload.to_string());
                        expected_items += 1;
                    }
                    chunks.push(TraceChunk {
                        id,
                        hash,
                        lines: chunk_lines,
                    });
                }
                Some("end") => {
                    let mut parse = || -> Option<(usize, usize)> {
                        let c = parts.next()?.parse().ok()?;
                        let i = parts.next()?.parse().ok()?;
                        parts.next().is_none().then_some((c, i))
                    };
                    let (end_chunks, end_items) = parse()
                        .ok_or_else(|| format!("line {}: malformed end line", line_no + 1))?;
                    if end_chunks != chunks.len() || end_items != expected_items {
                        return Err(format!(
                            "end marker declares {end_chunks} chunks / {end_items} items but \
                             the trace holds {} / {expected_items}",
                            chunks.len()
                        ));
                    }
                    ended = true;
                }
                Some(other) => {
                    return Err(format!("line {}: unknown record `{other}`", line_no + 1))
                }
                None => {} // blank line — tolerated
            }
            if ended {
                break;
            }
        }
        if !ended {
            return Err(format!(
                "trace is truncated: no `end` marker after {} chunks — the recording \
                 run did not complete",
                chunks.len()
            ));
        }
        if expected_items != items {
            return Err(format!(
                "trace holds {expected_items} items but the header declares {items}"
            ));
        }
        Ok(JobTrace {
            items,
            seed,
            chunk,
            fingerprint,
            meta,
            chunks,
        })
    }

    /// The job geometry a verifying re-execution must run under: same item
    /// count, same seed, same chunk layout (so chunk ids line up; results
    /// never depend on it).
    #[must_use]
    pub fn spec(&self) -> JobSpec {
        JobSpec::new(self.items)
            .with_seed(self.seed)
            .with_chunk(self.chunk)
    }

    /// The first meta value recorded under `key`, if any.
    #[must_use]
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The recorded payload line of global item `index`, if in range.
    #[must_use]
    pub fn payload(&self, index: usize) -> Option<&str> {
        if self.chunk == 0 {
            return None;
        }
        let chunk = self.chunks.get(index / self.chunk)?;
        chunk.lines.get(index % self.chunk).map(String::as_str)
    }

    /// Recomputes every chunk's content hash and compares it with the
    /// recorded one: detects bit rot / hand edits *of the trace file
    /// itself*, as opposed to a divergent re-execution. Returns the first
    /// corrupt chunk id, or `Ok` if the file hashes clean.
    ///
    /// # Errors
    ///
    /// The id of the first chunk whose recomputed hash mismatches.
    pub fn integrity_check(&self) -> Result<(), usize> {
        for (slot, chunk) in self.chunks.iter().enumerate() {
            let mut hashed = String::new();
            for (offset, payload) in chunk.lines.iter().enumerate() {
                use std::fmt::Write as _;
                let index = slot * self.chunk + offset;
                let _ = writeln!(hashed, "item {index} {payload}");
            }
            if content_fingerprint(&hashed) != chunk.hash {
                return Err(chunk.id);
            }
        }
        Ok(())
    }
}

/// Splits one `item <index> <payload>` line, checking the index against
/// the expected running position.
fn parse_item_line(line: &str, expected_index: usize) -> Result<&str, String> {
    let rest = line
        .strip_prefix("item ")
        .ok_or_else(|| format!("expected an item line, found `{line}`"))?;
    let (index_text, payload) = rest.split_once(' ').unwrap_or((rest, ""));
    let index: usize = index_text
        .parse()
        .map_err(|_| format!("malformed item index `{index_text}`"))?;
    if index != expected_index {
        return Err(format!(
            "item index {index} out of order (expected {expected_index})"
        ));
    }
    Ok(payload)
}

/// One side of a diverging value: present with its bit pattern, or missing
/// entirely (a row/column count mismatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceValue {
    /// The value exists; the payload is its exact bit pattern.
    Bits(u64),
    /// No value at this position (shorter row or fewer rows on this side).
    Missing,
}

impl fmt::Display for TraceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceValue::Bits(bits) => {
                let value = f64::from_bits(*bits);
                write!(f, "{} ({value:e})", f64_bits_hex(value))
            }
            TraceValue::Missing => write!(f, "<missing>"),
        }
    }
}

/// The first point where a re-execution (or a corrupted payload) differs
/// from the recorded trace, localized to the bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// The chunk holding the first diverging item.
    pub chunk: usize,
    /// The global index of the first diverging item.
    pub item: usize,
    /// The row within the item's block (0 for single-row items).
    pub row: usize,
    /// The value position within the row.
    pub column: usize,
    /// What the trace recorded at that position.
    pub recorded: TraceValue,
    /// What the re-execution computed at that position.
    pub computed: TraceValue,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at chunk {}, item {}, row {}, column {}: recorded {} vs \
             computed {}",
            self.chunk, self.item, self.row, self.column, self.recorded, self.computed
        )
    }
}

/// Parses an encoded payload into rows of bit-pattern tokens. Tokens that
/// fail to decode as hex bit patterns are kept as `Missing` (they can only
/// come from a corrupted trace; the position still localizes).
fn payload_bits(payload: &str) -> Vec<Vec<TraceValue>> {
    payload
        .split(';')
        .map(|row| {
            row.split_whitespace()
                .map(|token| match decode_f64(token) {
                    Some(value) => TraceValue::Bits(value.to_bits()),
                    None => TraceValue::Missing,
                })
                .collect()
        })
        .collect()
}

/// Compares two encoded payloads, returning the first differing position
/// as `(row, column, recorded, computed)`.
#[must_use]
pub fn first_payload_divergence(
    recorded: &str,
    computed: &str,
) -> Option<(usize, usize, TraceValue, TraceValue)> {
    if recorded == computed {
        return None;
    }
    let rec = payload_bits(recorded);
    let com = payload_bits(computed);
    for row in 0..rec.len().max(com.len()) {
        let empty: &[TraceValue] = &[];
        let r = rec.get(row).map_or(empty, Vec::as_slice);
        let c = com.get(row).map_or(empty, Vec::as_slice);
        for column in 0..r.len().max(c.len()) {
            let rv = r.get(column).copied().unwrap_or(TraceValue::Missing);
            let cv = c.get(column).copied().unwrap_or(TraceValue::Missing);
            if rv != cv {
                return Some((row, column, rv, cv));
            }
        }
    }
    // The strings differ but every decoded position matches — e.g. a
    // whitespace or leading-zero perturbation. Localize to the start.
    Some((0, 0, TraceValue::Missing, TraceValue::Missing))
}

/// A [`ResultSink`] that verifies a re-execution against a recorded trace,
/// capturing the first [`Divergence`] instead of failing the run.
///
/// Attach it to a re-execution of the traced job (same items, seed and
/// chunk size — use [`JobTrace::spec`]); after the run, [`VerifySink::divergence`]
/// is `None` exactly when every emitted bit matched the recording.
#[derive(Debug)]
pub struct VerifySink<'t> {
    trace: &'t JobTrace,
    divergence: Option<Divergence>,
    checked: usize,
}

impl<'t> VerifySink<'t> {
    /// A verifier against `trace`.
    #[must_use]
    pub fn new(trace: &'t JobTrace) -> Self {
        VerifySink {
            trace,
            divergence: None,
            checked: 0,
        }
    }

    /// The first divergence seen, if any.
    #[must_use]
    pub fn divergence(&self) -> Option<Divergence> {
        self.divergence
    }

    /// How many items were compared.
    #[must_use]
    pub fn checked(&self) -> usize {
        self.checked
    }

    fn record(
        &mut self,
        index: usize,
        row: usize,
        column: usize,
        rec: TraceValue,
        com: TraceValue,
    ) {
        if self.divergence.is_none() {
            self.divergence = Some(Divergence {
                chunk: index / self.trace.chunk.max(1),
                item: index,
                row,
                column,
                recorded: rec,
                computed: com,
            });
        }
    }
}

impl<T: Codec> ResultSink<T> for VerifySink<'_> {
    fn start(&mut self, spec: &JobSpec) -> io::Result<()> {
        if spec.items() != self.trace.items
            || spec.seed() != self.trace.seed
            || spec.chunk_size() != self.trace.chunk
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "verify geometry mismatch: run has items={} seed={} chunk={}, trace \
                     was recorded with items={} seed={} chunk={}",
                    spec.items(),
                    spec.seed(),
                    spec.chunk_size(),
                    self.trace.items,
                    self.trace.seed,
                    self.trace.chunk
                ),
            ));
        }
        Ok(())
    }

    fn item(&mut self, index: usize, item: &T) -> io::Result<()> {
        self.checked += 1;
        if self.divergence.is_some() {
            return Ok(()); // only the *first* divergence is reported
        }
        let mut computed = String::new();
        item.encode(&mut computed);
        match self.trace.payload(index) {
            Some(recorded) => {
                if let Some((row, column, rec, com)) = first_payload_divergence(recorded, &computed)
                {
                    self.record(index, row, column, rec, com);
                }
            }
            None => self.record(index, 0, 0, TraceValue::Missing, TraceValue::Missing),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, run_collect};

    fn toy_solve(index: usize, seed: u64) -> Result<Vec<f64>, io::Error> {
        Ok(vec![index as f64, f64::from_bits(seed)])
    }

    fn record_toy(spec: &JobSpec, fingerprint: u64) -> String {
        let mut sink = TraceSink::new(Vec::new(), fingerprint)
            .with_meta("engine", "toy")
            .with_meta("columns", "i,seed bits");
        run(spec, &mut sink, toy_solve).unwrap();
        String::from_utf8(sink.into_inner()).unwrap()
    }

    #[test]
    fn traces_are_identical_across_worker_counts() {
        let base = record_toy(
            &JobSpec::new(23).with_seed(7).with_chunk(4).serial(),
            0xfeed,
        );
        for workers in [1, 2, 8] {
            let spec = JobSpec::new(23)
                .with_seed(7)
                .with_chunk(4)
                .with_workers(workers);
            assert_eq!(record_toy(&spec, 0xfeed), base, "workers={workers}");
        }
    }

    #[test]
    fn recorded_traces_parse_back_and_hash_clean() {
        let spec = JobSpec::new(10).with_seed(3).with_chunk(4);
        let text = record_toy(&spec, 0xabcd);
        let trace = JobTrace::parse(&text).unwrap();
        assert_eq!(trace.items, 10);
        assert_eq!(trace.seed, 3);
        assert_eq!(trace.chunk, 4);
        assert_eq!(trace.fingerprint, 0xabcd);
        assert_eq!(trace.chunks.len(), 3);
        assert_eq!(trace.meta_value("engine"), Some("toy"));
        assert_eq!(trace.meta_value("columns"), Some("i,seed bits"));
        assert_eq!(trace.spec(), spec);
        trace.integrity_check().unwrap();
        // Payload lookup crosses chunk boundaries correctly.
        let item7 = trace.payload(7).unwrap();
        let mut expected = String::new();
        toy_solve(7, spec.item_seed(7))
            .unwrap()
            .encode(&mut expected);
        assert_eq!(item7, expected);
    }

    #[test]
    fn clean_reexecution_verifies_without_divergence() {
        let spec = JobSpec::new(17).with_seed(11).with_chunk(3);
        let trace = JobTrace::parse(&record_toy(&spec, 0)).unwrap();
        let mut sink = VerifySink::new(&trace);
        run(&trace.spec().with_workers(4), &mut sink, toy_solve).unwrap();
        assert_eq!(sink.divergence(), None);
        assert_eq!(sink.checked(), 17);
    }

    #[test]
    fn a_diverging_item_is_localized() {
        let spec = JobSpec::new(12).with_seed(1).with_chunk(5);
        let trace = JobTrace::parse(&record_toy(&spec, 0)).unwrap();
        let mut sink = VerifySink::new(&trace);
        // Re-execute with item 7's second value perturbed by one ulp.
        run(&trace.spec(), &mut sink, |i, s| {
            let mut row = toy_solve(i, s).unwrap();
            if i == 7 {
                row[1] = f64::from_bits(row[1].to_bits() ^ 1);
            }
            Ok::<_, io::Error>(row)
        })
        .unwrap();
        let d = sink.divergence().expect("must diverge");
        assert_eq!((d.chunk, d.item, d.row, d.column), (1, 7, 0, 1));
        assert_ne!(d.recorded, d.computed);
        let text = d.to_string();
        assert!(text.contains("chunk 1"), "{text}");
        assert!(text.contains("item 7"), "{text}");
    }

    #[test]
    fn geometry_mismatches_are_refused_at_start() {
        let spec = JobSpec::new(8).with_seed(2).with_chunk(2);
        let trace = JobTrace::parse(&record_toy(&spec, 0)).unwrap();
        let mut sink = VerifySink::new(&trace);
        let err = run(
            &JobSpec::new(8).with_seed(3).with_chunk(2),
            &mut sink,
            toy_solve,
        )
        .unwrap_err();
        assert!(err.to_string().contains("geometry mismatch"), "{err}");
    }

    #[test]
    fn truncated_and_malformed_traces_are_refused() {
        let spec = JobSpec::new(6).with_seed(1).with_chunk(3);
        let text = record_toy(&spec, 0);
        // Drop the end marker: truncated.
        let truncated: String = text
            .lines()
            .filter(|l| !l.starts_with("end"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = JobTrace::parse(&truncated).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // Wrong magic.
        assert!(JobTrace::parse("se-trace v9 items=0").is_err());
        // Item count disagreeing with the header.
        let wrong_header = text.replacen("items=6", "items=7", 1);
        assert!(JobTrace::parse(&wrong_header).is_err());
    }

    #[test]
    fn payload_corruption_fails_the_integrity_check_at_the_right_chunk() {
        let spec = JobSpec::new(9).with_seed(4).with_chunk(3);
        let text = record_toy(&spec, 0);
        // Flip one hex digit in the payload of item 5 (chunk 1).
        let corrupted: String = text
            .lines()
            .map(|line| {
                if line.starts_with("item 5 ") {
                    let flipped = line.strip_suffix('f').map(|s| format!("{s}e"));
                    flipped.unwrap_or_else(|| {
                        let (head, tail) = line.split_at(line.len() - 1);
                        let last = if tail == "0" { "1" } else { "0" };
                        format!("{head}{last}")
                    })
                } else {
                    line.to_string()
                }
            })
            .map(|l| format!("{l}\n"))
            .collect();
        let trace = JobTrace::parse(&corrupted).unwrap();
        assert_eq!(trace.integrity_check(), Err(1));
    }

    #[test]
    fn divergence_positions_cover_rows_columns_and_missing_values() {
        // Same row, later column.
        let (row, col, _, _) = first_payload_divergence(
            "0000000000000000 3ff0000000000000;4000000000000000",
            "0000000000000000 3ff0000000000001;4000000000000000",
        )
        .unwrap();
        assert_eq!((row, col), (0, 1));
        // Second row.
        let (row, col, _, _) = first_payload_divergence(
            "0000000000000000;4000000000000000",
            "0000000000000000;4000000000000001",
        )
        .unwrap();
        assert_eq!((row, col), (1, 0));
        // A missing trailing value.
        let (row, col, rec, com) =
            first_payload_divergence("0000000000000000 3ff0000000000000", "0000000000000000")
                .unwrap();
        assert_eq!((row, col), (0, 1));
        assert!(matches!(rec, TraceValue::Bits(_)));
        assert_eq!(com, TraceValue::Missing);
        // Identical payloads never diverge.
        assert_eq!(first_payload_divergence("00;00", "00;00"), None);
    }

    #[test]
    fn block_payloads_round_trip_through_the_trace() {
        // Vec<Vec<f64>> items (transient traces) also record and verify.
        let solve =
            |i: usize, s: u64| Ok::<_, io::Error>(vec![vec![i as f64], vec![s as f64, -0.0]]);
        let spec = JobSpec::new(5).with_seed(9).with_chunk(2);
        let mut sink = TraceSink::new(Vec::new(), 1);
        run(&spec, &mut sink, solve).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let trace = JobTrace::parse(&text).unwrap();
        trace.integrity_check().unwrap();
        let mut verify = VerifySink::new(&trace);
        run(&trace.spec(), &mut verify, solve).unwrap();
        assert_eq!(verify.divergence(), None);
        // And the recorded payloads decode to the original blocks.
        let items = run_collect(&spec, &mut (), solve).unwrap();
        let decoded = Vec::<Vec<f64>>::decode(trace.payload(3).unwrap()).unwrap();
        assert_eq!(decoded.len(), items[3].len());
        assert_eq!(decoded[1][1].to_bits(), (-0.0_f64).to_bits());
    }
}
