//! The boundary-relaxation co-simulation engine.

use crate::error::HybridError;
use se_engine::{ObservableId, StationaryEngine};

/// Junction currents and per-boundary-node drawn currents of one
/// single-electron solve.
type IslandCurrents = (HashMap<String, f64>, HashMap<String, f64>);
use se_montecarlo::builder::tunnel_system_with_boundary_voltages;
use se_montecarlo::{MasterEquation, MonteCarloError, MonteCarloSimulator, SimulationOptions};
use se_netlist::{Element, Netlist, Node};
use se_spice::{Circuit, NewtonOptions, OperatingPoint};
use std::collections::HashMap;

/// Which engine solves the single-electron domain at each relaxation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IslandEngine {
    /// Exact master-equation solution (deterministic, the default).
    Master {
        /// Per-island charge window half-width.
        window: i64,
    },
    /// Kinetic Monte-Carlo sampling (stochastic; use for large island
    /// counts where state enumeration is impossible).
    MonteCarlo {
        /// Measurement events per relaxation step.
        events: usize,
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

/// Options of the hybrid co-simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridOptions {
    /// Temperature of the single-electron domain, kelvin.
    pub temperature: f64,
    /// Maximum number of relaxation iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on boundary voltages, volt.
    pub tolerance: f64,
    /// Under-relaxation factor in `(0, 1]` applied to boundary updates.
    pub relaxation: f64,
    /// Engine for the single-electron domain.
    pub engine: IslandEngine,
    /// Newton options for the conventional domain.
    pub newton: NewtonOptions,
}

impl HybridOptions {
    /// Creates default options at the given temperature: master-equation
    /// islands, 100 iterations, 1 µV tolerance, 0.7 under-relaxation.
    #[must_use]
    pub fn new(temperature: f64) -> Self {
        HybridOptions {
            temperature,
            max_iterations: 100,
            tolerance: 1e-6,
            relaxation: 0.7,
            engine: IslandEngine::Master { window: 3 },
            newton: NewtonOptions::default(),
        }
    }

    /// Switches the single-electron domain to the kinetic Monte-Carlo
    /// engine.
    #[must_use]
    pub fn with_monte_carlo(mut self, events: usize, seed: u64) -> Self {
        self.engine = IslandEngine::MonteCarlo { events, seed };
        self
    }

    /// Sets the relaxation factor.
    #[must_use]
    pub fn with_relaxation(mut self, relaxation: f64) -> Self {
        self.relaxation = relaxation;
        self
    }
}

/// Result of a hybrid co-simulation.
#[derive(Debug, Clone)]
pub struct HybridSolution {
    converged: bool,
    iterations: usize,
    residual: f64,
    boundary_voltages: HashMap<String, f64>,
    junction_currents: HashMap<String, f64>,
    operating_point: OperatingPoint,
    island_count: usize,
}

impl HybridSolution {
    /// Returns `true` if the boundary relaxation converged.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of relaxation iterations performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Largest boundary-voltage change of the final iteration, volt.
    #[must_use]
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Number of single-electron islands in the partition.
    #[must_use]
    pub fn island_count(&self) -> usize {
        self.island_count
    }

    /// Final voltage of a boundary node (volt).
    #[must_use]
    pub fn boundary_voltage(&self, node: &str) -> Option<f64> {
        self.boundary_voltages.get(node).copied().or_else(|| {
            self.boundary_voltages
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(node))
                .map(|(_, &v)| v)
        })
    }

    /// Final voltage of any node of the conventional domain (volt).
    #[must_use]
    pub fn node_voltage(&self, node: &str) -> Option<f64> {
        self.operating_point
            .voltage(node)
            .or_else(|| self.boundary_voltage(node))
    }

    /// Stationary current through a single-electron junction (ampere, in the
    /// junction's `a → b` reference direction).
    #[must_use]
    pub fn junction_current(&self, junction: &str) -> Option<f64> {
        self.junction_currents.get(junction).copied()
    }

    /// The final operating point of the conventional domain.
    #[must_use]
    pub fn operating_point(&self) -> &OperatingPoint {
        &self.operating_point
    }
}

/// The hybrid co-simulator.
#[derive(Debug, Clone)]
pub struct HybridSimulator {
    netlist: Netlist,
    options: HybridOptions,
    /// Names of the boundary nodes (non-ground nodes the islands couple to).
    boundary_nodes: Vec<String>,
    /// Norton conductance of the single-electron domain per boundary node.
    boundary_conductance: HashMap<String, f64>,
    /// Names of the elements belonging to the single-electron domain.
    island_elements: Vec<String>,
    island_count: usize,
}

impl HybridSimulator {
    /// Partitions the netlist and prepares the co-simulation.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::Netlist`] for an invalid netlist and
    /// [`HybridError::InvalidArgument`] for invalid options.
    pub fn new(netlist: &Netlist, options: HybridOptions) -> Result<Self, HybridError> {
        if options.temperature < 0.0 || !options.temperature.is_finite() {
            return Err(HybridError::InvalidArgument(format!(
                "temperature must be non-negative and finite, got {}",
                options.temperature
            )));
        }
        if !(options.relaxation > 0.0 && options.relaxation <= 1.0) {
            return Err(HybridError::InvalidArgument(format!(
                "relaxation factor must lie in (0, 1], got {}",
                options.relaxation
            )));
        }
        if options.max_iterations == 0 {
            return Err(HybridError::InvalidArgument(
                "at least one relaxation iteration is required".into(),
            ));
        }
        netlist.validate()?;
        let split = se_netlist::partition::classify_elements(netlist);
        let mut boundary_nodes = Vec::new();
        for island in &split.islands {
            for &node in &island.boundary {
                if node.is_ground() {
                    continue;
                }
                let name = netlist.node_name(node).unwrap_or("boundary").to_string();
                if !boundary_nodes.contains(&name) {
                    boundary_nodes.push(name);
                }
            }
        }
        let island_count = split.islands.iter().map(|i| i.nodes.len()).sum();

        // Norton conductance of the single-electron domain as seen from each
        // boundary node: the parallel combination of the tunnel resistances
        // attached to it. This over-estimates the true differential
        // conductance (which vanishes in blockade), which is exactly what
        // makes the relaxation a contraction even for high-impedance loads.
        let mut boundary_conductance: HashMap<String, f64> =
            boundary_nodes.iter().map(|n| (n.clone(), 0.0)).collect();
        for element in netlist.elements() {
            if !split.monte_carlo.iter().any(|n| n == element.name()) {
                continue;
            }
            if let se_netlist::ElementKind::TunnelJunction { resistance, .. } = element.kind() {
                for &node in element.nodes() {
                    if let Some(name) = netlist.node_name(node) {
                        if let Some(g) = boundary_conductance.get_mut(name) {
                            *g += 1.0 / resistance;
                        }
                    }
                }
            }
        }

        Ok(HybridSimulator {
            netlist: netlist.clone(),
            options,
            boundary_nodes,
            boundary_conductance,
            island_elements: split.monte_carlo,
            island_count,
        })
    }

    /// The boundary node names discovered by the partition.
    #[must_use]
    pub fn boundary_nodes(&self) -> &[String] {
        &self.boundary_nodes
    }

    /// Number of islands in the single-electron domain.
    #[must_use]
    pub fn island_count(&self) -> usize {
        self.island_count
    }

    /// Builds the conventional-domain netlist with the single-electron
    /// domain replaced by its Norton equivalent at each boundary node: a
    /// conductance (from `conductances`) plus a current source whose value
    /// makes the Norton model reproduce the current the islands actually
    /// drew at the present boundary voltages.
    fn spice_netlist(
        &self,
        injections: &HashMap<String, f64>,
        conductances: &HashMap<String, f64>,
    ) -> Result<Netlist, HybridError> {
        let mut sub = Netlist::new(format!("{} (conventional domain)", self.netlist.title()));
        for element in self.netlist.elements() {
            if self.island_elements.iter().any(|n| n == element.name()) {
                continue;
            }
            // Re-intern the nodes by name so handles stay consistent.
            let nodes: Vec<Node> = element
                .nodes()
                .iter()
                .map(|&n| {
                    if n.is_ground() {
                        Node::GROUND
                    } else {
                        sub.node(self.netlist.node_name(n).unwrap_or("n"))
                    }
                })
                .collect();
            let rebuilt = Element::new(element.name(), nodes, element.kind().clone())?;
            sub.add(rebuilt)?;
        }
        for node_name in &self.boundary_nodes {
            let node = sub.node(node_name);
            let current = injections.get(node_name).copied().unwrap_or(0.0);
            sub.add(Element::current_source(
                format!("IINJ_{node_name}"),
                node,
                Node::GROUND,
                current,
            ))?;
            let g = conductances.get(node_name).copied().unwrap_or(0.0);
            if g > 0.0 {
                sub.add(Element::resistor(
                    format!("RNJ_{node_name}"),
                    node,
                    Node::GROUND,
                    1.0 / g,
                ))?;
            }
        }
        Ok(sub)
    }

    /// Builds the configured detailed engine over `system` behind the
    /// unified [`StationaryEngine`] face, together with the seed its
    /// stationary solves should use. The returned engine solves all
    /// junction currents of one boundary iteration in a single stationary
    /// solve; stochastic engines re-sample the same stream each iteration
    /// (exactly as the pre-trait dispatch did), deterministic engines
    /// ignore the seed.
    #[allow(clippy::type_complexity)]
    fn island_engine(
        &self,
        system: se_orthodox::TunnelSystem,
    ) -> Result<(Box<dyn StationaryEngine<Error = MonteCarloError>>, u64), HybridError> {
        Ok(match self.options.engine {
            IslandEngine::Master { window } => (
                Box::new(
                    MasterEquation::new(system, self.options.temperature)?.with_window(window)?,
                ),
                0,
            ),
            IslandEngine::MonteCarlo { events, seed } => (
                Box::new(MonteCarloSimulator::new(
                    system,
                    SimulationOptions::new(self.options.temperature)
                        .with_seed(seed)
                        .with_events_per_solve(events),
                )?),
                seed,
            ),
        })
    }

    /// Solves the single-electron domain at the given boundary voltages and
    /// returns `(junction currents, current drawn from each boundary node)`.
    fn solve_islands(
        &self,
        boundary_voltages: &HashMap<String, f64>,
    ) -> Result<IslandCurrents, HybridError> {
        let system = tunnel_system_with_boundary_voltages(&self.netlist, boundary_voltages)?;
        let (engine, seed) = self.island_engine(system.clone())?;
        // One stationary solve per relaxation step, reading every junction.
        let observables: Vec<ObservableId> =
            (0..system.junctions().len()).map(ObservableId).collect();
        let currents = engine.stationary_currents(&[], &observables, seed)?;
        let junction_currents: HashMap<String, f64> = system
            .junctions()
            .iter()
            .zip(&currents)
            .map(|(junction, &current)| (junction.name.clone(), current))
            .collect();

        // Current drawn out of each boundary node: sum of junction currents
        // oriented away from that node.
        let mut drawn: HashMap<String, f64> = self
            .boundary_nodes
            .iter()
            .map(|n| (n.clone(), 0.0))
            .collect();
        for junction in system.junctions() {
            let current = junction_currents
                .get(&junction.name)
                .copied()
                .unwrap_or(0.0);
            for (endpoint, sign) in [(junction.a, 1.0), (junction.b, -1.0)] {
                if let se_orthodox::Endpoint::External(k) = endpoint {
                    let name = system.external_name(k);
                    if let Some(entry) = drawn.get_mut(name) {
                        // Current in the a→b direction leaves the `a`-side
                        // node and enters the `b`-side node.
                        *entry += sign * current;
                    }
                }
            }
        }
        Ok((junction_currents, drawn))
    }

    /// Runs the relaxation to convergence.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::NoConvergence`] if the boundary voltages do
    /// not settle within the iteration budget, or propagates domain errors.
    pub fn solve(&self) -> Result<HybridSolution, HybridError> {
        // Pure conventional circuit: nothing to relax.
        if self.island_count == 0 {
            let circuit = Circuit::with_temperature(&self.netlist, self.options.temperature)?;
            let op = circuit.dc_operating_point_with(&self.options.newton)?;
            return Ok(HybridSolution {
                converged: true,
                iterations: 0,
                residual: 0.0,
                boundary_voltages: HashMap::new(),
                junction_currents: HashMap::new(),
                operating_point: op,
                island_count: 0,
            });
        }

        // Initial conventional solve: zero injections, static Norton
        // conductances (the parallel tunnel resistances).
        let zero_injections: HashMap<String, f64> = self
            .boundary_nodes
            .iter()
            .map(|n| (n.clone(), 0.0))
            .collect();
        let spice_netlist = self.spice_netlist(&zero_injections, &self.boundary_conductance)?;
        let circuit = Circuit::with_temperature(&spice_netlist, self.options.temperature)?;
        let mut op = circuit.dc_operating_point_with(&self.options.newton)?;
        let mut boundary: HashMap<String, f64> = self
            .boundary_nodes
            .iter()
            .map(|n| (n.clone(), op.voltage(n).unwrap_or(0.0)))
            .collect();

        let mut residual = f64::INFINITY;
        for iteration in 1..=self.options.max_iterations {
            let (junction_currents, drawn) = self.solve_islands(&boundary)?;

            // Newton-like coupling: estimate the differential conductance of
            // the single-electron domain at every junction-connected
            // boundary node by a one-sided finite difference, so the Norton
            // equivalent tracks the true load line and the relaxation
            // converges in a handful of iterations even for megaohm loads.
            let mut conductances: HashMap<String, f64> = HashMap::new();
            for name in &self.boundary_nodes {
                let g_max = self.boundary_conductance.get(name).copied().unwrap_or(0.0);
                if g_max <= 0.0 {
                    conductances.insert(name.clone(), 0.0);
                    continue;
                }
                let dv = 1e-5_f64.max(1e-3 * boundary[name].abs());
                let mut perturbed = boundary.clone();
                perturbed.insert(name.clone(), boundary[name] + dv);
                let (_, drawn_perturbed) = self.solve_islands(&perturbed)?;
                let g_est = (drawn_perturbed[name] - drawn[name]) / dv;
                conductances.insert(name.clone(), g_est.clamp(0.0, g_max));
            }

            // Norton correction: the injected current source carries the
            // difference between the true drawn current and what the Norton
            // conductance already accounts for at the present boundary
            // voltage.
            let corrected: HashMap<String, f64> = drawn
                .iter()
                .map(|(name, &i_drawn)| {
                    let g = conductances.get(name).copied().unwrap_or(0.0);
                    (name.clone(), i_drawn - g * boundary[name])
                })
                .collect();

            let spice_netlist = self.spice_netlist(&corrected, &conductances)?;
            let circuit = Circuit::with_temperature(&spice_netlist, self.options.temperature)?;
            op = circuit.dc_operating_point_with(&self.options.newton)?;

            residual = 0.0;
            for name in &self.boundary_nodes {
                let old = boundary[name];
                let target = op.voltage(name).unwrap_or(0.0);
                let new = old + self.options.relaxation * (target - old);
                residual = residual.max((new - old).abs());
                boundary.insert(name.clone(), new);
            }
            if residual < self.options.tolerance {
                return Ok(HybridSolution {
                    converged: true,
                    iterations: iteration,
                    residual,
                    boundary_voltages: boundary,
                    junction_currents,
                    operating_point: op,
                    island_count: self.island_count,
                });
            }
        }
        Err(HybridError::NoConvergence {
            iterations: self.options.max_iterations,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_deck;
    use se_units::constants::E;

    /// SET fed through a 10 MΩ load from a 5 mV supply, gate at the
    /// conductance peak.
    fn set_with_load_deck(vg: f64) -> String {
        format!(
            "hybrid set load\nVDD vdd 0 5m\nVG gate 0 {vg}\nRL vdd drain 10meg\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n"
        )
    }

    #[test]
    fn options_are_validated() {
        let netlist = parse_deck(&set_with_load_deck(0.0)).unwrap();
        assert!(HybridSimulator::new(&netlist, HybridOptions::new(-1.0)).is_err());
        assert!(
            HybridSimulator::new(&netlist, HybridOptions::new(1.0).with_relaxation(0.0)).is_err()
        );
        let mut opts = HybridOptions::new(1.0);
        opts.max_iterations = 0;
        assert!(HybridSimulator::new(&netlist, opts).is_err());
    }

    #[test]
    fn partition_finds_boundary_and_islands() {
        let netlist = parse_deck(&set_with_load_deck(0.08)).unwrap();
        let sim = HybridSimulator::new(&netlist, HybridOptions::new(1.0)).unwrap();
        assert_eq!(sim.island_count(), 1);
        let mut boundary = sim.boundary_nodes().to_vec();
        boundary.sort();
        assert_eq!(boundary, vec!["drain".to_string(), "gate".to_string()]);
    }

    #[test]
    fn set_with_load_resistor_is_self_consistent() {
        let vg = E / (2.0 * 1e-18); // conductance peak of Cg = 1 aF
        let netlist = parse_deck(&set_with_load_deck(vg)).unwrap();
        let sim = HybridSimulator::new(&netlist, HybridOptions::new(1.0)).unwrap();
        let solution = sim.solve().unwrap();
        assert!(solution.converged());
        assert!(solution.iterations() >= 1);

        let v_drain = solution.boundary_voltage("drain").unwrap();
        assert!(v_drain > 0.0 && v_drain < 5e-3, "drain voltage {v_drain}");

        // Self-consistency: the load-resistor current equals the SET current
        // computed by the exact single-SET reference at the converged bias.
        let i_load = (5e-3 - v_drain) / 10e6;
        let set =
            se_orthodox::set::SingleElectronTransistor::new(1e-18, 0.5e-18, 0.5e-18, 100e3, 100e3)
                .unwrap();
        let i_set = set.current(v_drain, vg, 0.0, 1.0).unwrap();
        assert!(
            (i_load - i_set).abs() < 0.05 * i_load.abs().max(1e-15),
            "load current {i_load} vs SET current {i_set}"
        );
        // And the reported junction current matches as well.
        let i_junction = solution.junction_current("J1").unwrap();
        assert!((i_junction - i_load).abs() < 0.05 * i_load.abs());
    }

    #[test]
    fn blockaded_set_leaves_drain_near_supply() {
        // Gate at the blockade point: the SET draws almost no current, so
        // the drain floats up to the 5 mV supply.
        let netlist = parse_deck(&set_with_load_deck(0.0)).unwrap();
        let sim = HybridSimulator::new(&netlist, HybridOptions::new(1.0)).unwrap();
        let solution = sim.solve().unwrap();
        assert!(solution.converged());
        let v_drain = solution.boundary_voltage("drain").unwrap();
        assert!(
            (v_drain - 5e-3).abs() < 0.1e-3,
            "blockaded drain should stay near the supply, got {v_drain}"
        );
    }

    #[test]
    fn pure_conventional_circuit_falls_back_to_spice() {
        let netlist = parse_deck("divider\nV1 in 0 1\nR1 in out 1k\nR2 out 0 1k\n").unwrap();
        let sim = HybridSimulator::new(&netlist, HybridOptions::new(1.0)).unwrap();
        let solution = sim.solve().unwrap();
        assert!(solution.converged());
        assert_eq!(solution.iterations(), 0);
        assert_eq!(solution.island_count(), 0);
        assert!((solution.node_voltage("out").unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn monte_carlo_engine_agrees_with_master_engine() {
        let vg = E / (2.0 * 1e-18);
        let netlist = parse_deck(&set_with_load_deck(vg)).unwrap();
        let master = HybridSimulator::new(&netlist, HybridOptions::new(1.0))
            .unwrap()
            .solve()
            .unwrap();
        let kmc_options = HybridOptions::new(1.0).with_monte_carlo(30_000, 42);
        // Monte-Carlo noise on the boundary needs a looser tolerance.
        let kmc_options = HybridOptions {
            tolerance: 2e-5,
            ..kmc_options
        };
        let kmc = HybridSimulator::new(&netlist, kmc_options)
            .unwrap()
            .solve()
            .unwrap();
        let vm = master.boundary_voltage("drain").unwrap();
        let vk = kmc.boundary_voltage("drain").unwrap();
        assert!(
            (vm - vk).abs() < 0.15 * vm.abs().max(1e-4),
            "master {vm} vs kmc {vk}"
        );
    }

    #[test]
    fn mosfet_loaded_set_converges() {
        // The Inokawa/Uchida-style configuration: an NMOS current source in
        // series with a SET island stack.
        let vg = E / (2.0 * 1e-18);
        let deck = format!(
            "set-mos\nVDD vdd 0 1.8\nVB bias 0 0.55\nVG gate 0 {vg}\nM1 vdd bias mid NMOS\nRM mid drain 100k\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n"
        );
        let netlist = parse_deck(&deck).unwrap();
        let sim = HybridSimulator::new(&netlist, HybridOptions::new(4.2)).unwrap();
        let solution = sim.solve().unwrap();
        assert!(solution.converged());
        // The SET can only sink a few nanoamperes, so the MOSFET source
        // follower output is pulled down close to the SET's compliance.
        let v_drain = solution.boundary_voltage("drain").unwrap();
        assert!((0.0..1.8).contains(&v_drain));
    }
}
