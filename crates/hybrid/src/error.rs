//! Error type for the co-simulator.

use se_montecarlo::MonteCarloError;
use se_netlist::NetlistError;
use se_spice::SpiceError;
use std::error::Error;
use std::fmt;

/// Errors produced by the hybrid co-simulator.
#[derive(Debug)]
pub enum HybridError {
    /// The netlist could not be used (parse/validation problems).
    Netlist(NetlistError),
    /// The single-electron half failed.
    MonteCarlo(MonteCarloError),
    /// The conventional half failed.
    Spice(SpiceError),
    /// The boundary relaxation did not converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Largest boundary-voltage change in the last iteration, in volt.
        residual: f64,
    },
    /// Invalid options or arguments.
    InvalidArgument(String),
}

impl fmt::Display for HybridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HybridError::Netlist(e) => write!(f, "netlist error: {e}"),
            HybridError::MonteCarlo(e) => write!(f, "single-electron domain error: {e}"),
            HybridError::Spice(e) => write!(f, "conventional domain error: {e}"),
            HybridError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "boundary relaxation did not converge after {iterations} iterations (residual {residual:.3e} V)"
            ),
            HybridError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for HybridError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HybridError::Netlist(e) => Some(e),
            HybridError::MonteCarlo(e) => Some(e),
            HybridError::Spice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for HybridError {
    fn from(e: NetlistError) -> Self {
        HybridError::Netlist(e)
    }
}

impl From<MonteCarloError> for HybridError {
    fn from(e: MonteCarloError) -> Self {
        HybridError::MonteCarlo(e)
    }
}

impl From<SpiceError> for HybridError {
    fn from(e: SpiceError) -> Self {
        HybridError::Spice(e)
    }
}

impl From<se_engine::GridError> for HybridError {
    fn from(e: se_engine::GridError) -> Self {
        HybridError::InvalidArgument(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = HybridError::NoConvergence {
            iterations: 10,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("10 iterations"));
        let e = HybridError::InvalidArgument("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: HybridError = NetlistError::Empty.into();
        assert!(Error::source(&e).is_some());
        let e: HybridError = MonteCarloError::NoIslands.into();
        assert!(Error::source(&e).is_some());
        let e: HybridError = SpiceError::InvalidArgument("x".into()).into();
        assert!(Error::source(&e).is_some());
    }
}
