//! Co-simulation of single-electron islands (Monte-Carlo / master-equation
//! domain) with conventional devices (SPICE domain).
//!
//! Section 4 of the paper argues that neither simulator family is enough on
//! its own: SPICE-with-SET-models scales to large circuits but misses the
//! single-electron physics, while SIMON-class simulators capture the physics
//! but "are limited in terms of circuit size and circuit element types", and
//! concludes that "a combination of both simulator types is desirable. It
//! allows detailed analysis of small circuit parts as accurately as we are
//! able today, as well as the simulation of large designs with reasonable
//! accuracy and speed." This crate is that combination.
//!
//! [`HybridSimulator`] partitions one netlist into
//!
//! * the **single-electron domain**: islands and the capacitive elements
//!   touching them, solved exactly with the master-equation engine of
//!   `se-montecarlo`;
//! * the **conventional domain**: everything else (sources, resistors,
//!   MOSFETs, diodes, compact SET models), solved by the `se-spice` Newton
//!   engine;
//!
//! and couples the two by Gauss–Seidel relaxation on the boundary nodes: the
//! SPICE half supplies boundary voltages, the single-electron half returns
//! the stationary currents its junctions draw from those nodes, which are
//! injected back into the SPICE half as current sources, until the boundary
//! voltages stop moving.
//!
//! # Example
//!
//! ```
//! use se_hybrid::{HybridError, HybridOptions, HybridSimulator};
//!
//! # fn main() -> Result<(), se_hybrid::HybridError> {
//! // A SET whose drain is fed from a 5 mV supply through a 10 MΩ resistor:
//! // the resistor belongs to the SPICE domain, the SET island to the
//! // Monte-Carlo domain, and node `drain` is the boundary.
//! let deck = "hybrid set load\n\
//!             VDD vdd 0 5m\n\
//!             VG gate 0 0.08\n\
//!             RL vdd drain 10meg\n\
//!             J1 drain island C=0.5a R=100k\n\
//!             J2 island 0 C=0.5a R=100k\n\
//!             CG gate island 1a\n";
//! let netlist = se_netlist::parse_deck(deck).map_err(HybridError::from)?;
//! let solution = HybridSimulator::new(&netlist, HybridOptions::new(1.0))?.solve()?;
//! assert!(solution.converged());
//! let v_drain = solution.boundary_voltage("drain").expect("boundary node");
//! assert!(v_drain > 0.0 && v_drain < 5e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cosim;
pub mod error;
pub mod stationary;
pub mod transient;

pub use cosim::{HybridOptions, HybridSimulator, HybridSolution, IslandEngine};
pub use error::HybridError;
pub use stationary::HybridStationaryEngine;
pub use transient::HybridTransientEngine;
