//! The hybrid co-simulator as a [`StationaryEngine`]: DC sweeps and
//! stability maps of mixed SET/conventional circuits through the unified
//! parallel sweep layer.
//!
//! Controls are the netlist's voltage sources (swept by name, as in a
//! `.dc` statement); observables are its tunnel junctions. Every
//! stationary solve rebuilds the netlist with the control values applied
//! and runs the full boundary relaxation of [`HybridSimulator`] to
//! convergence, so bias points are independent and fan out across threads
//! through [`se_engine::SweepRunner`] with bit-identical serial/parallel
//! results.

use crate::cosim::{HybridOptions, HybridSimulator, IslandEngine};
use crate::error::HybridError;
use se_engine::{ControlId, ObservableId, StationaryEngine};
use se_netlist::{ElementKind, Netlist};

/// The hybrid co-simulator as a [`StationaryEngine`] — the DC sibling of
/// [`crate::HybridTransientEngine`].
///
/// When the island domain runs the kinetic Monte-Carlo engine, each solve
/// replaces the configured seed with the per-point seed handed in by the
/// sweep runner, keeping hybrid KMC sweeps reproducible and
/// parallel-safe; the master-equation engine is deterministic and ignores
/// the seed.
#[derive(Debug, Clone)]
pub struct HybridStationaryEngine {
    netlist: Netlist,
    options: HybridOptions,
    /// Voltage-source names (lower-cased), indexed by control handle.
    sources: Vec<String>,
    /// Tunnel-junction names, indexed by observable handle.
    junctions: Vec<String>,
}

impl HybridStationaryEngine {
    /// Prepares the engine: validates the netlist and options by building a
    /// prototype [`HybridSimulator`], and indexes the sweepable sources and
    /// observable junctions.
    ///
    /// # Errors
    ///
    /// Propagates [`HybridSimulator::new`] validation errors.
    pub fn new(netlist: &Netlist, options: HybridOptions) -> Result<Self, HybridError> {
        // Surface bad options / bad netlists at construction, not per point.
        HybridSimulator::new(netlist, options)?;
        let sources = netlist
            .elements()
            .iter()
            .filter(|e| e.is_voltage_source())
            .map(|e| e.name().to_ascii_lowercase())
            .collect();
        let junctions = netlist
            .elements()
            .iter()
            .filter(|e| matches!(e.kind(), ElementKind::TunnelJunction { .. }))
            .map(|e| e.name().to_string())
            .collect();
        Ok(HybridStationaryEngine {
            netlist: netlist.clone(),
            options,
            sources,
            junctions,
        })
    }

    /// The co-simulation options.
    #[must_use]
    pub fn options(&self) -> &HybridOptions {
        &self.options
    }

    /// The observable tunnel-junction names, in handle order.
    #[must_use]
    pub fn junction_names(&self) -> &[String] {
        &self.junctions
    }
}

impl StationaryEngine for HybridStationaryEngine {
    type Error = HybridError;

    fn engine_name(&self) -> &'static str {
        "hybrid-cosim"
    }

    fn resolve_control(&self, name: &str) -> Result<ControlId, HybridError> {
        let lowered = name.to_ascii_lowercase();
        self.sources
            .iter()
            .position(|s| *s == lowered)
            .map(ControlId)
            .ok_or_else(|| {
                HybridError::InvalidArgument(format!("no voltage source named `{name}`"))
            })
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, HybridError> {
        self.junctions
            .iter()
            .position(|j| j == name)
            .map(ObservableId)
            .ok_or_else(|| {
                HybridError::InvalidArgument(format!("no tunnel junction named `{name}`"))
            })
    }

    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seed: u64,
    ) -> Result<Vec<f64>, HybridError> {
        let junction_names: Vec<&String> = observables
            .iter()
            .map(|&ObservableId(junction)| {
                self.junctions.get(junction).ok_or_else(|| {
                    HybridError::InvalidArgument(format!("unknown observable handle {junction}"))
                })
            })
            .collect::<Result<_, _>>()?;

        let mut netlist = self.netlist.clone();
        for &(ControlId(source), value) in controls {
            let name = self.sources.get(source).ok_or_else(|| {
                HybridError::InvalidArgument(format!("unknown control handle {source}"))
            })?;
            netlist.set_source_voltage(name, value)?;
        }
        let mut options = self.options;
        if let IslandEngine::MonteCarlo { events, .. } = options.engine {
            options.engine = IslandEngine::MonteCarlo { events, seed };
        }
        let solution = HybridSimulator::new(&netlist, options)?.solve()?;
        junction_names
            .iter()
            .map(|&name| {
                solution.junction_current(name).ok_or_else(|| {
                    HybridError::InvalidArgument(format!(
                        "no current recorded for junction `{name}`"
                    ))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_engine::SweepRunner;
    use se_netlist::parse_deck;
    use se_units::constants::E;

    fn set_with_load() -> Netlist {
        parse_deck(
            "hybrid set load\nVDD vdd 0 5m\nVG gate 0 0\nRL vdd drain 10meg\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n",
        )
        .unwrap()
    }

    #[test]
    fn names_resolve_and_validate() {
        let engine =
            HybridStationaryEngine::new(&set_with_load(), HybridOptions::new(1.0)).unwrap();
        assert!(engine.resolve_control("vg").is_ok());
        assert!(engine.resolve_control("VDD").is_ok());
        assert!(engine.resolve_control("RL").is_err());
        assert!(engine.resolve_observable("J1").is_ok());
        assert!(engine.resolve_observable("CG").is_err());
        assert_eq!(engine.junction_names(), &["J1".to_string(), "J2".into()]);
        assert!(HybridStationaryEngine::new(&set_with_load(), HybridOptions::new(-1.0)).is_err());
    }

    #[test]
    fn gate_sweep_through_the_runner_shows_coulomb_oscillation() {
        let vg_peak = E / (2.0 * 1e-18);
        let engine =
            HybridStationaryEngine::new(&set_with_load(), HybridOptions::new(1.0)).unwrap();
        let values = [0.0, vg_peak];
        let sweep = SweepRunner::new()
            .with_seed(3)
            .run(&engine, "VG", &values, "J1")
            .unwrap();
        assert_eq!(sweep.len(), 2);
        let blockade = sweep[0].current.abs();
        let peak = sweep[1].current.abs();
        assert!(
            peak > 10.0 * blockade.max(1e-15),
            "peak {peak} vs {blockade}"
        );
    }

    #[test]
    fn monte_carlo_islands_use_the_per_point_seed() {
        let vg_peak = E / (2.0 * 1e-18);
        let engine = HybridStationaryEngine::new(
            &set_with_load(),
            HybridOptions::new(1.0).with_monte_carlo(4000, 999),
        )
        .unwrap();
        let gate = engine.resolve_control("VG").unwrap();
        let j1 = engine.resolve_observable("J1").unwrap();
        let a = engine
            .stationary_current(&[(gate, vg_peak)], j1, 7)
            .unwrap();
        let b = engine
            .stationary_current(&[(gate, vg_peak)], j1, 7)
            .unwrap();
        let c = engine
            .stationary_current(&[(gate, vg_peak)], j1, 8)
            .unwrap();
        assert_eq!(a, b, "same seed, same relaxed current");
        assert_ne!(a, c, "the runner seed must reach the island engine");
    }
}
