//! Quasi-static transient co-simulation: the hybrid boundary-relaxation
//! solver stepped along a stimulus inside a SPICE envelope.
//!
//! The single-electron domain settles on sub-nanosecond tunnelling time
//! scales, while the conventional envelope (supplies, loads, logic inputs)
//! changes on circuit time scales — so the correct time-domain model of a
//! hybrid circuit under a slow stimulus is a *sequence of self-consistent
//! stationary solutions*: at each sample time the source waveforms are
//! frozen, the full boundary relaxation of [`HybridSimulator`] runs to
//! convergence, and the converged junction currents are reported. This is
//! exactly the co-simulation loop the paper calls for when evaluating
//! single-electron logic inside a conventional environment.

use crate::cosim::{HybridOptions, HybridSimulator, IslandEngine};
use crate::error::HybridError;
use se_engine::{derive_seed, ControlId, ObservableId, TransientEngine, TransientTrace, Waveform};
use se_netlist::{Element, ElementKind, Netlist, Node};
use std::collections::HashMap;

/// The hybrid co-simulator as a [`TransientEngine`].
///
/// Drives are the netlist's voltage sources, observables are its tunnel
/// junctions. Each sample time `t` rebuilds the netlist with every driven
/// source held at its waveform value, runs the boundary relaxation to
/// convergence and reports the stationary junction currents — so a trace
/// is a row of self-consistent SPICE↔island solutions along the stimulus.
///
/// When the island domain runs the kinetic Monte-Carlo engine, sample `k`
/// of a run with seed `s` solves with seed `derive_seed(s, k)`, keeping
/// the whole trace reproducible and ensemble runs bit-identical serial vs
/// parallel; the master-equation engine is deterministic and ignores the
/// seed.
#[derive(Debug, Clone)]
pub struct HybridTransientEngine {
    netlist: Netlist,
    options: HybridOptions,
    /// Voltage-source names (lower-cased), indexed by drive handle.
    sources: Vec<String>,
    /// Tunnel-junction names, indexed by observable handle.
    junctions: Vec<String>,
}

impl HybridTransientEngine {
    /// Prepares the engine: validates the netlist and options by building
    /// a prototype [`HybridSimulator`], and indexes the drivable sources
    /// and observable junctions.
    ///
    /// # Errors
    ///
    /// Propagates [`HybridSimulator::new`] validation errors.
    pub fn new(netlist: &Netlist, options: HybridOptions) -> Result<Self, HybridError> {
        // Surface bad options / bad netlists at construction, not per run.
        HybridSimulator::new(netlist, options)?;
        let sources = netlist
            .elements()
            .iter()
            .filter(|e| e.is_voltage_source())
            .map(|e| e.name().to_ascii_lowercase())
            .collect();
        let junctions = netlist
            .elements()
            .iter()
            .filter(|e| matches!(e.kind(), ElementKind::TunnelJunction { .. }))
            .map(|e| e.name().to_string())
            .collect();
        Ok(HybridTransientEngine {
            netlist: netlist.clone(),
            options,
            sources,
            junctions,
        })
    }

    /// The co-simulation options.
    #[must_use]
    pub fn options(&self) -> &HybridOptions {
        &self.options
    }

    /// The observable tunnel-junction names, in handle order.
    #[must_use]
    pub fn junction_names(&self) -> &[String] {
        &self.junctions
    }

    /// Rebuilds the netlist with the given voltage-source values (keyed by
    /// lower-cased name) replacing the originals.
    fn netlist_with_sources(
        &self,
        overrides: &HashMap<String, f64>,
    ) -> Result<Netlist, HybridError> {
        let mut rebuilt = Netlist::new(self.netlist.title());
        for element in self.netlist.elements() {
            let nodes: Vec<Node> = element
                .nodes()
                .iter()
                .map(|&n| {
                    if n.is_ground() {
                        Node::GROUND
                    } else {
                        rebuilt.node(self.netlist.node_name(n).unwrap_or("n"))
                    }
                })
                .collect();
            let kind = match element.kind() {
                ElementKind::VoltageSource { voltage } => ElementKind::VoltageSource {
                    voltage: overrides
                        .get(&element.name().to_ascii_lowercase())
                        .copied()
                        .unwrap_or(*voltage),
                },
                other => other.clone(),
            };
            rebuilt.add(Element::new(element.name(), nodes, kind)?)?;
        }
        Ok(rebuilt)
    }
}

impl TransientEngine for HybridTransientEngine {
    type Error = HybridError;

    fn engine_name(&self) -> &'static str {
        "hybrid-cosim"
    }

    fn resolve_drive(&self, name: &str) -> Result<ControlId, HybridError> {
        let lowered = name.to_ascii_lowercase();
        self.sources
            .iter()
            .position(|s| *s == lowered)
            .map(ControlId)
            .ok_or_else(|| {
                HybridError::InvalidArgument(format!("no voltage source named `{name}`"))
            })
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, HybridError> {
        self.junctions
            .iter()
            .position(|j| j == name)
            .map(ObservableId)
            .ok_or_else(|| {
                HybridError::InvalidArgument(format!("no tunnel junction named `{name}`"))
            })
    }

    fn transient_currents(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seed: u64,
    ) -> Result<TransientTrace, HybridError> {
        se_engine::transient::check_sample_times::<HybridError>(times)?;
        // Resolve all handles before the first (expensive) relaxation
        // solve, so bad handles fail fast and lookups run once.
        let drive_names: Vec<(&String, &Waveform)> = drives
            .iter()
            .map(|&(ControlId(source), ref waveform)| {
                self.sources
                    .get(source)
                    .map(|name| (name, waveform))
                    .ok_or_else(|| {
                        HybridError::InvalidArgument(format!("unknown drive handle {source}"))
                    })
            })
            .collect::<Result<_, _>>()?;
        let junction_names: Vec<&String> = observables
            .iter()
            .map(|&ObservableId(junction)| {
                self.junctions.get(junction).ok_or_else(|| {
                    HybridError::InvalidArgument(format!("unknown observable handle {junction}"))
                })
            })
            .collect::<Result<_, _>>()?;

        let mut currents = Vec::with_capacity(times.len() * observables.len());
        for (index, &t) in times.iter().enumerate() {
            let mut overrides = HashMap::new();
            for &(name, waveform) in &drive_names {
                overrides.insert(name.clone(), waveform.value_at(t));
            }
            let netlist = self.netlist_with_sources(&overrides)?;
            let mut options = self.options;
            if let IslandEngine::MonteCarlo { events, .. } = options.engine {
                options.engine = IslandEngine::MonteCarlo {
                    events,
                    seed: derive_seed(seed, index as u64),
                };
            }
            let solution = HybridSimulator::new(&netlist, options)?.solve()?;
            for &name in &junction_names {
                let current = solution.junction_current(name).ok_or_else(|| {
                    HybridError::InvalidArgument(format!(
                        "no current recorded for junction `{name}`"
                    ))
                })?;
                currents.push(current);
            }
        }
        Ok(TransientTrace::new(
            times.to_vec(),
            observables.len(),
            currents,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_deck;
    use se_units::constants::E;

    fn set_with_load_deck(vg: f64) -> String {
        format!(
            "hybrid set load\nVDD vdd 0 5m\nVG gate 0 {vg}\nRL vdd drain 10meg\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n"
        )
    }

    #[test]
    fn names_resolve_and_validate() {
        let netlist = parse_deck(&set_with_load_deck(0.0)).unwrap();
        let engine = HybridTransientEngine::new(&netlist, HybridOptions::new(1.0)).unwrap();
        assert!(engine.resolve_drive("vg").is_ok());
        assert!(engine.resolve_drive("VDD").is_ok());
        assert!(engine.resolve_drive("RL").is_err());
        assert!(engine.resolve_observable("J1").is_ok());
        assert!(engine.resolve_observable("CG").is_err());
        assert_eq!(engine.junction_names(), &["J1".to_string(), "J2".into()]);
        assert!(HybridTransientEngine::new(&netlist, HybridOptions::new(-1.0)).is_err());
    }

    #[test]
    fn gate_pulse_switches_the_set_between_blockade_and_conduction() {
        // Pulse the gate from the blockade point to the conductance peak:
        // the converged junction current must follow the pulse.
        let vg_peak = E / (2.0 * 1e-18);
        let netlist = parse_deck(&set_with_load_deck(0.0)).unwrap();
        let engine = HybridTransientEngine::new(&netlist, HybridOptions::new(1.0)).unwrap();
        let gate = engine.resolve_drive("VG").unwrap();
        let j1 = engine.resolve_observable("J1").unwrap();
        let pulse = Waveform::pulse(0.0, vg_peak, 2e-9, 4e-9, 100e-9).unwrap();
        let times = [1e-9, 3e-9, 5e-9, 7e-9];
        let trace = engine
            .transient_currents(&[(gate, pulse)], &[j1], &times, 0)
            .unwrap();
        // Samples at 3 ns and 5 ns sit inside the pulse (conducting),
        // samples at 1 ns and 7 ns outside it (blockaded).
        let on = trace.at(1, 0).abs().min(trace.at(2, 0).abs());
        let off = trace.at(0, 0).abs().max(trace.at(3, 0).abs());
        assert!(on > 10.0 * off.max(1e-15), "on {on} vs off {off}");
        // Deterministic master-equation islands: the trace reproduces.
        let again = engine
            .transient_currents(
                &[(
                    gate,
                    Waveform::pulse(0.0, vg_peak, 2e-9, 4e-9, 100e-9).unwrap(),
                )],
                &[j1],
                &times,
                0,
            )
            .unwrap();
        assert_eq!(trace, again);
    }

    #[test]
    fn sample_grid_violations_are_rejected() {
        let netlist = parse_deck(&set_with_load_deck(0.0)).unwrap();
        let engine = HybridTransientEngine::new(&netlist, HybridOptions::new(1.0)).unwrap();
        let j1 = engine.resolve_observable("J1").unwrap();
        assert!(engine.transient_currents(&[], &[j1], &[], 0).is_err());
        assert!(engine
            .transient_currents(&[], &[j1], &[2e-9, 1e-9], 0)
            .is_err());
    }
}
