//! Background-charge-independent AM/FM-coded single-electron logic.
//!
//! Following Klunder's proposal (reference \[1\] of the paper), information is
//! not coded in a voltage level but in the *amplitude* or *frequency* of the
//! SET's periodic Id–Vg characteristic, the two properties a background
//! charge cannot touch. The physical knob is a *modulatable capacitance*:
//! the logic input changes the gate capacitance (e.g. through a biased pn
//! junction or a suspended gate), which changes the oscillation frequency
//! seen while the gate is swept (FM), or changes the drain bias and with it
//! the oscillation amplitude (AM).
//!
//! The gates below produce the raw output records (drain-current samples
//! along a gate ramp), the decoders from [`crate::encoding`] turn them into
//! bits, and [`level_coded_bit_error_rate`] / [`fm_coded_bit_error_rate`]
//! measure how often a random background
//! charge flips the result — the quantity compared against the level-coded
//! inverter of [`crate::gates`] in experiment E6. [`GateSpeedModel`]
//! quantifies the price: an AM/FM gate needs several oscillation periods per
//! decision, but each period only costs a handful of sub-picosecond
//! tunnelling times (experiment E12).

use crate::encoding::{AmplitudeEncoding, FrequencyEncoding};
use crate::error::LogicError;
use crate::gates::SetInverter;
use rand::Rng;
use se_engine::{QuasiStatic, TransientRunner, Waveform};
use se_orthodox::rates::intrinsic_tunnel_time;
use se_orthodox::set::SingleElectronTransistor;
use se_units::constants::E;

/// The normalised duration of one AM/FM read: gate ramps are defined over
/// `[0, RECORD_TIME]` and sampled on a uniform grid, mirroring the "sweep
/// the gate once per decision" operation of the modulation-coded gates.
const RECORD_TIME: f64 = 1.0;

/// Samples the drain current of a SET along a gate-voltage ramp through
/// the unified transient layer: the analytic device becomes a
/// [`QuasiStatic`] transient backend and the ramp becomes a [`Waveform`],
/// so AM and FM records run through exactly the engine surface the
/// circuit-level experiments use.
fn ramp_record(
    set: &SingleElectronTransistor,
    read_bias: f64,
    background_charge: f64,
    temperature: f64,
    ramp_to: f64,
    samples: usize,
) -> Result<Vec<f64>, LogicError> {
    let engine = QuasiStatic::new(
        set.stationary_engine(temperature, background_charge)?
            .with_bias(read_bias, 0.0),
    );
    // Sample i of `samples` sits at vg = ramp_to · i / samples: the grid
    // stops one sample short of the ramp end, matching the historical
    // per-sample loop (up to floating-point rounding).
    let ramp = Waveform::ramp(0.0, ramp_to, 0.0, RECORD_TIME)?;
    let times: Vec<f64> = (0..samples)
        .map(|i| i as f64 * RECORD_TIME / samples as f64)
        .collect();
    let trace = TransientRunner::new().run(&engine, &[("gate", ramp)], &["drain"], &times)?;
    Ok(trace.channel(0))
}

/// An FM-coded gate: the input bit selects one of two gate capacitances, so
/// a fixed gate-voltage ramp produces a different number of Coulomb
/// oscillations for 0 and 1.
#[derive(Debug, Clone)]
pub struct FmCodedGate {
    c_gate_low: f64,
    c_gate_high: f64,
    c_junction: f64,
    r_junction: f64,
    /// Drain bias applied while reading, volt.
    read_bias: f64,
    /// Gate-ramp span, volt.
    ramp_span: f64,
    /// Samples per record.
    samples: usize,
    /// Operating temperature, kelvin.
    temperature: f64,
}

impl FmCodedGate {
    /// Creates an FM-coded gate.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] if the two gate capacitances
    /// are not distinct and positive, or other parameters are non-positive.
    pub fn new(
        c_gate_low: f64,
        c_gate_high: f64,
        c_junction: f64,
        r_junction: f64,
        ramp_span: f64,
        samples: usize,
        temperature: f64,
    ) -> Result<Self, LogicError> {
        if !(c_gate_low > 0.0 && c_gate_high > 0.0) || c_gate_low == c_gate_high {
            return Err(LogicError::InvalidArgument(
                "FM gate needs two distinct positive gate capacitances".into(),
            ));
        }
        if !(c_junction > 0.0 && r_junction > 0.0 && ramp_span > 0.0) {
            return Err(LogicError::InvalidArgument(
                "junction parameters and ramp span must be positive".into(),
            ));
        }
        if samples < 16 {
            return Err(LogicError::InvalidArgument(
                "an FM record needs at least 16 samples".into(),
            ));
        }
        Ok(FmCodedGate {
            c_gate_low,
            c_gate_high,
            c_junction,
            r_junction,
            read_bias: 2e-3,
            ramp_span,
            samples,
            temperature,
        })
    }

    /// The reference FM gate used by the experiments: 1 aF / 2 aF gate
    /// capacitances (so logic 1 produces twice as many oscillations),
    /// 0.5 aF / 100 kΩ junctions, a ramp spanning four low-capacitance
    /// periods, 1024 samples, 1 K.
    ///
    /// # Errors
    ///
    /// Never fails in practice; propagates constructor validation.
    pub fn reference() -> Result<Self, LogicError> {
        let c_low = 1e-18;
        let ramp = 4.0 * E / c_low;
        FmCodedGate::new(c_low, 2e-18, 0.5e-18, 100e3, ramp, 1024, 1.0)
    }

    /// Expected oscillation counts for logic 0 and 1 over one record.
    #[must_use]
    pub fn expected_cycles(&self) -> (usize, usize) {
        let low = (self.ramp_span * self.c_gate_low / E).round() as usize;
        let high = (self.ramp_span * self.c_gate_high / E).round() as usize;
        (low, high)
    }

    /// Produces the raw output record (drain-current samples along the gate
    /// ramp) for the given input bit and background charge.
    ///
    /// # Errors
    ///
    /// Propagates physics errors.
    pub fn output_record(
        &self,
        input: bool,
        background_charge: f64,
    ) -> Result<Vec<f64>, LogicError> {
        let c_gate = if input {
            self.c_gate_high
        } else {
            self.c_gate_low
        };
        let set = SingleElectronTransistor::symmetric(c_gate, self.c_junction, self.r_junction)?;
        ramp_record(
            &set,
            self.read_bias,
            background_charge,
            self.temperature,
            self.ramp_span,
            self.samples,
        )
    }

    /// Evaluates the gate: produces the record, counts its Coulomb
    /// oscillations and compares the count against the two expected cycle
    /// numbers.
    ///
    /// Counting oscillation peaks (threshold crossings) rather than taking a
    /// Fourier transform is the robust choice for the SET's strongly
    /// non-sinusoidal, narrow-peaked waveform; the sinusoidal
    /// [`FrequencyEncoding`] decoder remains available for smoother signals.
    ///
    /// # Errors
    ///
    /// Propagates physics and decoding errors.
    pub fn evaluate(&self, input: bool, background_charge: f64) -> Result<bool, LogicError> {
        let (low, high) = self.expected_cycles();
        // Keep the validation of the pair even though the decision below
        // uses peak counting.
        let _ = FrequencyEncoding::new(low, high)?;
        let record = self.output_record(input, background_charge)?;
        let count = count_oscillations(&record) as f64;
        Ok((count - high as f64).abs() < (count - low as f64).abs())
    }
}

/// Counts the Coulomb oscillations in a record as the number of rising
/// crossings of the mid-level between the record's minimum and maximum.
#[must_use]
pub fn count_oscillations(record: &[f64]) -> usize {
    if record.len() < 2 {
        return 0;
    }
    let max = record.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = record.iter().cloned().fold(f64::INFINITY, f64::min);
    if !(max > min) {
        return 0;
    }
    let threshold = 0.5 * (max + min);
    record
        .windows(2)
        .filter(|w| w[0] <= threshold && w[1] > threshold)
        .count()
}

/// An AM-coded gate: the input bit selects one of two drain biases, so the
/// oscillation observed along a one-period gate ramp has a large or a small
/// amplitude.
#[derive(Debug, Clone)]
pub struct AmCodedGate {
    set: SingleElectronTransistor,
    /// Drain bias for logic 0, volt.
    bias_low: f64,
    /// Drain bias for logic 1, volt.
    bias_high: f64,
    /// Samples per record.
    samples: usize,
    /// Operating temperature, kelvin.
    temperature: f64,
}

impl AmCodedGate {
    /// Creates an AM-coded gate.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] if the biases are not ordered
    /// `0 <= bias_low < bias_high` or the sample count is too small.
    pub fn new(
        set: SingleElectronTransistor,
        bias_low: f64,
        bias_high: f64,
        samples: usize,
        temperature: f64,
    ) -> Result<Self, LogicError> {
        if !(bias_low >= 0.0 && bias_high > bias_low) {
            return Err(LogicError::InvalidArgument(format!(
                "AM gate needs 0 <= bias_low < bias_high, got {bias_low} and {bias_high}"
            )));
        }
        if samples < 16 {
            return Err(LogicError::InvalidArgument(
                "an AM record needs at least 16 samples".into(),
            ));
        }
        Ok(AmCodedGate {
            set,
            bias_low,
            bias_high,
            samples,
            temperature,
        })
    }

    /// The reference AM gate: symmetric SET, 0.1 mV / 2 mV read biases,
    /// 256 samples, 1 K.
    ///
    /// # Errors
    ///
    /// Never fails in practice; propagates constructor validation.
    pub fn reference() -> Result<Self, LogicError> {
        let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3)?;
        AmCodedGate::new(set, 1e-4, 2e-3, 256, 1.0)
    }

    /// A decoder matched to the reference gate: the decision threshold sits
    /// between the current swings produced by the two read biases.
    ///
    /// # Errors
    ///
    /// Propagates physics errors while calibrating the threshold.
    pub fn matched_decoder(&self) -> Result<AmplitudeEncoding, LogicError> {
        let low = AmplitudeEncoding::amplitude(&self.output_record(false, 0.0)?);
        let high = AmplitudeEncoding::amplitude(&self.output_record(true, 0.0)?);
        AmplitudeEncoding::new(0.5 * (low + high))
    }

    /// Produces the raw output record for the given input bit and background
    /// charge: the drain current sampled along one full gate period.
    ///
    /// # Errors
    ///
    /// Propagates physics errors.
    pub fn output_record(
        &self,
        input: bool,
        background_charge: f64,
    ) -> Result<Vec<f64>, LogicError> {
        let bias = if input { self.bias_high } else { self.bias_low };
        ramp_record(
            &self.set,
            bias,
            background_charge,
            self.temperature,
            self.set.gate_period(),
            self.samples,
        )
    }

    /// Evaluates the gate with the matched amplitude decoder.
    ///
    /// # Errors
    ///
    /// Propagates physics and decoding errors.
    pub fn evaluate(&self, input: bool, background_charge: f64) -> Result<bool, LogicError> {
        let decoder = self.matched_decoder()?;
        let record = self.output_record(input, background_charge)?;
        Ok(decoder.decode(&record))
    }
}

/// Bit-error rate of a level-coded SET inverter under uniformly random
/// background charges in `[-q0_max, q0_max]` (units of `e`): the fraction of
/// trials in which the decoded output differs from the clean-device output.
///
/// # Errors
///
/// Propagates gate-evaluation errors.
pub fn level_coded_bit_error_rate<R: Rng + ?Sized>(
    inverter: &SetInverter,
    rng: &mut R,
    q0_max: f64,
    trials: usize,
) -> Result<f64, LogicError> {
    if trials == 0 {
        return Err(LogicError::InvalidArgument(
            "at least one trial is required".into(),
        ));
    }
    let decoder = crate::encoding::LevelEncoding::new(0.0, inverter.supply())?;
    let mut errors = 0usize;
    for trial in 0..trials {
        let input_bit = trial % 2 == 0;
        // Level-coded input: blockade point for 0, conductance peak for 1.
        let v_in = if input_bit {
            inverter.gate_period() / 2.0
        } else {
            0.0
        };
        let expected = decoder.decode(inverter.output_voltage(v_in, 0.0)?);
        let q0 = (rng.gen::<f64>() * 2.0 - 1.0) * q0_max;
        let observed = decoder.decode(inverter.output_voltage(v_in, q0)?);
        if observed != expected {
            errors += 1;
        }
    }
    Ok(errors as f64 / trials as f64)
}

/// Bit-error rate of the FM-coded gate under the same background-charge
/// disorder model as [`level_coded_bit_error_rate`].
///
/// # Errors
///
/// Propagates gate-evaluation errors.
pub fn fm_coded_bit_error_rate<R: Rng + ?Sized>(
    gate: &FmCodedGate,
    rng: &mut R,
    q0_max: f64,
    trials: usize,
) -> Result<f64, LogicError> {
    if trials == 0 {
        return Err(LogicError::InvalidArgument(
            "at least one trial is required".into(),
        ));
    }
    let mut errors = 0usize;
    for trial in 0..trials {
        let input = trial % 2 == 0;
        let q0 = (rng.gen::<f64>() * 2.0 - 1.0) * q0_max;
        if gate.evaluate(input, q0)? != input {
            errors += 1;
        }
    }
    Ok(errors as f64 / trials as f64)
}

/// Speed model of AM/FM-coded logic (experiment E12): a decision needs
/// `periods` Coulomb oscillations, each of which needs roughly
/// `tunnel_events_per_period` sequential tunnelling events, each taking the
/// intrinsic tunnel time `e²R_t/ΔF`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateSpeedModel {
    /// Tunnel resistance of the junctions, ohm.
    pub tunnel_resistance: f64,
    /// Free-energy gain driving each tunnel event, joule.
    pub drive_energy: f64,
    /// Tunnel events needed per oscillation period (≥ 2: one on, one off).
    pub tunnel_events_per_period: f64,
}

impl GateSpeedModel {
    /// Intrinsic single-tunnel-event time in seconds.
    #[must_use]
    pub fn tunnel_time(&self) -> f64 {
        intrinsic_tunnel_time(-self.drive_energy.abs(), self.tunnel_resistance)
    }

    /// Minimum gate delay (seconds) when the decision integrates `periods`
    /// oscillation periods.
    #[must_use]
    pub fn gate_delay(&self, periods: usize) -> f64 {
        periods as f64 * self.tunnel_events_per_period * self.tunnel_time()
    }

    /// Maximum clock frequency (hertz) for the given number of periods.
    #[must_use]
    pub fn max_clock_frequency(&self, periods: usize) -> f64 {
        1.0 / self.gate_delay(periods)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fm_gate_constructor_validation() {
        assert!(FmCodedGate::new(1e-18, 1e-18, 0.5e-18, 1e5, 0.1, 256, 1.0).is_err());
        assert!(FmCodedGate::new(1e-18, 2e-18, 0.0, 1e5, 0.1, 256, 1.0).is_err());
        assert!(FmCodedGate::new(1e-18, 2e-18, 0.5e-18, 1e5, 0.1, 4, 1.0).is_err());
        assert!(FmCodedGate::reference().is_ok());
    }

    #[test]
    fn fm_gate_decodes_both_inputs_correctly() {
        let gate = FmCodedGate::reference().unwrap();
        let (low, high) = gate.expected_cycles();
        assert_eq!((low, high), (4, 8));
        assert!(!gate.evaluate(false, 0.0).unwrap());
        assert!(gate.evaluate(true, 0.0).unwrap());
    }

    #[test]
    fn fm_gate_is_immune_to_background_charge() {
        let gate = FmCodedGate::reference().unwrap();
        for q0 in [-0.5, -0.23, 0.11, 0.37, 0.5] {
            assert!(!gate.evaluate(false, q0).unwrap(), "q0 = {q0}");
            assert!(gate.evaluate(true, q0).unwrap(), "q0 = {q0}");
        }
    }

    #[test]
    fn am_gate_decodes_and_is_immune() {
        let gate = AmCodedGate::reference().unwrap();
        assert!(!gate.evaluate(false, 0.0).unwrap());
        assert!(gate.evaluate(true, 0.0).unwrap());
        for q0 in [-0.4, 0.25, 0.5] {
            assert!(!gate.evaluate(false, q0).unwrap(), "q0 = {q0}");
            assert!(gate.evaluate(true, q0).unwrap(), "q0 = {q0}");
        }
    }

    #[test]
    fn am_gate_constructor_validation() {
        let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
        assert!(AmCodedGate::new(set.clone(), 2e-3, 1e-3, 128, 1.0).is_err());
        assert!(AmCodedGate::new(set, 1e-4, 2e-3, 4, 1.0).is_err());
    }

    #[test]
    fn level_coded_logic_fails_under_disorder_but_fm_does_not() {
        let mut rng = StdRng::seed_from_u64(2024);
        let inverter = SetInverter::reference().unwrap();
        let level_ber = level_coded_bit_error_rate(&inverter, &mut rng, 0.5, 40).unwrap();
        let gate = FmCodedGate::reference().unwrap();
        let fm_ber = fm_coded_bit_error_rate(&gate, &mut rng, 0.5, 20).unwrap();
        assert!(
            level_ber > 0.2,
            "level-coded logic should fail often under worst-case disorder, got {level_ber}"
        );
        assert_eq!(fm_ber, 0.0, "FM-coded logic must be immune");
    }

    #[test]
    fn bit_error_rate_requires_trials() {
        let mut rng = StdRng::seed_from_u64(1);
        let inverter = SetInverter::reference().unwrap();
        assert!(level_coded_bit_error_rate(&inverter, &mut rng, 0.5, 0).is_err());
        let gate = FmCodedGate::reference().unwrap();
        assert!(fm_coded_bit_error_rate(&gate, &mut rng, 0.5, 0).is_err());
    }

    #[test]
    fn speed_model_shows_sub_nanosecond_gates_despite_periods() {
        // Drive energy of one charging energy across a 100 kΩ junction.
        let model = GateSpeedModel {
            tunnel_resistance: 100e3,
            drive_energy: 5e-21,
            tunnel_events_per_period: 4.0,
        };
        assert!(
            model.tunnel_time() < 1e-12,
            "tunnelling must be sub-picosecond"
        );
        let delay_level = model.gate_delay(1);
        let delay_fm = model.gate_delay(8);
        assert!(delay_fm > delay_level, "FM coding costs extra periods");
        assert!(
            delay_fm < 1e-9,
            "even an 8-period FM gate stays below a nanosecond: {delay_fm}"
        );
        assert!(model.max_clock_frequency(8) > 1e9);
    }
}
