//! Logic-state encodings: voltage level, oscillation amplitude (AM) and
//! oscillation frequency (FM).
//!
//! The paper's central design argument is that the *phase* of a SET's
//! periodic characteristic is corrupted by background charges while its
//! *period and amplitude* are not — so a robust single-electron logic must
//! encode information in amplitude or frequency rather than in plain levels.
//! This module provides the three encoders/decoders used by the gate models
//! in [`crate::gates`] and [`crate::amfm`].

use crate::error::LogicError;
use se_numeric::dft;

/// Conventional voltage-level encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelEncoding {
    /// Voltage representing logic 0.
    pub v_low: f64,
    /// Voltage representing logic 1.
    pub v_high: f64,
}

impl LevelEncoding {
    /// Creates a level encoding.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] if `v_low >= v_high`.
    pub fn new(v_low: f64, v_high: f64) -> Result<Self, LogicError> {
        if !(v_low < v_high) {
            return Err(LogicError::InvalidArgument(format!(
                "level encoding needs v_low < v_high, got {v_low} and {v_high}"
            )));
        }
        Ok(LevelEncoding { v_low, v_high })
    }

    /// Voltage representing the given bit.
    #[must_use]
    pub fn encode(&self, bit: bool) -> f64 {
        if bit {
            self.v_high
        } else {
            self.v_low
        }
    }

    /// Decision threshold (midpoint).
    #[must_use]
    pub fn threshold(&self) -> f64 {
        0.5 * (self.v_low + self.v_high)
    }

    /// Decodes a voltage into a bit by comparing against the midpoint.
    #[must_use]
    pub fn decode(&self, voltage: f64) -> bool {
        voltage > self.threshold()
    }

    /// Noise margin: how far a level can drift before it is misread.
    #[must_use]
    pub fn noise_margin(&self) -> f64 {
        0.5 * (self.v_high - self.v_low)
    }
}

/// Amplitude-modulation encoding: the bit is carried by the peak-to-peak
/// amplitude of an oscillating signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmplitudeEncoding {
    /// Peak-to-peak amplitude below which the signal decodes as logic 0.
    pub threshold: f64,
}

impl AmplitudeEncoding {
    /// Creates an amplitude encoding with the given decision threshold.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] if the threshold is not
    /// strictly positive.
    pub fn new(threshold: f64) -> Result<Self, LogicError> {
        if !(threshold > 0.0) {
            return Err(LogicError::InvalidArgument(format!(
                "amplitude threshold must be positive, got {threshold}"
            )));
        }
        Ok(AmplitudeEncoding { threshold })
    }

    /// Peak-to-peak amplitude of a signal.
    #[must_use]
    pub fn amplitude(signal: &[f64]) -> f64 {
        if signal.is_empty() {
            return 0.0;
        }
        let max = signal.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = signal.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Decodes a signal: logic 1 if its peak-to-peak amplitude exceeds the
    /// threshold.
    #[must_use]
    pub fn decode(&self, signal: &[f64]) -> bool {
        Self::amplitude(signal) > self.threshold
    }
}

/// Frequency-modulation encoding: the bit is carried by the number of
/// oscillation cycles observed in a fixed record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyEncoding {
    /// Expected cycle count for logic 0.
    pub cycles_low: usize,
    /// Expected cycle count for logic 1.
    pub cycles_high: usize,
}

impl FrequencyEncoding {
    /// Creates a frequency encoding.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] if the two cycle counts are
    /// not distinct and at least 1.
    pub fn new(cycles_low: usize, cycles_high: usize) -> Result<Self, LogicError> {
        if cycles_low == 0 || cycles_high == 0 || cycles_low == cycles_high {
            return Err(LogicError::InvalidArgument(format!(
                "frequency encoding needs two distinct non-zero cycle counts, got {cycles_low} and {cycles_high}"
            )));
        }
        Ok(FrequencyEncoding {
            cycles_low,
            cycles_high,
        })
    }

    /// Measures the dominant cycle count of a record.
    ///
    /// # Errors
    ///
    /// Propagates [`LogicError::Numeric`] if the record is too short.
    pub fn measure_cycles(signal: &[f64]) -> Result<usize, LogicError> {
        Ok(dft::dominant_frequency(signal)?)
    }

    /// Decodes a record: logic 1 if the dominant cycle count is closer to
    /// `cycles_high` than to `cycles_low`.
    ///
    /// # Errors
    ///
    /// Propagates [`LogicError::Numeric`] if the record is too short.
    pub fn decode(&self, signal: &[f64]) -> Result<bool, LogicError> {
        let cycles = Self::measure_cycles(signal)? as f64;
        let d_low = (cycles - self.cycles_low as f64).abs();
        let d_high = (cycles - self.cycles_high as f64).abs();
        Ok(d_high < d_low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sine(n: usize, cycles: f64, amplitude: f64, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                amplitude
                    * (2.0 * std::f64::consts::PI * cycles * i as f64 / n as f64 + phase).sin()
            })
            .collect()
    }

    #[test]
    fn level_encoding_round_trip_and_margin() {
        let enc = LevelEncoding::new(0.0, 0.8).unwrap();
        assert!(enc.decode(enc.encode(true)));
        assert!(!enc.decode(enc.encode(false)));
        assert!((enc.threshold() - 0.4).abs() < 1e-12);
        assert!((enc.noise_margin() - 0.4).abs() < 1e-12);
        assert!(LevelEncoding::new(1.0, 0.5).is_err());
    }

    #[test]
    fn amplitude_encoding_separates_large_and_small_signals() {
        let enc = AmplitudeEncoding::new(0.5).unwrap();
        let strong = sine(64, 4.0, 1.0, 0.0);
        let weak = sine(64, 4.0, 0.1, 0.0);
        assert!(enc.decode(&strong));
        assert!(!enc.decode(&weak));
        assert!(AmplitudeEncoding::new(0.0).is_err());
        assert_eq!(AmplitudeEncoding::amplitude(&[]), 0.0);
    }

    #[test]
    fn frequency_encoding_separates_cycle_counts() {
        let enc = FrequencyEncoding::new(3, 9).unwrap();
        let low = sine(90, 3.0, 1.0, 0.0);
        let high = sine(90, 9.0, 1.0, 0.0);
        assert!(!enc.decode(&low).unwrap());
        assert!(enc.decode(&high).unwrap());
        assert!(FrequencyEncoding::new(3, 3).is_err());
        assert!(FrequencyEncoding::new(0, 3).is_err());
    }

    proptest! {
        /// Phase shifts never change what the amplitude and frequency
        /// decoders see — the formal statement of the paper's claim that
        /// background charge (a pure phase shift) cannot corrupt AM/FM-coded
        /// logic.
        #[test]
        fn prop_am_fm_decoding_is_phase_invariant(phase in 0.0_f64..std::f64::consts::TAU) {
            let amplitude_enc = AmplitudeEncoding::new(0.5).unwrap();
            let frequency_enc = FrequencyEncoding::new(3, 9).unwrap();
            let strong = sine(90, 9.0, 1.0, phase);
            let weak = sine(90, 3.0, 0.1, phase);
            prop_assert!(amplitude_enc.decode(&strong));
            prop_assert!(!amplitude_enc.decode(&weak));
            prop_assert!(frequency_enc.decode(&strong).unwrap());
            prop_assert!(!frequency_enc.decode(&weak).unwrap());
        }

        /// Level decoding flips exactly at the midpoint threshold.
        #[test]
        fn prop_level_decoding_threshold(v in -1.0_f64..2.0) {
            let enc = LevelEncoding::new(0.0, 1.0).unwrap();
            prop_assert_eq!(enc.decode(v), v > 0.5);
        }
    }
}
