//! Error type for the logic / application layer.

use se_hybrid::HybridError;
use se_montecarlo::MonteCarloError;
use se_netlist::NetlistError;
use se_numeric::NumericError;
use se_orthodox::OrthodoxError;
use se_spice::SpiceError;
use std::error::Error;
use std::fmt;

/// Errors produced by the logic and application layer.
#[derive(Debug)]
pub enum LogicError {
    /// Invalid gate, encoder or generator parameters.
    InvalidArgument(String),
    /// A physics-layer computation failed.
    Orthodox(OrthodoxError),
    /// A numerical routine failed.
    Numeric(NumericError),
    /// A netlist-level operation failed.
    Netlist(NetlistError),
    /// A Monte-Carlo simulation failed.
    MonteCarlo(MonteCarloError),
    /// A SPICE simulation failed.
    Spice(SpiceError),
    /// A hybrid co-simulation failed.
    Hybrid(HybridError),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            LogicError::Orthodox(e) => write!(f, "physics error: {e}"),
            LogicError::Numeric(e) => write!(f, "numerical error: {e}"),
            LogicError::Netlist(e) => write!(f, "netlist error: {e}"),
            LogicError::MonteCarlo(e) => write!(f, "monte-carlo error: {e}"),
            LogicError::Spice(e) => write!(f, "spice error: {e}"),
            LogicError::Hybrid(e) => write!(f, "hybrid error: {e}"),
        }
    }
}

impl Error for LogicError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LogicError::InvalidArgument(_) => None,
            LogicError::Orthodox(e) => Some(e),
            LogicError::Numeric(e) => Some(e),
            LogicError::Netlist(e) => Some(e),
            LogicError::MonteCarlo(e) => Some(e),
            LogicError::Spice(e) => Some(e),
            LogicError::Hybrid(e) => Some(e),
        }
    }
}

impl From<OrthodoxError> for LogicError {
    fn from(e: OrthodoxError) -> Self {
        LogicError::Orthodox(e)
    }
}

impl From<NumericError> for LogicError {
    fn from(e: NumericError) -> Self {
        LogicError::Numeric(e)
    }
}

impl From<NetlistError> for LogicError {
    fn from(e: NetlistError) -> Self {
        LogicError::Netlist(e)
    }
}

impl From<MonteCarloError> for LogicError {
    fn from(e: MonteCarloError) -> Self {
        LogicError::MonteCarlo(e)
    }
}

impl From<SpiceError> for LogicError {
    fn from(e: SpiceError) -> Self {
        LogicError::Spice(e)
    }
}

impl From<HybridError> for LogicError {
    fn from(e: HybridError) -> Self {
        LogicError::Hybrid(e)
    }
}

impl From<se_engine::GridError> for LogicError {
    fn from(e: se_engine::GridError) -> Self {
        LogicError::InvalidArgument(e.to_string())
    }
}

impl From<se_engine::WaveformError> for LogicError {
    fn from(e: se_engine::WaveformError) -> Self {
        LogicError::InvalidArgument(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = LogicError::InvalidArgument("bad threshold".into());
        assert!(e.to_string().contains("bad threshold"));
        assert!(Error::source(&e).is_none());
        let e: LogicError = NetlistError::Empty.into();
        assert!(Error::source(&e).is_some());
        let e: LogicError = OrthodoxError::InvalidParameter("x".into()).into();
        assert!(e.to_string().contains("physics"));
    }
}
