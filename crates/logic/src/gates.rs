//! Level-coded SET logic: a resistively loaded SET inverter.
//!
//! This is the "naive" single-electron logic family the paper warns about:
//! the input drives the SET gate, the output is taken from the drain node of
//! a SET loaded by a resistor, and the logic value is a plain voltage level.
//! Because the SET transfer characteristic is periodic in the *total* gate
//! charge, a drifting background charge shifts the whole characteristic and
//! eventually flips the output — the failure mode quantified in experiment
//! E6 against the AM/FM-coded gates of [`crate::amfm`].

use crate::error::LogicError;
use se_numeric::rootfind::{bisection, RootFindOptions};
use se_orthodox::set::SingleElectronTransistor;

/// A SET with a resistive pull-up load — the elementary level-coded gate.
#[derive(Debug, Clone)]
pub struct SetInverter {
    set: SingleElectronTransistor,
    /// Load resistance from the supply to the output node, ohm.
    load_resistance: f64,
    /// Supply voltage, volt.
    supply: f64,
    /// Operating temperature, kelvin.
    temperature: f64,
}

impl SetInverter {
    /// Creates an inverter.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] for a non-positive load
    /// resistance or supply, or a negative temperature.
    pub fn new(
        set: SingleElectronTransistor,
        load_resistance: f64,
        supply: f64,
        temperature: f64,
    ) -> Result<Self, LogicError> {
        if !(load_resistance > 0.0) || !load_resistance.is_finite() {
            return Err(LogicError::InvalidArgument(format!(
                "load resistance must be positive, got {load_resistance}"
            )));
        }
        if !(supply > 0.0) || !supply.is_finite() {
            return Err(LogicError::InvalidArgument(format!(
                "supply voltage must be positive, got {supply}"
            )));
        }
        if temperature < 0.0 || !temperature.is_finite() {
            return Err(LogicError::InvalidArgument(format!(
                "temperature must be non-negative, got {temperature}"
            )));
        }
        Ok(SetInverter {
            set,
            load_resistance,
            supply,
            temperature,
        })
    }

    /// A reference inverter: symmetric SET (Cg = 1 aF, Cj = 0.5 aF,
    /// Rj = 100 kΩ), 10 MΩ load, 4 mV supply, 1 K.
    ///
    /// # Errors
    ///
    /// Never fails in practice; propagates constructor validation.
    pub fn reference() -> Result<Self, LogicError> {
        let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3)?;
        SetInverter::new(set, 10e6, 4e-3, 1.0)
    }

    /// The underlying SET.
    #[must_use]
    pub fn set(&self) -> &SingleElectronTransistor {
        &self.set
    }

    /// Supply voltage in volt.
    #[must_use]
    pub fn supply(&self) -> f64 {
        self.supply
    }

    /// Gate-voltage period of the underlying SET.
    #[must_use]
    pub fn gate_period(&self) -> f64 {
        self.set.gate_period()
    }

    /// Output voltage for a given input (gate) voltage and background
    /// charge: the self-consistent point where the SET current equals the
    /// load-line current `(V_supply − V_out)/R_L`.
    ///
    /// # Errors
    ///
    /// Propagates physics and root-finding errors.
    pub fn output_voltage(&self, v_in: f64, background_charge: f64) -> Result<f64, LogicError> {
        let balance = |v_out: f64| -> f64 {
            let i_set = self
                .set
                .current(v_out, v_in, background_charge, self.temperature)
                .unwrap_or(0.0);
            (self.supply - v_out) / self.load_resistance - i_set
        };
        // The output always lies between ground and the supply rail.
        let v = bisection(
            balance,
            0.0,
            self.supply,
            RootFindOptions {
                max_iterations: 200,
                f_tolerance: 1e-18,
                x_tolerance: 1e-12,
            },
        )?;
        Ok(v)
    }

    /// Transfer curve: `(v_in, v_out)` pairs over the given input range.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] for a degenerate range or
    /// fewer than two points, and propagates bias-point errors.
    pub fn transfer_curve(
        &self,
        v_in_start: f64,
        v_in_stop: f64,
        points: usize,
        background_charge: f64,
    ) -> Result<Vec<(f64, f64)>, LogicError> {
        if points < 2 || !(v_in_stop > v_in_start) {
            return Err(LogicError::InvalidArgument(
                "transfer curve needs at least two points and an increasing range".into(),
            ));
        }
        (0..points)
            .map(|i| {
                let v_in = v_in_start + (v_in_stop - v_in_start) * i as f64 / (points - 1) as f64;
                Ok((v_in, self.output_voltage(v_in, background_charge)?))
            })
            .collect()
    }

    /// Finds the input voltage (within the first gate period) at which the
    /// output crosses half the supply — the logic switching threshold and
    /// the steepest point of the transfer curve. With the megaohm-class
    /// loads typical of SET logic the transition is narrow, so gates, noise
    /// sources and error-rate studies should bias relative to this point
    /// rather than at an arbitrary fraction of the gate period.
    ///
    /// # Errors
    ///
    /// Propagates bias-point errors.
    pub fn switching_input(&self, background_charge: f64) -> Result<f64, LogicError> {
        let period = self.gate_period();
        let target = 0.5 * self.supply;
        let mut best = (f64::INFINITY, 0.0);
        for i in 0..=400 {
            let v_in = period * i as f64 / 400.0;
            let v_out = self.output_voltage(v_in, background_charge)?;
            let distance = (v_out - target).abs();
            if distance < best.0 {
                best = (distance, v_in);
            }
        }
        Ok(best.1)
    }

    /// Small-signal voltage gain `|dV_out/dV_in|` at the given input bias —
    /// bounded by the SET's intrinsic `C_g/C_d` ratio times the load-line
    /// factor, the paper's "weak point" of SET logic.
    ///
    /// # Errors
    ///
    /// Propagates bias-point errors.
    pub fn voltage_gain(&self, v_in: f64, background_charge: f64) -> Result<f64, LogicError> {
        let dv = self.gate_period() * 1e-3;
        let plus = self.output_voltage(v_in + dv, background_charge)?;
        let minus = self.output_voltage(v_in - dv, background_charge)?;
        Ok(((plus - minus) / (2.0 * dv)).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_inputs() {
        let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
        assert!(SetInverter::new(set.clone(), 0.0, 4e-3, 1.0).is_err());
        assert!(SetInverter::new(set.clone(), 1e6, 0.0, 1.0).is_err());
        assert!(SetInverter::new(set, 1e6, 4e-3, -1.0).is_err());
    }

    #[test]
    fn output_swings_between_blockade_and_conduction() {
        let inverter = SetInverter::reference().unwrap();
        // In blockade (input 0) the SET draws no current: output at supply.
        let high = inverter.output_voltage(0.0, 0.0).unwrap();
        assert!((high - inverter.supply()).abs() < 0.1 * inverter.supply());
        // At the conductance peak the SET pulls the output down.
        let low = inverter
            .output_voltage(inverter.gate_period() / 2.0, 0.0)
            .unwrap();
        assert!(low < 0.6 * high, "low {low} vs high {high}");
    }

    #[test]
    fn transfer_curve_is_periodic() {
        let inverter = SetInverter::reference().unwrap();
        let period = inverter.gate_period();
        let a = inverter.output_voltage(0.3 * period, 0.0).unwrap();
        let b = inverter.output_voltage(1.3 * period, 0.0).unwrap();
        assert!((a - b).abs() < 0.02 * inverter.supply());
    }

    #[test]
    fn background_charge_shifts_the_transfer_curve() {
        // A background charge of 0.5 e turns the "blockade" input point into
        // a "conducting" one: the output at v_in = 0 flips from high to low.
        let inverter = SetInverter::reference().unwrap();
        let clean = inverter.output_voltage(0.0, 0.0).unwrap();
        let disturbed = inverter.output_voltage(0.0, 0.5).unwrap();
        assert!(
            disturbed < 0.6 * clean,
            "background charge must corrupt the level-coded output: {clean} vs {disturbed}"
        );
    }

    #[test]
    fn transfer_curve_api_validates_range() {
        let inverter = SetInverter::reference().unwrap();
        assert!(inverter.transfer_curve(0.0, 0.0, 10, 0.0).is_err());
        assert!(inverter.transfer_curve(0.0, 0.1, 1, 0.0).is_err());
        let curve = inverter
            .transfer_curve(0.0, inverter.gate_period(), 21, 0.0)
            .unwrap();
        assert_eq!(curve.len(), 21);
        assert!(curve
            .iter()
            .all(|(_, v)| *v >= 0.0 && *v <= inverter.supply() * 1.001));
    }

    #[test]
    fn gain_peaks_at_the_switching_threshold() {
        let inverter = SetInverter::reference().unwrap();
        let threshold = inverter.switching_input(0.0).unwrap();
        // The switching point sits somewhere inside the first period and the
        // output there is near half the supply.
        let v_mid = inverter.output_voltage(threshold, 0.0).unwrap();
        assert!((v_mid - 0.5 * inverter.supply()).abs() < 0.2 * inverter.supply());
        let gain_flank = inverter.voltage_gain(threshold, 0.0).unwrap();
        let gain_flat = inverter.voltage_gain(0.0, 0.0).unwrap();
        assert!(gain_flank > gain_flat);
        assert!(gain_flank > 0.0);
    }
}
