//! Single-electron logic and the hybrid SET/CMOS applications surveyed by
//! the paper.
//!
//! The crates below this one provide the physics and the simulators; this
//! crate builds the paper's actual subject matter on top of them:
//!
//! * [`encoding`] — the three ways of coding a logic state discussed in
//!   Section 2: voltage levels, oscillation amplitude (AM) and oscillation
//!   frequency (FM);
//! * [`gates`] — a level-coded SET inverter (SET + load) whose transfer
//!   characteristic shifts with background charge;
//! * [`amfm`] — the background-charge-*independent* AM/FM-coded gates built
//!   on the modulated-capacitance SET idea (Klunder), plus the speed model
//!   that quantifies the paper's "such logic has to be slower … but
//!   tunnelling is sub-picosecond" argument;
//! * [`mvl`] — the merged SET/MOSFET multiple-valued literal gate of
//!   Inokawa et al., simulated with the SPICE engine;
//! * [`noise`] and [`rng`] — the SET/CMOS random-number generator of Uchida
//!   et al.: amplified telegraph noise, a sampling comparator, and the
//!   power/area comparison against a conventional CMOS generator;
//! * [`randomness`] — the statistical battery used to judge the generated
//!   bitstreams;
//! * [`power`] — the power-dissipation comparison of single-electron logic
//!   against CMOS (Mahapatra et al.).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(a > b)` is the idiom this crate uses to reject NaN alongside ordinary
// range violations.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod amfm;
pub mod encoding;
pub mod error;
pub mod gates;
pub mod mvl;
pub mod noise;
pub mod power;
pub mod randomness;
pub mod rng;

pub use error::LogicError;
