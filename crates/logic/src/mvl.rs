//! The merged SET/MOSFET multiple-valued logic element of Inokawa et al.
//!
//! The circuit is a SET (input on its gate) in series with a MOSFET that
//! acts as a constant-current load / gain element. Because the SET current
//! is periodic in the input voltage while the MOSFET provides an almost
//! constant comparison current, the output node flips between a high and a
//! low level once per Coulomb-oscillation period — a periodic, multi-valued
//! transfer characteristic that would need many transistors to replicate in
//! pure CMOS. This module builds the circuit as a netlist, solves it with
//! the SPICE engine (using the analytic SET compact model, exactly as the
//! original authors did), and extracts the multi-valued transfer curve.

use crate::error::LogicError;
use se_engine::Waveform;
use se_netlist::{Element, MosfetParams, Netlist, Node, SetParams};
use se_spice::sweep::{dc_sweep, linspace};
use se_spice::{transient, Circuit, NewtonOptions, Stimulus, TransientOptions};

/// Parameters of the SET/MOSFET literal gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvlGate {
    /// SET compact-model parameters.
    pub set: SetParams,
    /// MOSFET parameters of the load / gain element.
    pub mosfet: MosfetParams,
    /// Supply voltage, volt.
    pub supply: f64,
    /// MOSFET gate bias setting the comparison current, volt.
    pub load_bias: f64,
    /// Operating temperature for the SET model, kelvin.
    pub temperature: f64,
}

impl MvlGate {
    /// The reference gate used by the experiments: the default SET, an NMOS
    /// load biased just above threshold, a 20 mV supply (so the SET stays in
    /// its low-bias regime) and 4.2 K operation.
    #[must_use]
    pub fn reference() -> Self {
        MvlGate {
            set: SetParams::symmetric(1e-18, 0.5e-18, 100e3),
            mosfet: MosfetParams::nmos_180nm(),
            supply: 20e-3,
            load_bias: 0.46,
            temperature: 4.2,
        }
    }

    /// Gate-voltage period of the underlying SET.
    #[must_use]
    pub fn input_period(&self) -> f64 {
        se_units::constants::E / self.set.c_gate
    }

    /// Builds the two-device netlist: NMOS from the supply to the output
    /// node (gate at `load_bias`), SET from the output node to ground with
    /// its gate driven by the input source `VIN`.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn netlist(&self) -> Result<Netlist, LogicError> {
        let mut netlist = Netlist::new("SET/MOSFET multiple-valued literal gate");
        let vdd = netlist.node("vdd");
        let bias = netlist.node("bias");
        let input = netlist.node("in");
        let output = netlist.node("out");
        netlist.add(Element::voltage_source(
            "VDD",
            vdd,
            Node::GROUND,
            self.supply,
        ))?;
        netlist.add(Element::voltage_source(
            "VB",
            bias,
            Node::GROUND,
            self.load_bias,
        ))?;
        netlist.add(Element::voltage_source("VIN", input, Node::GROUND, 0.0))?;
        netlist.add(Element::mosfet("M1", vdd, bias, output, self.mosfet))?;
        netlist.add(Element::set_transistor(
            "X1",
            output,
            input,
            Node::GROUND,
            self.set,
        ))?;
        Ok(netlist)
    }

    /// Computes the transfer curve `(v_in, v_out)` over the given input
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] for a degenerate range and
    /// propagates SPICE errors.
    pub fn transfer_curve(
        &self,
        v_in_start: f64,
        v_in_stop: f64,
        points: usize,
    ) -> Result<Vec<(f64, f64)>, LogicError> {
        let netlist = self.netlist()?;
        let circuit = Circuit::with_temperature(&netlist, self.temperature)?;
        let values = linspace(v_in_start, v_in_stop, points)?;
        let sweep = dc_sweep(&circuit, "VIN", &values, &NewtonOptions::default())?;
        let outputs = sweep.node_voltages("out");
        Ok(values.into_iter().zip(outputs).collect())
    }

    /// Quantizes a time-domain input ramp: drives `VIN` with a
    /// [`Waveform::Ramp`] from `v_in_start` to `v_in_stop` over
    /// `ramp_time` seconds through the SPICE transient integrator and
    /// returns `(v_in(t), v_out(t))` pairs at `points` uniform samples —
    /// the literal gate acting as the paper's multi-level quantizer on a
    /// live signal rather than on a precomputed DC grid.
    ///
    /// The gate's devices are static (no capacitors), so this coincides
    /// with [`MvlGate::transfer_curve`] on the same input values; the
    /// transient path is what lets the same circuit run inside larger
    /// time-domain co-simulations.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] for a degenerate range,
    /// fewer than two points or a non-positive ramp time, and propagates
    /// SPICE errors.
    pub fn ramp_response(
        &self,
        v_in_start: f64,
        v_in_stop: f64,
        points: usize,
        ramp_time: f64,
    ) -> Result<Vec<(f64, f64)>, LogicError> {
        if points < 2 {
            return Err(LogicError::InvalidArgument(format!(
                "a ramp response needs at least two points, got {points}"
            )));
        }
        if !(ramp_time > 0.0) || !ramp_time.is_finite() {
            return Err(LogicError::InvalidArgument(format!(
                "ramp time must be positive and finite, got {ramp_time}"
            )));
        }
        let netlist = self.netlist()?;
        let circuit = Circuit::with_temperature(&netlist, self.temperature)?;
        let ramp = Waveform::ramp(v_in_start, v_in_stop, 0.0, ramp_time)?;
        let stimulus = Stimulus::new().with_source("VIN", ramp.clone());
        let dt = ramp_time / (points - 1) as f64;
        let result = transient(&circuit, &TransientOptions::new(dt, ramp_time), &stimulus)?;
        let outputs = result.node_waveform("out");
        Ok(result
            .times()
            .iter()
            .map(|&t| ramp.value_at(t))
            .zip(outputs)
            .collect())
    }

    /// Counts the output plateaus (distinct logic levels) of a transfer
    /// curve: maximal runs of consecutive points whose output stays within
    /// `tolerance` of the run's mean and which are at least three points
    /// long.
    #[must_use]
    pub fn count_plateaus(curve: &[(f64, f64)], tolerance: f64) -> usize {
        if curve.len() < 3 {
            return 0;
        }
        let mut plateaus = 0;
        let mut run: Vec<f64> = Vec::new();
        for &(_, v_out) in curve {
            let mean = if run.is_empty() {
                v_out
            } else {
                run.iter().sum::<f64>() / run.len() as f64
            };
            if (v_out - mean).abs() <= tolerance {
                run.push(v_out);
            } else {
                if run.len() >= 3 {
                    plateaus += 1;
                }
                run.clear();
                run.push(v_out);
            }
        }
        if run.len() >= 3 {
            plateaus += 1;
        }
        plateaus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_builds_and_validates() {
        let gate = MvlGate::reference();
        let netlist = gate.netlist().unwrap();
        assert_eq!(netlist.len(), 5);
        assert!(netlist.validate().is_ok());
    }

    #[test]
    fn transfer_curve_is_periodic_and_bounded() {
        let gate = MvlGate::reference();
        let period = gate.input_period();
        let curve = gate.transfer_curve(0.0, 3.0 * period, 121).unwrap();
        assert_eq!(curve.len(), 121);
        for &(_, v_out) in &curve {
            assert!(
                (-1e-3..=gate.supply + 1e-3).contains(&v_out),
                "output {v_out} escaped the rails"
            );
        }
        // Periodicity: compare outputs one period apart (away from the ends).
        let at = |idx: usize| curve[idx].1;
        let points_per_period = 40;
        for idx in 10..30 {
            let a = at(idx);
            let b = at(idx + points_per_period);
            assert!(
                (a - b).abs() < 0.15 * gate.supply,
                "transfer curve should repeat every period: {a} vs {b}"
            );
        }
    }

    #[test]
    fn output_modulates_with_input() {
        let gate = MvlGate::reference();
        let period = gate.input_period();
        let curve = gate.transfer_curve(0.0, 2.0 * period, 81).unwrap();
        let outputs: Vec<f64> = curve.iter().map(|&(_, v)| v).collect();
        let max = outputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = outputs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max - min > 0.2 * gate.supply,
            "the literal gate must swing visibly: min {min}, max {max}"
        );
    }

    #[test]
    fn multiple_plateaus_appear_over_several_periods() {
        let gate = MvlGate::reference();
        let period = gate.input_period();
        let curve = gate.transfer_curve(0.0, 3.0 * period, 181).unwrap();
        let plateaus = MvlGate::count_plateaus(&curve, 0.1 * gate.supply);
        assert!(
            plateaus >= 3,
            "a multiple-valued literal gate needs several plateaus, found {plateaus}"
        );
    }

    #[test]
    fn ramp_response_quantizes_like_the_dc_transfer_curve() {
        // No capacitors in the gate: the time-domain quantizer must agree
        // with the DC transfer curve at every shared input value.
        let gate = MvlGate::reference();
        let period = gate.input_period();
        let points = 41;
        let dc = gate.transfer_curve(0.0, 2.0 * period, points).unwrap();
        let ramped = gate.ramp_response(0.0, 2.0 * period, points, 1e-6).unwrap();
        assert_eq!(ramped.len(), points);
        for (&(vin_dc, vout_dc), &(vin_t, vout_t)) in dc.iter().zip(&ramped) {
            assert!(
                (vin_dc - vin_t).abs() < 1e-12 * period,
                "{vin_dc} vs {vin_t}"
            );
            assert!(
                (vout_dc - vout_t).abs() < 1e-6,
                "at vin = {vin_dc}: dc {vout_dc} vs transient {vout_t}"
            );
        }
    }

    #[test]
    fn ramp_response_validates_inputs() {
        let gate = MvlGate::reference();
        assert!(gate.ramp_response(0.0, 0.1, 1, 1e-6).is_err());
        assert!(gate.ramp_response(0.0, 0.1, 41, 0.0).is_err());
        assert!(gate.ramp_response(0.0, 0.1, 41, f64::NAN).is_err());
    }

    #[test]
    fn plateau_counter_handles_degenerate_input() {
        assert_eq!(MvlGate::count_plateaus(&[], 0.1), 0);
        assert_eq!(MvlGate::count_plateaus(&[(0.0, 1.0), (0.1, 1.0)], 0.1), 0);
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0)).collect();
        assert_eq!(MvlGate::count_plateaus(&flat, 0.01), 1);
    }
}
