//! Telegraph-noise generation: the raw randomness source of the SET/CMOS
//! random-number generator.
//!
//! Uchida et al. (reference \[3\] of the paper) exploit the very property that
//! ruins level-coded SET logic: a single charge trap near the island
//! produces a *random telegraph signal* whose amplitude, after amplification
//! by the MOSFET in series with the SET, reaches an RMS value of about
//! 0.12 V — four orders of magnitude larger than the thermal noise a CMOS
//! ring-oscillator RNG has to work with. This module models that chain: a
//! two-state trap (from `se-orthodox`), the SET inverter it modulates, and a
//! MOSFET gain stage that maps the SET output swing onto a CMOS-level
//! output.

use crate::error::LogicError;
use crate::gates::SetInverter;
use rand::Rng;
use se_numeric::stats;
use se_orthodox::background::RandomTelegraphProcess;

/// The amplified telegraph-noise source of the SET/CMOS RNG.
#[derive(Debug, Clone)]
pub struct TelegraphNoiseSource {
    inverter: SetInverter,
    trap: RandomTelegraphProcess,
    /// Input (gate) bias at which the SET is read, volt.
    read_input: f64,
    /// Voltage gain of the MOSFET amplifier stage following the SET.
    amplifier_gain: f64,
    /// Supply rail of the amplifier stage (clips the output), volt.
    amplifier_supply: f64,
}

impl TelegraphNoiseSource {
    /// Creates a noise source.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] for non-positive gain or
    /// supply.
    pub fn new(
        inverter: SetInverter,
        trap: RandomTelegraphProcess,
        read_input: f64,
        amplifier_gain: f64,
        amplifier_supply: f64,
    ) -> Result<Self, LogicError> {
        if !(amplifier_gain > 0.0) || !(amplifier_supply > 0.0) {
            return Err(LogicError::InvalidArgument(
                "amplifier gain and supply must be positive".into(),
            ));
        }
        Ok(TelegraphNoiseSource {
            inverter,
            trap,
            read_input,
            amplifier_gain,
            amplifier_supply,
        })
    }

    /// The Uchida-style reference configuration: the reference SET inverter
    /// read on a transfer-curve flank, a trap of amplitude 0.2 e switching
    /// at ~1 MHz, and a MOSFET stage with enough gain to produce an output
    /// swing of ≈ 0.24 V (RMS ≈ 0.12 V) on a 1 V supply.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation.
    pub fn reference() -> Result<Self, LogicError> {
        let inverter = SetInverter::reference()?;
        let trap_amplitude = 0.2;
        let trap = RandomTelegraphProcess::new(trap_amplitude, 1e6, 1e6)?;
        // Read at the inverter's switching threshold, where the transfer
        // curve is steepest and the trap moves the output the most.
        let read_input = inverter.switching_input(0.0)?;
        // Choose the MOSFET-stage gain so the amplified trap-induced swing is
        // 0.24 V peak-to-peak, i.e. the 0.12 V RMS figure reported by Uchida
        // et al. for their fabricated device.
        let v_empty = inverter.output_voltage(read_input, 0.0)?;
        let v_occupied = inverter.output_voltage(read_input, trap_amplitude)?;
        let raw_swing = (v_empty - v_occupied).abs();
        let gain = if raw_swing > 0.0 {
            0.24 / raw_swing
        } else {
            240.0
        };
        TelegraphNoiseSource::new(inverter, trap, read_input, gain, 1.0)
    }

    /// The two output voltage levels (trap empty, trap occupied) after
    /// amplification and clipping.
    ///
    /// # Errors
    ///
    /// Propagates inverter bias-point errors.
    pub fn output_levels(&self) -> Result<(f64, f64), LogicError> {
        let empty = self.inverter.output_voltage(self.read_input, 0.0)?;
        let occupied = self
            .inverter
            .output_voltage(self.read_input, self.trap_amplitude())?;
        let mid = 0.5 * (empty + occupied);
        let amplify = |v: f64| {
            (self.amplifier_gain * (v - mid) + 0.5 * self.amplifier_supply)
                .clamp(0.0, self.amplifier_supply)
        };
        Ok((amplify(empty), amplify(occupied)))
    }

    fn trap_amplitude(&self) -> f64 {
        self.trap.amplitude()
    }

    /// Generates an output-voltage trace sampled every `dt` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] for a non-positive `dt` or an
    /// empty request, and propagates bias-point errors.
    pub fn sample_trace<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        dt: f64,
        samples: usize,
    ) -> Result<Vec<f64>, LogicError> {
        if !(dt > 0.0) || samples == 0 {
            return Err(LogicError::InvalidArgument(
                "sampling needs a positive dt and at least one sample".into(),
            ));
        }
        let (v_empty, v_occupied) = self.output_levels()?;
        let mut trace = Vec::with_capacity(samples);
        for _ in 0..samples {
            self.trap.advance(rng, dt);
            trace.push(if self.trap.is_occupied() {
                v_occupied
            } else {
                v_empty
            });
        }
        Ok(trace)
    }

    /// RMS deviation from the mean of a trace — the figure Uchida et al.
    /// quote as 0.12 V.
    #[must_use]
    pub fn rms_noise(trace: &[f64]) -> f64 {
        let mean = stats::mean(trace);
        let centred: Vec<f64> = trace.iter().map(|v| v - mean).collect();
        stats::rms(&centred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validation() {
        let inverter = SetInverter::reference().unwrap();
        let trap = RandomTelegraphProcess::new(0.2, 1e6, 1e6).unwrap();
        assert!(TelegraphNoiseSource::new(inverter.clone(), trap.clone(), 0.0, 0.0, 1.0).is_err());
        assert!(TelegraphNoiseSource::new(inverter, trap, 0.0, 100.0, 0.0).is_err());
    }

    #[test]
    fn output_levels_are_distinct_and_within_rails() {
        let source = TelegraphNoiseSource::reference().unwrap();
        let (empty, occupied) = source.output_levels().unwrap();
        assert!((0.0..=1.0).contains(&empty));
        assert!((0.0..=1.0).contains(&occupied));
        assert!(
            (empty - occupied).abs() > 0.05,
            "the trap must move the amplified output visibly: {empty} vs {occupied}"
        );
    }

    #[test]
    fn rms_noise_is_of_order_hundred_millivolts() {
        let mut source = TelegraphNoiseSource::reference().unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        // Sample slower than the trap switches so the trace toggles freely.
        let trace = source.sample_trace(&mut rng, 5e-6, 4000).unwrap();
        let rms = TelegraphNoiseSource::rms_noise(&trace);
        assert!(
            rms > 0.09 && rms < 0.14,
            "RMS noise should be close to the 0.12 V figure, got {rms}"
        );
    }

    #[test]
    fn sampling_validates_arguments() {
        let mut source = TelegraphNoiseSource::reference().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(source.sample_trace(&mut rng, 0.0, 10).is_err());
        assert!(source.sample_trace(&mut rng, 1e-6, 0).is_err());
    }

    #[test]
    fn rms_of_constant_trace_is_zero() {
        assert_eq!(TelegraphNoiseSource::rms_noise(&[0.3, 0.3, 0.3]), 0.0);
    }
}
