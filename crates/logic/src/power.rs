//! Power dissipation of single-electron logic versus CMOS.
//!
//! Mahapatra et al. (reference \[4\] of the paper) analysed the power budget
//! of SET logic with a SPICE-level model; the paper cites that analysis as
//! part of the case that chip area and power — not speed — are the real
//! strong points of single-electronics. The models here follow the same
//! structure: a dynamic term proportional to the charge moved per switching
//! event and a static (leakage) term, for a single-electron gate and for a
//! CMOS gate of the same logical function.

use crate::error::LogicError;
use se_orthodox::set::SingleElectronTransistor;
use se_units::constants::E;

/// Power model of a level-coded SET logic gate (an inverter-class cell).
#[derive(Debug, Clone)]
pub struct SetLogicPowerModel {
    set: SingleElectronTransistor,
    /// Supply / signal voltage, volt.
    pub supply: f64,
    /// Number of electrons transferred per switching event.
    pub electrons_per_switch: f64,
    /// Operating temperature, kelvin.
    pub temperature: f64,
}

impl SetLogicPowerModel {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] for non-positive supply or
    /// electrons-per-switch, or a negative temperature.
    pub fn new(
        set: SingleElectronTransistor,
        supply: f64,
        electrons_per_switch: f64,
        temperature: f64,
    ) -> Result<Self, LogicError> {
        if !(supply > 0.0) || !(electrons_per_switch > 0.0) {
            return Err(LogicError::InvalidArgument(
                "supply and electrons per switch must be positive".into(),
            ));
        }
        if temperature < 0.0 || !temperature.is_finite() {
            return Err(LogicError::InvalidArgument(format!(
                "temperature must be non-negative, got {temperature}"
            )));
        }
        Ok(SetLogicPowerModel {
            set,
            supply,
            electrons_per_switch,
            temperature,
        })
    }

    /// Reference model: the reference SET switched by ~10 electrons per
    /// event at a 10 mV signal level, 4.2 K.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation.
    pub fn reference() -> Result<Self, LogicError> {
        let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3)?;
        SetLogicPowerModel::new(set, 10e-3, 10.0, 4.2)
    }

    /// Dynamic power at clock frequency `frequency`: every switching event
    /// moves `electrons_per_switch` electrons through the supply voltage.
    #[must_use]
    pub fn dynamic_power(&self, frequency: f64) -> f64 {
        self.electrons_per_switch * E * self.supply * frequency.max(0.0)
    }

    /// Static power: the blockade leakage current of the SET at the supply
    /// bias times the supply voltage.
    ///
    /// # Errors
    ///
    /// Propagates physics errors.
    pub fn static_power(&self) -> Result<f64, LogicError> {
        let leakage = self
            .set
            .current(self.supply, 0.0, 0.0, self.temperature)?
            .abs();
        Ok(leakage * self.supply)
    }

    /// Total power at the given clock frequency.
    ///
    /// # Errors
    ///
    /// Propagates physics errors.
    pub fn total_power(&self, frequency: f64) -> Result<f64, LogicError> {
        Ok(self.dynamic_power(frequency) + self.static_power()?)
    }
}

/// Power model of a minimum-size CMOS gate performing the same function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosPowerModel {
    /// Switched load capacitance, farad (interconnect + gate load).
    pub load_capacitance: f64,
    /// Supply voltage, volt.
    pub supply: f64,
    /// Static leakage current, ampere.
    pub leakage_current: f64,
}

impl CmosPowerModel {
    /// Representative 0.18 µm-class inverter driving a short wire: 2 fF
    /// load, 1.8 V supply, 1 nA leakage.
    #[must_use]
    pub fn inverter_180nm() -> Self {
        CmosPowerModel {
            load_capacitance: 2e-15,
            supply: 1.8,
            leakage_current: 1e-9,
        }
    }

    /// Dynamic power `C·V²·f`.
    #[must_use]
    pub fn dynamic_power(&self, frequency: f64) -> f64 {
        self.load_capacitance * self.supply * self.supply * frequency.max(0.0)
    }

    /// Static power `I_leak·V`.
    #[must_use]
    pub fn static_power(&self) -> f64 {
        self.leakage_current * self.supply
    }

    /// Total power at the given clock frequency.
    #[must_use]
    pub fn total_power(&self, frequency: f64) -> f64 {
        self.dynamic_power(frequency) + self.static_power()
    }
}

/// One row of the power-comparison table (experiment E9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerComparisonRow {
    /// Clock frequency, hertz.
    pub frequency: f64,
    /// Single-electron gate power, watt.
    pub set_power: f64,
    /// CMOS gate power, watt.
    pub cmos_power: f64,
    /// CMOS-to-SET power ratio.
    pub ratio: f64,
}

/// Builds the power-versus-frequency comparison table.
///
/// # Errors
///
/// Propagates model errors.
pub fn power_comparison(
    set_model: &SetLogicPowerModel,
    cmos_model: &CmosPowerModel,
    frequencies: &[f64],
) -> Result<Vec<PowerComparisonRow>, LogicError> {
    frequencies
        .iter()
        .map(|&frequency| {
            let set_power = set_model.total_power(frequency)?;
            let cmos_power = cmos_model.total_power(frequency);
            Ok(PowerComparisonRow {
                frequency,
                set_power,
                cmos_power,
                ratio: cmos_power / set_power,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validation() {
        let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
        assert!(SetLogicPowerModel::new(set.clone(), 0.0, 1.0, 1.0).is_err());
        assert!(SetLogicPowerModel::new(set.clone(), 1e-3, 0.0, 1.0).is_err());
        assert!(SetLogicPowerModel::new(set, 1e-3, 1.0, -1.0).is_err());
    }

    #[test]
    fn dynamic_power_scales_linearly_with_frequency() {
        let model = SetLogicPowerModel::reference().unwrap();
        let p1 = model.dynamic_power(1e9);
        let p2 = model.dynamic_power(2e9);
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
        assert_eq!(model.dynamic_power(-5.0), 0.0);
    }

    #[test]
    fn set_gate_power_is_orders_of_magnitude_below_cmos() {
        let set_model = SetLogicPowerModel::reference().unwrap();
        let cmos_model = CmosPowerModel::inverter_180nm();
        let rows = power_comparison(&set_model, &cmos_model, &[1e6, 1e8, 1e9]).unwrap();
        for row in &rows {
            assert!(
                row.ratio > 1e3,
                "CMOS should dissipate orders of magnitude more at {} Hz (ratio {})",
                row.frequency,
                row.ratio
            );
        }
        // At 1 GHz the dynamic term dominates both models: the ratio is set
        // by (C·V²)/(n·e·V) ≈ 4×10⁴ here.
        let ratio_1ghz = rows.last().unwrap().ratio;
        assert!(ratio_1ghz > 1e4 && ratio_1ghz < 1e6, "ratio {ratio_1ghz}");
    }

    #[test]
    fn static_power_is_negligible_in_blockade() {
        let model = SetLogicPowerModel::reference().unwrap();
        let static_power = model.static_power().unwrap();
        let dynamic_power = model.dynamic_power(1e6);
        assert!(
            static_power < dynamic_power,
            "blockade leakage {static_power} should not dominate {dynamic_power}"
        );
    }

    #[test]
    fn cmos_model_totals_add_up() {
        let cmos = CmosPowerModel::inverter_180nm();
        let total = cmos.total_power(1e8);
        assert!((total - cmos.dynamic_power(1e8) - cmos.static_power()).abs() < 1e-18);
        assert!(cmos.static_power() > 0.0);
    }
}
