//! Statistical tests for generated bitstreams.
//!
//! A small battery in the spirit of the NIST SP 800-22 suite, sized for the
//! bitstream lengths the SET/CMOS random-number generator produces in the
//! experiments: monobit frequency, runs, serial correlation and a block
//! chi-squared test. Each test reports a statistic and a pass/fail verdict
//! at roughly the 1 % significance level.

use crate::error::LogicError;
use se_numeric::histogram::Histogram;
use se_numeric::stats;

/// Outcome of one statistical test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestOutcome {
    /// The test statistic (z-score or χ² value, see the test description).
    pub statistic: f64,
    /// Whether the bitstream passes at the ~1 % significance level.
    pub passed: bool,
}

/// Combined report of the whole battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomnessReport {
    /// Monobit frequency test (z-score of the ones count).
    pub monobit: TestOutcome,
    /// Runs test (z-score of the number of runs).
    pub runs: TestOutcome,
    /// Lag-1 serial correlation test (correlation coefficient).
    pub serial_correlation: TestOutcome,
    /// Chi-squared uniformity of 4-bit blocks.
    pub block_chi_squared: TestOutcome,
}

impl RandomnessReport {
    /// Returns `true` if every test in the battery passed.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.monobit.passed
            && self.runs.passed
            && self.serial_correlation.passed
            && self.block_chi_squared.passed
    }

    /// Evaluates the whole battery on a bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] if fewer than 128 bits are
    /// supplied (the tests are meaningless below that).
    pub fn evaluate(bits: &[bool]) -> Result<Self, LogicError> {
        if bits.len() < 128 {
            return Err(LogicError::InvalidArgument(format!(
                "the randomness battery needs at least 128 bits, got {}",
                bits.len()
            )));
        }
        Ok(RandomnessReport {
            monobit: monobit_test(bits),
            runs: runs_test(bits),
            serial_correlation: serial_correlation_test(bits),
            block_chi_squared: block_chi_squared_test(bits),
        })
    }
}

/// Monobit frequency test: the number of ones should be within ~2.6σ of
/// `n/2` for a fair stream.
#[must_use]
pub fn monobit_test(bits: &[bool]) -> TestOutcome {
    let n = bits.len() as f64;
    let ones = bits.iter().filter(|&&b| b).count() as f64;
    let z = (ones - n / 2.0) / (0.5 * n.sqrt());
    TestOutcome {
        statistic: z,
        passed: z.abs() < 2.58,
    }
}

/// Runs test: the number of maximal same-value runs should match the
/// expectation `2·n·p·(1−p) + 1` for a stream with ones-fraction `p`.
#[must_use]
pub fn runs_test(bits: &[bool]) -> TestOutcome {
    let n = bits.len() as f64;
    let p = bits.iter().filter(|&&b| b).count() as f64 / n;
    if p == 0.0 || p == 1.0 {
        return TestOutcome {
            statistic: f64::INFINITY,
            passed: false,
        };
    }
    let runs = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count();
    let expected = 2.0 * n * p * (1.0 - p) + 1.0;
    let variance = 2.0 * n * p * (1.0 - p) * (2.0 * n * p * (1.0 - p) - 1.0) / (n - 1.0);
    let z = (runs as f64 - expected) / variance.sqrt().max(1e-12);
    TestOutcome {
        statistic: z,
        passed: z.abs() < 2.58,
    }
}

/// Lag-1 serial correlation: adjacent bits of a fair stream are
/// uncorrelated.
#[must_use]
pub fn serial_correlation_test(bits: &[bool]) -> TestOutcome {
    let values: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    let correlation = stats::autocorrelation(&values, 1);
    // The standard error of an autocorrelation estimate is ≈ 1/√n.
    let threshold = 2.58 / (bits.len() as f64).sqrt();
    TestOutcome {
        statistic: correlation,
        passed: correlation.abs() < threshold,
    }
}

/// Chi-squared uniformity of non-overlapping 4-bit blocks (16 bins, 15
/// degrees of freedom; the 1 % critical value is 30.58).
#[must_use]
pub fn block_chi_squared_test(bits: &[bool]) -> TestOutcome {
    let mut histogram = Histogram::new(0.0, 16.0, 16).expect("static bins are valid");
    for chunk in bits.chunks_exact(4) {
        let value = chunk
            .iter()
            .fold(0usize, |acc, &b| (acc << 1) | usize::from(b));
        histogram.add(value as f64 + 0.5);
    }
    let chi2 = histogram.chi_squared_uniform();
    TestOutcome {
        statistic: chi2,
        passed: chi2 < 30.58,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fair_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn battery_requires_enough_bits() {
        assert!(RandomnessReport::evaluate(&[true; 10]).is_err());
    }

    #[test]
    fn fair_random_bits_pass_everything() {
        let bits = fair_bits(8192, 3);
        let report = RandomnessReport::evaluate(&bits).unwrap();
        assert!(report.all_passed(), "fair stream failed: {report:?}");
    }

    #[test]
    fn all_ones_fails_monobit_and_runs() {
        let bits = vec![true; 1024];
        let report = RandomnessReport::evaluate(&bits).unwrap();
        assert!(!report.monobit.passed);
        assert!(!report.runs.passed);
        assert!(!report.all_passed());
    }

    #[test]
    fn alternating_bits_fail_runs_and_correlation() {
        let bits: Vec<bool> = (0..1024).map(|i| i % 2 == 0).collect();
        let report = RandomnessReport::evaluate(&bits).unwrap();
        // Perfectly balanced, so monobit passes...
        assert!(report.monobit.passed);
        // ...but the structure is caught by the runs and correlation tests.
        assert!(!report.runs.passed);
        assert!(!report.serial_correlation.passed);
    }

    #[test]
    fn strongly_biased_bits_fail_block_test() {
        let mut rng = StdRng::seed_from_u64(9);
        let bits: Vec<bool> = (0..4096).map(|_| rng.gen::<f64>() < 0.8).collect();
        let report = RandomnessReport::evaluate(&bits).unwrap();
        assert!(!report.block_chi_squared.passed);
        assert!(!report.monobit.passed);
    }

    #[test]
    fn individual_tests_report_statistics() {
        let bits = fair_bits(2048, 11);
        assert!(monobit_test(&bits).statistic.abs() < 3.0);
        assert!(runs_test(&bits).statistic.is_finite());
        assert!(serial_correlation_test(&bits).statistic.abs() < 0.1);
        assert!(block_chi_squared_test(&bits).statistic >= 0.0);
        // Degenerate stream for the runs test.
        assert!(!runs_test(&[true; 256]).passed);
    }
}
