//! The SET/CMOS random-number generator of Uchida et al. and its comparison
//! against a conventional CMOS generator.
//!
//! The generator chain is: a single charge trap produces a random telegraph
//! signal on a SET ([`crate::noise`]), the MOSFET in series amplifies it to
//! CMOS levels, a clocked comparator samples it into raw bits, and an
//! optional von Neumann corrector removes residual bias. The headline
//! numbers quoted in the paper — about seven orders of magnitude lower power
//! and eight orders of magnitude smaller area than a CMOS random-number
//! generator, enabled by the large 0.12 V-RMS telegraph noise — are captured
//! by [`RngComparison`], whose baseline constants are documented rather than
//! measured (we have no fab).

use crate::error::LogicError;
use crate::noise::TelegraphNoiseSource;
use rand::Rng;

/// The clocked SET/CMOS random-number generator.
#[derive(Debug, Clone)]
pub struct SetMosRng {
    source: TelegraphNoiseSource,
    /// Comparator threshold, volt.
    threshold: f64,
    /// Sampling period, seconds.
    sampling_period: f64,
    /// Apply the von Neumann corrector to the raw comparator bits.
    von_neumann: bool,
}

impl SetMosRng {
    /// Creates a generator from a noise source.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] for a non-positive sampling
    /// period.
    pub fn new(
        source: TelegraphNoiseSource,
        threshold: f64,
        sampling_period: f64,
        von_neumann: bool,
    ) -> Result<Self, LogicError> {
        if !(sampling_period > 0.0) || !sampling_period.is_finite() {
            return Err(LogicError::InvalidArgument(format!(
                "sampling period must be positive, got {sampling_period}"
            )));
        }
        Ok(SetMosRng {
            source,
            threshold,
            sampling_period,
            von_neumann,
        })
    }

    /// The Uchida-style reference generator: the reference noise source,
    /// a mid-rail comparator threshold, a sampling clock ten times slower
    /// than the trap switching rate, and the von Neumann corrector enabled.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn reference() -> Result<Self, LogicError> {
        let source = TelegraphNoiseSource::reference()?;
        SetMosRng::new(source, 0.5, 1e-5, true)
    }

    /// Generates `count` output bits.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidArgument`] if `count == 0`, and
    /// propagates noise-source errors.
    pub fn generate<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        count: usize,
    ) -> Result<Vec<bool>, LogicError> {
        if count == 0 {
            return Err(LogicError::InvalidArgument(
                "at least one bit must be requested".into(),
            ));
        }
        let mut bits = Vec::with_capacity(count);
        // Generate in chunks so the von Neumann corrector's variable yield
        // does not force one enormous trace allocation. A stall guard stops
        // the loop if the comparator never toggles (e.g. a mis-biased noise
        // source), instead of spinning forever.
        let mut stalled_chunks = 0;
        while bits.len() < count {
            if stalled_chunks >= 3 {
                return Err(LogicError::InvalidArgument(
                    "the comparator output never toggles; check the noise-source bias and threshold"
                        .into(),
                ));
            }
            let needed = count - bits.len();
            let raw_samples = if self.von_neumann {
                // The corrector keeps ~1/4 of pairs, so oversample by 10 to
                // make forward progress even for biased streams.
                (needed * 10).max(64)
            } else {
                needed
            };
            let trace = self
                .source
                .sample_trace(rng, self.sampling_period, raw_samples)?;
            let raw: Vec<bool> = trace.iter().map(|&v| v > self.threshold).collect();
            let before = bits.len();
            if self.von_neumann {
                bits.extend(von_neumann_corrector(&raw));
            } else {
                bits.extend(raw);
            }
            if bits.len() == before {
                stalled_chunks += 1;
            } else {
                stalled_chunks = 0;
            }
        }
        bits.truncate(count);
        Ok(bits)
    }
}

/// Von Neumann corrector: maps bit pairs `01 → 0`, `10 → 1` and discards
/// `00`/`11`, removing any stationary bias at the cost of throughput.
#[must_use]
pub fn von_neumann_corrector(raw: &[bool]) -> Vec<bool> {
    raw.chunks_exact(2)
        .filter_map(|pair| match (pair[0], pair[1]) {
            (false, true) => Some(false),
            (true, false) => Some(true),
            _ => None,
        })
        .collect()
}

/// Power/area comparison between the SET/CMOS generator and a conventional
/// CMOS generator.
///
/// The baseline constants are representative published figures (documented
/// substitutes for the fabricated devices we cannot measure): a CMOS
/// ring-oscillator/LFSR-class generator dissipating milliwatts over
/// ~10⁵ µm², against a single SET/MOSFET cell dissipating below a nanowatt
/// over ~10⁻³ µm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngComparison {
    /// Power of the SET/CMOS generator, watt.
    pub set_mos_power: f64,
    /// Active area of the SET/CMOS generator, square metres.
    pub set_mos_area: f64,
    /// Power of the CMOS baseline generator, watt.
    pub cmos_power: f64,
    /// Active area of the CMOS baseline generator, square metres.
    pub cmos_area: f64,
    /// RMS amplitude of the SET telegraph noise, volt.
    pub set_noise_rms: f64,
    /// RMS amplitude of the thermal noise a CMOS generator works with, volt.
    pub cmos_noise_rms: f64,
}

impl RngComparison {
    /// The comparison quoted by the paper, with the SET noise RMS supplied
    /// by an actual simulation of the noise source.
    #[must_use]
    pub fn with_measured_noise(set_noise_rms: f64) -> Self {
        RngComparison {
            // One SET biased at a few millivolts drawing nanoamperes plus a
            // minimum-size MOSFET stage clocked at ~100 kHz.
            set_mos_power: 3e-10,
            // A single SET island plus one minimum-size transistor.
            set_mos_area: 1e-15, // 10⁻³ µm²
            // Ring-oscillator + LFSR + post-processing block.
            cmos_power: 3e-3,
            cmos_area: 1e-7, // 10⁵ µm²
            set_noise_rms,
            cmos_noise_rms: 15e-6, // tens of microvolts of thermal noise
        }
    }

    /// Power advantage of the SET/CMOS generator (orders of magnitude).
    #[must_use]
    pub fn power_orders_of_magnitude(&self) -> f64 {
        (self.cmos_power / self.set_mos_power).log10()
    }

    /// Area advantage of the SET/CMOS generator (orders of magnitude).
    #[must_use]
    pub fn area_orders_of_magnitude(&self) -> f64 {
        (self.cmos_area / self.set_mos_area).log10()
    }

    /// Noise-amplitude advantage (orders of magnitude) — the paper's "four
    /// orders of magnitude higher telegraphic noise".
    #[must_use]
    pub fn noise_orders_of_magnitude(&self) -> f64 {
        (self.set_noise_rms / self.cmos_noise_rms).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomness::RandomnessReport;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validation() {
        let source = TelegraphNoiseSource::reference().unwrap();
        assert!(SetMosRng::new(source, 0.5, 0.0, true).is_err());
        let mut rng = StdRng::seed_from_u64(5);
        let mut generator = SetMosRng::reference().unwrap();
        assert!(generator.generate(&mut rng, 0).is_err());
    }

    #[test]
    fn generates_the_requested_number_of_bits() {
        let mut generator = SetMosRng::reference().unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        let bits = generator.generate(&mut rng, 500).unwrap();
        assert_eq!(bits.len(), 500);
        assert!(bits.iter().any(|&b| b));
        assert!(bits.iter().any(|&b| !b));
    }

    #[test]
    fn corrected_bitstream_passes_the_randomness_battery() {
        let mut generator = SetMosRng::reference().unwrap();
        let mut rng = StdRng::seed_from_u64(2718);
        let bits = generator.generate(&mut rng, 4096).unwrap();
        let report = RandomnessReport::evaluate(&bits).unwrap();
        assert!(
            report.all_passed(),
            "SET/CMOS RNG output failed the battery: {report:?}"
        );
    }

    #[test]
    fn von_neumann_corrector_removes_bias() {
        // Heavily biased raw bits.
        let mut rng = StdRng::seed_from_u64(7);
        let raw: Vec<bool> = (0..20_000)
            .map(|_| rand::Rng::gen::<f64>(&mut rng) < 0.8)
            .collect();
        let corrected = von_neumann_corrector(&raw);
        assert!(!corrected.is_empty());
        let ones = corrected.iter().filter(|&&b| b).count() as f64;
        let fraction = ones / corrected.len() as f64;
        assert!(
            (fraction - 0.5).abs() < 0.05,
            "corrected fraction {fraction} should be unbiased"
        );
    }

    #[test]
    fn von_neumann_corrector_known_mapping() {
        let raw = [false, true, true, false, true, true, false, false];
        assert_eq!(von_neumann_corrector(&raw), vec![false, true]);
    }

    #[test]
    fn comparison_reproduces_the_papers_orders_of_magnitude() {
        let comparison = RngComparison::with_measured_noise(0.12);
        assert!((comparison.power_orders_of_magnitude() - 7.0).abs() < 0.5);
        assert!((comparison.area_orders_of_magnitude() - 8.0).abs() < 0.5);
        assert!((comparison.noise_orders_of_magnitude() - 4.0).abs() < 0.5);
    }
}
