//! Batched ensemble kinetic Monte-Carlo: N replicas of one system stepped
//! in lockstep on the struct-of-arrays hot path.
//!
//! A [`BatchedKmcEngine`] owns N independent Gillespie walks of the *same*
//! [`TunnelSystem`] — the ensemble shape behind seed repeats, stationary
//! statistics and noise estimates. The physics state lives in a
//! [`BatchedLiveState`] / [`BatchedRateContext`] pair (see
//! [`se_orthodox::batch`]), so every lockstep round evaluates all replicas'
//! rates in one junction-major pass over the shared per-junction columns
//! instead of N cache-cold scalar walks.
//!
//! Randomness stays strictly per replica: each lane owns its own `StdRng`,
//! seeded via the se-exec discipline ([`se_engine::derive_seed`] of a base
//! seed and the replica index in [`BatchedKmcEngine::from_base_seed`]).
//! Combined with the bit-identity contract of the SoA state (same f64
//! operations in the same order as the scalar [`LiveState`] path) this
//! makes replica `k` **bit-identical** to a standalone
//! [`MonteCarloSimulator`] running seed `k` — same event sequence, same
//! times, same transfer counters — which is what lets the ensemble layers
//! swap the batched engine in for a loop of scalar runs without changing a
//! single published number.
//!
//! Frozen replicas (total rate zero — deep blockade at zero temperature)
//! retire from the lockstep front without stalling the batch: the remaining
//! lanes keep stepping through subset rate fills, and a retired lane costs
//! nothing until a drive change thaws it.
//!
//! [`LiveState`]: se_orthodox::LiveState
//! [`MonteCarloSimulator`]: crate::MonteCarloSimulator

use crate::error::MonteCarloError;
use crate::kmc::{select_event_from, select_with_target, SimulationOptions};
use crate::observables::RunResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use se_engine::derive_seed;
use se_numeric::sampling::{
    exponential_waiting_time, ln_unit, unit_interval_open, validate_waiting_rate,
};
use se_orthodox::{
    BatchedEventRateTable, BatchedLiveState, BatchedRateContext, ChargeState, Direction,
    TunnelEvent, TunnelSystem,
};
use se_units::constants::E;
use std::collections::HashMap;

/// What one replica did during a [`BatchedKmcEngine::step_and_observe`]
/// round.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaObservation {
    /// Replica index within the batch.
    pub replica: usize,
    /// The replica's simulation clock after the round, in seconds.
    pub time: f64,
    /// The tunnel event the replica executed, or `None` if it is frozen.
    pub event: Option<TunnelEvent>,
    /// Whether the replica is frozen (no event has a non-zero rate).
    pub frozen: bool,
    /// Number of excess electrons per island after the round.
    pub electrons: Vec<i64>,
}

/// N lockstep replicas of one [`TunnelSystem`], advanced by kinetic
/// Monte-Carlo over SoA-packed state.
///
/// The mutate-then-run protocol matches the scalar
/// [`MonteCarloSimulator`]: change drives through [`Self::system_mut`]
/// (the change applies to every replica — the batch shares one system),
/// then step; pending changes fold into each lane lazily at its next step,
/// exactly when the scalar engine would fold them.
///
/// [`MonteCarloSimulator`]: crate::MonteCarloSimulator
#[derive(Debug, Clone)]
pub struct BatchedKmcEngine {
    system: TunnelSystem,
    options: SimulationOptions,
    /// One independent RNG per replica — the batch never shares randomness.
    rngs: Vec<StdRng>,
    /// SoA charge states and cached potentials, one lane per replica.
    live: BatchedLiveState,
    /// Shared rate table + batched fill over the potential planes.
    rate_ctx: BatchedRateContext,
    /// Per-lane incremental rate tables + selection trees; present iff the
    /// kernel resolves to the tree path ([`KmcKernel::uses_tree`], so
    /// [`KmcKernel::Auto`] picks it for large circuits). Lane `r`'s table
    /// runs the identical maintenance code as a scalar [`EventRateTable`]
    /// over lane `r`'s potential plane, so its rates — and selections — are
    /// bit-identical to a standalone incremental simulator.
    ///
    /// [`KmcKernel::uses_tree`]: crate::kmc::KmcKernel::uses_tree
    /// [`KmcKernel::Auto`]: crate::kmc::KmcKernel::Auto
    /// [`EventRateTable`]: se_orthodox::EventRateTable
    tables: Option<Vec<BatchedEventRateTable>>,
    /// Event-major rate planes: `rates[e * replicas + r]`. Only the
    /// full-recompute path ([`crate::kmc::KmcKernel::FullRecompute`])
    /// writes it.
    rates: Vec<f64>,
    /// Per-replica total rates, accumulated in scalar junction order.
    totals: Vec<f64>,
    /// Per-replica pending-drive flags: set for every lane by
    /// [`Self::system_mut`], cleared lane-by-lane as each joins a step
    /// front (the scalar engine's lazy `sync_drives`, per lane).
    drives_dirty: Vec<bool>,
    times: Vec<f64>,
    /// Replica-major transfer counters: `net_transfers[r * junctions + j]`.
    net_transfers: Vec<i64>,
    events_executed: Vec<u64>,
    frozen: Vec<bool>,
    /// Scratch: the replicas taking part in the current lockstep round.
    front: Vec<usize>,
    /// Scratch: per-round outcomes `(replica, executed event or frozen)`.
    round: Vec<(usize, Option<TunnelEvent>)>,
    /// Per-event decode table for the branchless apply phase:
    /// `[from_slot, to_slot]` per canonical event index (slots per
    /// [`BatchedLiveState::endpoint_slot`] — island index or the spill
    /// slot).
    event_slots: Vec<[usize; 2]>,
    /// Scratch: per-replica selection targets drawn in the RNG phase.
    targets: Vec<f64>,
    /// Scratch: per-replica waiting-time uniforms of the current round —
    /// the RNG pass fills this plane serially (RNG streams are per-lane
    /// state), the clock pass consumes it branch-free.
    wait_u: Vec<f64>,
    /// Scratch: per-replica selection uniforms of the current round, drawn
    /// immediately after the waiting-time uniform to preserve the scalar
    /// per-lane draw order.
    sel_u: Vec<f64>,
    /// Scratch: per-replica running prefix sums of the mask-select pass.
    select_acc: Vec<f64>,
    /// Scratch: per-replica hit masks — bit `e` set when event `e` has a
    /// positive rate and its prefix sum exceeds the replica's target.
    select_hits: Vec<u64>,
    /// Scratch: per-replica chosen event indices of the current round.
    chosen: Vec<usize>,
}

impl BatchedKmcEngine {
    /// Creates a batch with one replica per entry of `seeds`, every lane
    /// starting from the charge-neutral state. `options.seed` is ignored —
    /// the batch's randomness is fully determined by `seeds` (replica `r`
    /// is bit-identical to a standalone scalar simulator built with
    /// `options.with_seed(seeds[r])`).
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] for an empty seed list
    /// or an invalid temperature.
    pub fn new(
        system: TunnelSystem,
        options: SimulationOptions,
        seeds: &[u64],
    ) -> Result<Self, MonteCarloError> {
        if seeds.is_empty() {
            return Err(MonteCarloError::InvalidArgument(
                "a batch needs at least one replica seed".into(),
            ));
        }
        if options.temperature < 0.0 || !options.temperature.is_finite() {
            return Err(MonteCarloError::InvalidArgument(format!(
                "temperature must be non-negative and finite, got {}",
                options.temperature
            )));
        }
        let replicas = seeds.len();
        let islands = system.island_count();
        let junctions = system.junctions().len();
        let rate_ctx = BatchedRateContext::new(&system, options.temperature, replicas)?;
        let live = BatchedLiveState::new(&system, ChargeState::neutral(islands), replicas)?;
        let event_slots = (0..system.event_count())
            .map(|e| {
                let (from, to) = system.event_endpoints(system.event(e));
                [live.endpoint_slot(from), live.endpoint_slot(to)]
            })
            .collect();
        let tables = options.kernel.uses_tree(system.event_count()).then(|| {
            (0..replicas)
                .map(|r| BatchedEventRateTable::new(&system, rate_ctx.context(), &live, r))
                .collect()
        });
        Ok(BatchedKmcEngine {
            system,
            options,
            rngs: seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect(),
            live,
            rate_ctx,
            tables,
            rates: vec![0.0; 2 * junctions * replicas],
            totals: vec![0.0; replicas],
            drives_dirty: vec![false; replicas],
            times: vec![0.0; replicas],
            net_transfers: vec![0; junctions * replicas],
            events_executed: vec![0; replicas],
            frozen: vec![false; replicas],
            front: Vec::with_capacity(replicas),
            round: Vec::with_capacity(replicas),
            event_slots,
            targets: vec![0.0; replicas],
            wait_u: vec![0.0; replicas],
            sel_u: vec![0.0; replicas],
            select_acc: vec![0.0; replicas],
            select_hits: vec![0; replicas],
            chosen: vec![0; replicas],
        })
    }

    /// [`Self::new`] with the se-exec seed discipline: replica `r` is
    /// seeded with [`derive_seed`]`(base_seed, r)`, so an ensemble job that
    /// derives per-repeat seeds from one base seed gets the identical
    /// per-replica streams whether it loops scalar simulators or runs this
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] for `replicas == 0` or
    /// an invalid temperature.
    pub fn from_base_seed(
        system: TunnelSystem,
        options: SimulationOptions,
        replicas: usize,
        base_seed: u64,
    ) -> Result<Self, MonteCarloError> {
        let seeds: Vec<u64> = (0..replicas as u64)
            .map(|r| derive_seed(base_seed, r))
            .collect();
        Self::new(system, options, &seeds)
    }

    /// Number of replicas in the batch.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.totals.len()
    }

    /// The shared tunnel system being simulated.
    #[must_use]
    pub fn system(&self) -> &TunnelSystem {
        &self.system
    }

    /// The options the batch was created with.
    #[must_use]
    pub fn options(&self) -> &SimulationOptions {
        &self.options
    }

    /// Mutable access to the shared tunnel system — a drive or background
    /// change applies to **every** replica and is folded into each lane
    /// lazily at its next step, exactly like the scalar engine's
    /// mutate-then-run protocol.
    pub fn system_mut(&mut self) -> &mut TunnelSystem {
        self.drives_dirty.fill(true);
        &mut self.system
    }

    /// Replica `r`'s simulation clock in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn time(&self, r: usize) -> f64 {
        self.times[r]
    }

    /// Whether replica `r` is frozen (its last step found no executable
    /// event).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn is_frozen(&self, r: usize) -> bool {
        self.frozen[r]
    }

    /// Replica `r`'s net a→b electron transfers per junction (indexed like
    /// [`TunnelSystem::junctions`]) since the counters were last reset.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn net_transfers(&self, r: usize) -> &[i64] {
        let junctions = self.system.junctions().len();
        &self.net_transfers[r * junctions..(r + 1) * junctions]
    }

    /// Number of events replica `r` has executed since the counters were
    /// last reset.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn events_executed(&self, r: usize) -> u64 {
        self.events_executed[r]
    }

    /// Replica `r`'s current charge state (a strided gather — meant for
    /// observation, not the hot loop).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn state(&self, r: usize) -> ChargeState {
        self.live.charge_state(r)
    }

    /// Resets every replica's time, transfer counters and event counter,
    /// keeping the current charge states (used after equilibration and
    /// between sweep points) — the batch-wide
    /// [`MonteCarloSimulator::reset_counters`].
    ///
    /// [`MonteCarloSimulator::reset_counters`]:
    ///     crate::MonteCarloSimulator::reset_counters
    pub fn reset_counters_all(&mut self) {
        self.times.fill(0.0);
        self.events_executed.fill(0);
        self.frozen.fill(false);
        self.net_transfers.fill(0);
    }

    /// Rebuilds the lockstep front from a per-replica keep mask.
    fn rebuild_front(&mut self, keep: &[bool]) {
        self.front.clear();
        self.front
            .extend(keep.iter().enumerate().filter_map(|(r, &k)| k.then_some(r)));
    }

    /// One lockstep round over the replicas currently in `self.front`:
    /// sync pending drive changes into each lane, fill all lanes' rates in
    /// one batched pass (the full-batch fast path when every replica is on
    /// the front, a subset fill otherwise), then draw each lane's waiting
    /// time and event from its own RNG and apply it. Outcomes land in
    /// `self.round` as `(replica, Some(event))` or `(replica, None)` for a
    /// lane that froze this round.
    ///
    /// Per replica this performs the exact scalar
    /// [`MonteCarloSimulator::step`] sequence — sync, fill, freeze test,
    /// waiting-time draw, selection draw, apply — so lane `r`'s state and
    /// RNG stream stay bit-identical to a standalone simulator.
    ///
    /// [`MonteCarloSimulator::step`]: crate::MonteCarloSimulator::step
    fn step_front(&mut self) -> Result<(), MonteCarloError> {
        let replicas = self.replicas();
        let junctions = self.system.junctions().len();
        for idx in 0..self.front.len() {
            let r = self.front[idx];
            if self.drives_dirty[r] {
                self.live.sync_replica(&self.system, r);
                self.drives_dirty[r] = false;
            }
        }
        if let Some(tables) = &mut self.tables {
            // Incremental kernel: each lane's table is kept fresh by its
            // post-apply maintenance; `sync` folds in any pending
            // generation change (drive sync above, periodic refresh) and
            // the tree root is the lane's total.
            for idx in 0..self.front.len() {
                let r = self.front[idx];
                tables[r].sync(&self.system, self.rate_ctx.context(), &self.live);
                self.totals[r] = tables[r].total();
            }
        } else if self.front.len() == replicas {
            self.rate_ctx.fill_rates_batch(
                &self.system,
                &self.live,
                &mut self.rates,
                &mut self.totals,
            );
        } else {
            self.rate_ctx.fill_rates_subset(
                &self.system,
                &self.live,
                &mut self.rates,
                &mut self.totals,
                &self.front,
            );
        }
        self.round.clear();
        for idx in 0..self.front.len() {
            let r = self.front[idx];
            let total = self.totals[r];
            if total <= 0.0 {
                self.frozen[r] = true;
                self.round.push((r, None));
                continue;
            }
            let rng = &mut self.rngs[r];
            let dt = exponential_waiting_time(rng, total)?;
            let chosen = match &self.tables {
                Some(tables) => {
                    let target = rng.gen::<f64>() * total;
                    tables[r].select(target)
                }
                None => {
                    let lane = self.rates[r..].iter().step_by(replicas).copied();
                    select_event_from(rng, lane, total)
                }
            };
            let event = self.system.event(chosen);
            self.live.apply(&self.system, event, r);
            if let Some(tables) = &mut self.tables {
                tables[r].apply_event(&self.system, self.rate_ctx.context(), &self.live, event);
            }
            self.times[r] += dt;
            self.events_executed[r] += 1;
            match event.direction {
                Direction::AToB => self.net_transfers[r * junctions + event.junction] += 1,
                Direction::BToA => self.net_transfers[r * junctions + event.junction] -= 1,
            }
            self.frozen[r] = false;
            self.round.push((r, Some(event)));
        }
        Ok(())
    }

    /// Advances every replica through up to `rounds` full-front lockstep
    /// rounds — the branch-light fast path behind [`Self::equilibrate_all`]
    /// and [`Self::run_events_all`]. Skips the front/round machinery
    /// entirely: one batched fill, then a tight per-replica
    /// draw–select–apply loop. Returns `true` when all `rounds` completed
    /// with every replica stepping; `false` as soon as any replica froze,
    /// or immediately when a pending drive change or an already-frozen
    /// lane needs the general front path (callers finish there — the
    /// per-lane state and RNG streams are bit-identical either way).
    ///
    /// `tracker` holds replica-major occupation planes with one spill slot
    /// per replica after the islands (`occupation[r * (islands + 1) + i]`,
    /// ditto `segments`) updated with the scalar occupation-tracker
    /// arithmetic when present; the spill entries absorb the unconditional
    /// external-endpoint settles and are never read back.
    ///
    /// Each round runs four passes instead of one interleaved per-replica
    /// loop: a per-lane RNG pass filling the waiting-time and selection
    /// uniform planes (the raw draws are the only serial work — RNG
    /// streams are per-lane state), a branch-free clock pass evaluating
    /// `dt = -ln_unit(u) / total` and the selection targets across the
    /// whole plane with the polynomial log kernel
    /// ([`se_numeric::sampling::ln_unit`] — vectorizable, no libm call),
    /// a branch-free mask-select pass over the
    /// event-major rate planes, and a table-driven apply pass. Sixteen
    /// interleaved Gillespie walks are hostile to a branch predictor — the
    /// scan/skip/endpoint branches of the scalar loop carry sixteen
    /// independent histories — so the hot phases avoid data-dependent
    /// branches entirely. The selections are still bit-identical: the
    /// prefix sums include the zero rates the scalar scan skips, and adding
    /// `+0.0` to a non-negative accumulation is the identity, so bit `e` of
    /// a hit mask is set exactly when the scalar scan would have stopped at
    /// (or passed) event `e`; the first set bit is the scalar choice, and
    /// an empty mask falls back to the scalar round-off rule.
    fn lockstep_rounds(
        &mut self,
        rounds: usize,
        mut tracker: Option<(&mut [f64], &mut [f64])>,
    ) -> Result<bool, MonteCarloError> {
        if self.drives_dirty.iter().any(|&d| d) || self.frozen.iter().any(|&f| f) {
            return Ok(false);
        }
        let replicas = self.replicas();
        let junctions = self.system.junctions().len();
        let islands = self.system.island_count();
        // The mask select carries one bit per event; wider systems use the
        // scalar scan per lane instead.
        let mask_select = self.system.event_count() <= u64::BITS as usize;
        for _ in 0..rounds {
            if let Some(tables) = &mut self.tables {
                // Incremental kernel: the per-lane tables were maintained
                // by the previous round's post-apply pass; `sync` catches a
                // periodic refresh, and totals come off the tree roots
                // instead of a full junction-major refill.
                for (table, total) in tables.iter_mut().zip(&mut self.totals) {
                    table.sync(&self.system, self.rate_ctx.context(), &self.live);
                    *total = table.total();
                }
            } else {
                self.rate_ctx.fill_rates_batch(
                    &self.system,
                    &self.live,
                    &mut self.rates,
                    &mut self.totals,
                );
            }
            // RNG pass: per lane, the exact scalar draw order — the
            // guarded waiting-time uniform first, then the selection
            // uniform. Only the draws happen here (RNG streams are
            // serial per-lane state); the `ln` and the target scaling
            // run in the vectorizable clock pass below.
            let mut froze = false;
            for r in 0..replicas {
                let total = self.totals[r];
                if total <= 0.0 {
                    self.frozen[r] = true;
                    froze = true;
                    // u = 1 keeps the masked clock pass finite
                    // (ln_unit(1) = 0); the NaN selection uniform
                    // poisons the lane's mask so no hit bit can set.
                    self.wait_u[r] = 1.0;
                    self.sel_u[r] = f64::NAN;
                    continue;
                }
                validate_waiting_rate(total)?;
                let rng = &mut self.rngs[r];
                self.wait_u[r] = unit_interval_open(rng);
                self.sel_u[r] = rng.gen::<f64>();
            }
            // Clock pass: dt = -ln_unit(u) / total over the whole plane —
            // the same expression `exponential_waiting_time` evaluates per
            // scalar draw, so live lanes stay bit-identical — as pure
            // elementwise arithmetic (polynomial ln, one divide, one
            // select) that vectorizes across lanes. Frozen lanes
            // contribute an exact zero.
            for r in 0..replicas {
                let total = self.totals[r];
                let dt = -ln_unit(self.wait_u[r]) / total;
                self.times[r] += if total > 0.0 { dt } else { 0.0 };
                self.targets[r] = self.sel_u[r] * total;
            }
            // Select pass: per-lane O(log E) tree descent on the
            // incremental kernel, branch-free prefix-sum-and-compare over
            // the event-major planes otherwise.
            if let Some(tables) = &self.tables {
                for (r, table) in tables.iter().enumerate() {
                    if self.totals[r] <= 0.0 {
                        continue;
                    }
                    self.chosen[r] = table.select(self.targets[r]);
                }
            } else if mask_select {
                self.select_acc.fill(0.0);
                self.select_hits.fill(0);
                let targets = &self.targets[..];
                let select_acc = &mut self.select_acc[..];
                let select_hits = &mut self.select_hits[..];
                for (e, plane) in self.rates.chunks_exact(replicas).enumerate() {
                    let bit = 1u64 << e;
                    let lanes = plane
                        .iter()
                        .zip(select_acc.iter_mut())
                        .zip(targets.iter())
                        .zip(select_hits.iter_mut());
                    for (((&w, acc), &target), hits) in lanes {
                        *acc += w;
                        let hit = (w > 0.0) & (target < *acc);
                        *hits |= if hit { bit } else { 0 };
                    }
                }
            }
            // Resolve pass (full-recompute kernel only): each lane's chosen
            // event from its hit mask (first set bit = the scalar scan's
            // stop), the scalar scan on a mask miss (round-off fallback) or
            // a wide system.
            if self.tables.is_none() {
                for r in 0..replicas {
                    if self.totals[r] <= 0.0 {
                        continue;
                    }
                    self.chosen[r] = if mask_select && self.select_hits[r] != 0 {
                        self.select_hits[r].trailing_zeros() as usize
                    } else {
                        select_with_target(
                            self.rates.chunks_exact(replicas).map(|plane| plane[r]),
                            self.targets[r],
                        )
                    };
                }
            }
            if froze {
                // Rare: a lane froze this round. Finish the survivors one
                // by one, then hand over to the general front path.
                for r in 0..replicas {
                    if self.totals[r] <= 0.0 {
                        continue;
                    }
                    let chosen = self.chosen[r];
                    let event = self.system.event(chosen);
                    self.live.apply(&self.system, event, r);
                    if let Some(tables) = &mut self.tables {
                        tables[r].apply_event(
                            &self.system,
                            self.rate_ctx.context(),
                            &self.live,
                            event,
                        );
                    }
                    self.bookkeep_event(chosen, r, &mut tracker, islands, junctions);
                }
                return Ok(false);
            }
            // Apply pass: every lane stepped, so the store-width-aware
            // batched apply folds all lanes' events in at once, then each
            // lane's incremental table (if any) folds its own event in —
            // after the batch apply, so a lane whose periodic refresh just
            // fired refills from the refreshed potentials, exactly like
            // the scalar sequence.
            self.live.apply_all(&self.system, &self.chosen);
            for r in 0..replicas {
                let chosen = self.chosen[r];
                if let Some(tables) = &mut self.tables {
                    let event = self.system.event(chosen);
                    tables[r].apply_event(&self.system, self.rate_ctx.context(), &self.live, event);
                }
                self.bookkeep_event(chosen, r, &mut tracker, islands, junctions);
            }
        }
        Ok(true)
    }

    /// Post-apply accounting for one executed event on lane `r`: event and
    /// transfer counters plus, when a tracker is attached, the slot-based
    /// occupation settle.
    #[inline]
    fn bookkeep_event(
        &mut self,
        chosen: usize,
        r: usize,
        tracker: &mut Option<(&mut [f64], &mut [f64])>,
        islands: usize,
        junctions: usize,
    ) {
        let j = chosen >> 1;
        self.events_executed[r] += 1;
        self.net_transfers[r * junctions + j] += 1 - 2 * (chosen as i64 & 1);
        if let Some((occupation, segments)) = tracker.as_mut() {
            settle_occupation_slots(
                occupation,
                segments,
                r * (islands + 1),
                self.event_slots[chosen],
                &self.live,
                r,
                self.times[r],
            );
        }
    }

    /// Advances every non-retired replica by one tunnel event. Frozen
    /// replicas stay retired (they cost nothing) unless a drive change is
    /// pending, in which case they rejoin the front and may thaw — the
    /// batch-wide equivalent of calling [`MonteCarloSimulator::step`] once
    /// per replica. Returns the number of replicas that executed an event.
    ///
    /// [`MonteCarloSimulator::step`]: crate::MonteCarloSimulator::step
    ///
    /// # Errors
    ///
    /// Propagates waiting-time sampling errors (which cannot occur for the
    /// finite, positive totals the fill establishes first).
    pub fn step_all(&mut self) -> Result<usize, MonteCarloError> {
        let keep: Vec<bool> = (0..self.replicas())
            .map(|r| !self.frozen[r] || self.drives_dirty[r])
            .collect();
        self.rebuild_front(&keep);
        if self.front.is_empty() {
            return Ok(0);
        }
        self.step_front()?;
        Ok(self.round.iter().filter(|(_, e)| e.is_some()).count())
    }

    /// [`Self::step_all`] returning what every replica did: executed event
    /// (or frozen), clock, and post-step island occupation — the per-round
    /// observable face of the batch for trace-style consumers.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step_all`] errors.
    pub fn step_and_observe(&mut self) -> Result<Vec<ReplicaObservation>, MonteCarloError> {
        self.step_all()?;
        let stepped: HashMap<usize, Option<TunnelEvent>> = self.round.iter().copied().collect();
        Ok((0..self.replicas())
            .map(|r| ReplicaObservation {
                replica: r,
                time: self.times[r],
                event: stepped.get(&r).copied().flatten(),
                frozen: self.frozen[r],
                electrons: self.live.charge_state(r).0,
            })
            .collect())
    }

    /// Runs the equilibration phase configured in the options on every
    /// replica — each lane steps until it has executed
    /// `equilibration_events` events or freezes, with frozen lanes
    /// retiring from the front while the rest keep stepping — then resets
    /// the observable counters, exactly like the scalar
    /// [`MonteCarloSimulator::equilibrate`] per lane.
    ///
    /// [`MonteCarloSimulator::equilibrate`]:
    ///     crate::MonteCarloSimulator::equilibrate
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn equilibrate_all(&mut self) -> Result<(), MonteCarloError> {
        let goal = self.options.equilibration_events;
        if goal > 0 {
            let before = self.events_executed.clone();
            if !self.lockstep_rounds(goal, None)? {
                // General front path: lanes that already had their failed
                // (frozen) attempt simply re-confirm and retire — a
                // re-evaluation of an unchanged lane is bit-neutral.
                let mut keep: Vec<bool> = (0..self.replicas())
                    .map(|r| self.events_executed[r] - before[r] < goal as u64)
                    .collect();
                loop {
                    self.rebuild_front(&keep);
                    if self.front.is_empty() {
                        break;
                    }
                    self.step_front()?;
                    for idx in 0..self.round.len() {
                        let (r, event) = self.round[idx];
                        match event {
                            Some(_) => {
                                if self.events_executed[r] - before[r] >= goal as u64 {
                                    keep[r] = false;
                                }
                            }
                            None => keep[r] = false,
                        }
                    }
                }
            }
        }
        self.reset_counters_all();
        Ok(())
    }

    /// Runs `events` measurement events on every replica (after batch-wide
    /// equilibration) and returns one [`RunResult`] per replica — the
    /// ensemble face of [`MonteCarloSimulator::run_events`]. A replica
    /// that freezes retires early: its measurement simply ends there
    /// (`RunResult::is_frozen` reports it) while the remaining lanes keep
    /// stepping at full batch speed.
    ///
    /// [`MonteCarloSimulator::run_events`]:
    ///     crate::MonteCarloSimulator::run_events
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] if `events == 0`, and
    /// propagates step errors.
    pub fn run_events_all(&mut self, events: usize) -> Result<Vec<RunResult>, MonteCarloError> {
        if events == 0 {
            return Err(MonteCarloError::InvalidArgument(
                "a run needs at least one event".into(),
            ));
        }
        self.equilibrate_all()?;
        let islands = self.system.island_count();
        let replicas = self.replicas();
        // Replica-major occupation planes, the flat form of one scalar
        // occupation tracker per lane (same arithmetic, same order), with
        // one spill slot per replica after the islands so external
        // endpoints settle unconditionally (see `lockstep_rounds`).
        let stride = islands + 1;
        let mut occupation = vec![0.0; stride * replicas];
        let mut segments = vec![0.0; stride * replicas];
        for r in 0..replicas {
            segments[r * stride..(r + 1) * stride].fill(self.times[r]);
        }
        let before = self.events_executed.clone();
        if !self.lockstep_rounds(events, Some((&mut occupation, &mut segments)))? {
            let mut keep: Vec<bool> = (0..replicas)
                .map(|r| self.events_executed[r] - before[r] < events as u64)
                .collect();
            loop {
                self.rebuild_front(&keep);
                if self.front.is_empty() {
                    break;
                }
                self.step_front()?;
                for idx in 0..self.round.len() {
                    let (r, event) = self.round[idx];
                    match event {
                        Some(event) => {
                            let (from, to) = self.system.event_endpoints(event);
                            let slots =
                                [self.live.endpoint_slot(from), self.live.endpoint_slot(to)];
                            settle_occupation_slots(
                                &mut occupation,
                                &mut segments,
                                r * stride,
                                slots,
                                &self.live,
                                r,
                                self.times[r],
                            );
                            if self.events_executed[r] - before[r] >= events as u64 {
                                keep[r] = false;
                            }
                        }
                        None => keep[r] = false,
                    }
                }
            }
        }
        Ok((0..replicas)
            .map(|r| {
                let base = r * stride;
                let time = self.times[r];
                let occupation_time: Vec<f64> = (0..islands)
                    .map(|i| {
                        occupation[base + i]
                            + self.live.electron_count(i, r) as f64 * (time - segments[base + i])
                    })
                    .collect();
                self.collect_replica(r, occupation_time)
            })
            .collect())
    }

    /// Advances every replica's event clock to at least `t` (absolute
    /// simulation time, seconds) — the batch-wide
    /// [`MonteCarloSimulator::run_until`]. A replica that freezes jumps
    /// its clock directly to `t` and retires from the front; a later call
    /// after the drive voltages change re-evaluates its rates, so frozen
    /// lanes thaw as soon as an event becomes favourable.
    ///
    /// [`MonteCarloSimulator::run_until`]:
    ///     crate::MonteCarloSimulator::run_until
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] for a non-finite
    /// target time, and propagates step errors.
    pub fn run_until_all(&mut self, t: f64) -> Result<(), MonteCarloError> {
        if !t.is_finite() {
            return Err(MonteCarloError::InvalidArgument(format!(
                "target time must be finite, got {t}"
            )));
        }
        let mut keep: Vec<bool> = self.times.iter().map(|&now| now < t).collect();
        loop {
            self.rebuild_front(&keep);
            if self.front.is_empty() {
                break;
            }
            self.step_front()?;
            for idx in 0..self.round.len() {
                let (r, event) = self.round[idx];
                match event {
                    Some(_) => {
                        if self.times[r] >= t {
                            keep[r] = false;
                        }
                    }
                    None => {
                        self.times[r] = t;
                        keep[r] = false;
                    }
                }
            }
        }
        Ok(())
    }

    /// Assembles replica `r`'s [`RunResult`] from its counters — the exact
    /// scalar `collect` arithmetic on lane `r`'s slice.
    fn collect_replica(&self, r: usize, occupation_time: Vec<f64>) -> RunResult {
        let time = self.times[r];
        let transfers = self.net_transfers(r);
        let mut junction_currents = HashMap::new();
        let mut junction_transfers = HashMap::new();
        for (idx, junction) in self.system.junctions().iter().enumerate() {
            let net = transfers[idx];
            junction_transfers.insert(junction.name.clone(), net);
            let current = if time > 0.0 {
                // Electrons moving a→b carry conventional current b→a; report
                // the conventional current in the a→b reference direction.
                -E * net as f64 / time
            } else {
                0.0
            };
            junction_currents.insert(junction.name.clone(), current);
        }
        let mean_occupation = occupation_time
            .iter()
            .map(|&t| if time > 0.0 { t / time } else { 0.0 })
            .collect();
        RunResult::new(
            time,
            self.events_executed[r],
            junction_currents,
            junction_transfers,
            mean_occupation,
            self.frozen[r],
        )
    }
}

/// Settles the occupation segments an event's endpoints just closed — the
/// scalar `OccupationTracker::record_endpoints` arithmetic on one replica's
/// plane slice (`base = r · (islands + 1)`), addressed by endpoint *slot*
/// so both updates run unconditionally: island slots get the exact scalar
/// arithmetic (`live` supplies the **post-event** charges), external
/// endpoints land in the spill slot at index `islands`, whose accumulated
/// garbage is never read back.
#[inline]
fn settle_occupation_slots(
    occupation: &mut [f64],
    segments: &mut [f64],
    base: usize,
    slots: [usize; 2],
    live: &BatchedLiveState,
    r: usize,
    t: f64,
) {
    let [from, to] = slots;
    // The electron just left `from`: the segment that ended held n + 1.
    let n_from = live.slot_electron_count(from, r);
    occupation[base + from] += (n_from + 1) as f64 * (t - segments[base + from]);
    segments[base + from] = t;
    let n_to = live.slot_electron_count(to, r);
    occupation[base + to] += (n_to - 1) as f64 * (t - segments[base + to]);
    segments[base + to] = t;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MonteCarloSimulator;
    use se_orthodox::TunnelSystemBuilder;

    /// Symmetric SET at its conductance peak: gate charge = e/2.
    fn set_at_peak(vds: f64) -> TunnelSystem {
        let cg = 1e-18;
        let vg = E / (2.0 * cg);
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", vds);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", vg);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        b.capacitor("CG", gate, island, cg);
        b.build().unwrap()
    }

    /// Deep zero-temperature blockade: every event is uphill.
    fn blockaded() -> TunnelSystem {
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", 1e-5);
        let source = b.external("source", 0.0);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        b.build().unwrap()
    }

    #[test]
    fn replica_runs_match_standalone_simulators_bit_for_bit() {
        let options = SimulationOptions::new(1.0).with_equilibration(100);
        let base_seed = 42;
        let replicas = 5;
        let mut batch =
            BatchedKmcEngine::from_base_seed(set_at_peak(1e-3), options, replicas, base_seed)
                .unwrap();
        let batch_results = batch.run_events_all(2_000).unwrap();
        for (r, batch_result) in batch_results.iter().enumerate() {
            let seed = derive_seed(base_seed, r as u64);
            let mut scalar =
                MonteCarloSimulator::new(set_at_peak(1e-3), options.with_seed(seed)).unwrap();
            let scalar_result = scalar.run_events(2_000).unwrap();
            assert_eq!(
                batch_result.total_time().to_bits(),
                scalar_result.total_time().to_bits(),
                "replica {r} time diverged"
            );
            assert_eq!(
                batch_result.junction_transfer("JD"),
                scalar_result.junction_transfer("JD")
            );
            assert_eq!(batch_result.events(), scalar_result.events());
            assert_eq!(batch.state(r), *scalar.state());
            let occ_batch = batch_result.mean_occupation(0).unwrap();
            let occ_scalar = scalar_result.mean_occupation(0).unwrap();
            assert_eq!(occ_batch.to_bits(), occ_scalar.to_bits());
        }
    }

    #[test]
    fn run_until_matches_standalone_clock_and_transfers() {
        let options = SimulationOptions::new(1.0).with_equilibration(50);
        let mut batch = BatchedKmcEngine::from_base_seed(set_at_peak(1e-3), options, 3, 7).unwrap();
        batch.equilibrate_all().unwrap();
        batch.run_until_all(10e-9).unwrap();
        for r in 0..3 {
            let seed = derive_seed(7, r as u64);
            let mut scalar =
                MonteCarloSimulator::new(set_at_peak(1e-3), options.with_seed(seed)).unwrap();
            scalar.equilibrate().unwrap();
            scalar.run_until(10e-9).unwrap();
            assert_eq!(batch.time(r).to_bits(), scalar.time().to_bits());
            assert_eq!(batch.net_transfers(r), scalar.net_transfers());
        }
    }

    #[test]
    fn frozen_replicas_retire_without_stalling_the_batch() {
        // Replica lanes share one system, so freeze together here — the
        // point is that a frozen batch retires instead of spinning, and
        // run_until jumps every clock to the target.
        let options = SimulationOptions::new(0.0).with_equilibration(0);
        let mut batch = BatchedKmcEngine::from_base_seed(blockaded(), options, 4, 3).unwrap();
        assert_eq!(batch.step_all().unwrap(), 0, "no lane can step");
        assert!((0..4).all(|r| batch.is_frozen(r)));
        // Retired lanes cost nothing: another step_all touches no lane.
        assert_eq!(batch.step_all().unwrap(), 0);
        batch.run_until_all(5e-9).unwrap();
        assert!((0..4).all(|r| batch.time(r) == 5e-9));
        let results = batch.run_events_all(100).unwrap();
        for result in &results {
            assert!(result.is_frozen());
            assert_eq!(result.events(), 0);
        }
        // A drive change thaws the whole batch.
        batch.system_mut().set_external_voltage(0, 0.5).unwrap();
        assert_eq!(batch.step_all().unwrap(), 4);
        assert!((0..4).all(|r| !batch.is_frozen(r)));
    }

    #[test]
    fn step_and_observe_reports_every_replica() {
        let options = SimulationOptions::new(1.0).with_equilibration(0);
        let mut batch =
            BatchedKmcEngine::from_base_seed(set_at_peak(1e-3), options, 3, 11).unwrap();
        let observations = batch.step_and_observe().unwrap();
        assert_eq!(observations.len(), 3);
        for (r, obs) in observations.iter().enumerate() {
            assert_eq!(obs.replica, r);
            assert!(obs.event.is_some());
            assert!(!obs.frozen);
            assert!(obs.time > 0.0);
            assert_eq!(obs.electrons, batch.state(r).0);
        }
    }

    #[test]
    fn rejects_empty_batches_and_bad_arguments() {
        let options = SimulationOptions::new(1.0);
        assert!(BatchedKmcEngine::new(set_at_peak(1e-3), options, &[]).is_err());
        assert!(BatchedKmcEngine::from_base_seed(set_at_peak(1e-3), options, 0, 1).is_err());
        assert!(
            BatchedKmcEngine::new(set_at_peak(1e-3), SimulationOptions::new(-1.0), &[1]).is_err()
        );
        let mut batch = BatchedKmcEngine::from_base_seed(set_at_peak(1e-3), options, 2, 1).unwrap();
        assert!(batch.run_events_all(0).is_err());
        assert!(batch.run_until_all(f64::NAN).is_err());
    }
}
