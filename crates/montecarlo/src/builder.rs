//! Conversion from a [`se_netlist::Netlist`] into a
//! [`se_orthodox::TunnelSystem`].
//!
//! The conversion finds the single-electron islands of the netlist (nodes
//! connected purely capacitively), maps every other node touched by the
//! island group to an external electrode, and determines the electrode
//! voltages from the netlist's voltage sources. Boundary nodes must be
//! pinned to ground by a voltage source (directly, or be ground itself);
//! resistively driven boundaries belong to the co-simulator in `se-hybrid`,
//! which supplies their voltages explicitly.

use crate::error::MonteCarloError;
use se_netlist::{ElementKind, Netlist, Node};
use se_orthodox::{Endpoint, TunnelSystem, TunnelSystemBuilder};
use std::collections::HashMap;

/// Converts a netlist into a tunnel system using the voltages of its DC
/// voltage sources for the boundary electrodes.
///
/// # Errors
///
/// Returns [`MonteCarloError::NoIslands`] if the netlist has no
/// single-electron islands, [`MonteCarloError::UndrivenBoundary`] if an
/// island couples to a node that is neither ground nor pinned by a voltage
/// source to ground, and construction errors from the physics layer.
pub fn tunnel_system_from_netlist(netlist: &Netlist) -> Result<TunnelSystem, MonteCarloError> {
    tunnel_system_with_boundary_voltages(netlist, &HashMap::new())
}

/// Same as [`tunnel_system_from_netlist`], but allows the caller (typically
/// the co-simulator) to supply voltages for boundary nodes that are not
/// pinned by a voltage source. Keys are node names as they appear in the
/// netlist; values are volts.
///
/// # Errors
///
/// See [`tunnel_system_from_netlist`].
pub fn tunnel_system_with_boundary_voltages(
    netlist: &Netlist,
    overrides: &HashMap<String, f64>,
) -> Result<TunnelSystem, MonteCarloError> {
    let islands = netlist.find_islands();
    if islands.is_empty() {
        return Err(MonteCarloError::NoIslands);
    }

    // Voltage of every source-pinned node (source terminal tied to ground).
    let mut pinned: HashMap<Node, f64> = HashMap::new();
    pinned.insert(Node::GROUND, 0.0);
    for element in netlist.voltage_sources() {
        if let ElementKind::VoltageSource { voltage } = element.kind() {
            let nodes = element.nodes();
            let (plus, minus) = (nodes[0], nodes[1]);
            if minus.is_ground() {
                pinned.insert(plus, *voltage);
            } else if plus.is_ground() {
                pinned.insert(minus, -voltage);
            }
        }
    }

    let mut builder = TunnelSystemBuilder::new();
    let mut island_endpoints: HashMap<Node, Endpoint> = HashMap::new();
    let mut external_endpoints: HashMap<Node, Endpoint> = HashMap::new();

    for island in &islands {
        for &node in &island.nodes {
            let name = netlist.node_name(node).unwrap_or("island").to_string();
            let endpoint = builder.island(name, 0.0);
            island_endpoints.insert(node, endpoint);
        }
    }
    // Boundary nodes become external electrodes.
    for island in &islands {
        for &node in &island.boundary {
            if external_endpoints.contains_key(&node) {
                continue;
            }
            let name = netlist.node_name(node).unwrap_or("boundary").to_string();
            let voltage = if let Some(&v) = overrides.get(&name) {
                v
            } else if let Some(&v) = pinned.get(&node) {
                v
            } else {
                return Err(MonteCarloError::UndrivenBoundary { node: name });
            };
            let endpoint = builder.external(name, voltage);
            external_endpoints.insert(node, endpoint);
        }
    }

    let endpoint_of = |node: Node| -> Option<Endpoint> {
        island_endpoints
            .get(&node)
            .or_else(|| external_endpoints.get(&node))
            .copied()
    };

    // Add every capacitive element that touches an island.
    for element in netlist.elements() {
        if !element.is_capacitive() {
            continue;
        }
        let nodes = element.nodes();
        let touches_island = nodes.iter().any(|n| island_endpoints.contains_key(n));
        if !touches_island {
            continue;
        }
        let a = endpoint_of(nodes[0]);
        let b = endpoint_of(nodes[1]);
        let (Some(a), Some(b)) = (a, b) else {
            // A capacitive element touching an island whose far end is
            // neither island nor boundary cannot happen by construction of
            // `find_islands`, but keep the guard for defence in depth.
            continue;
        };
        match element.kind() {
            ElementKind::TunnelJunction {
                capacitance,
                resistance,
            } => {
                builder.junction(element.name(), a, b, *capacitance, *resistance);
            }
            ElementKind::Capacitor { capacitance } => {
                builder.capacitor(element.name(), a, b, *capacitance);
            }
            _ => unreachable!("is_capacitive covers only junctions and capacitors"),
        }
    }

    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_deck;

    const SET_DECK: &str = "single SET\nVD drain 0 1m\nVG gate 0 0.05\nJ1 drain island C=1a R=100k\nJ2 island 0 C=1a R=100k\nCG gate island 0.5a\n";

    #[test]
    fn converts_single_set_deck() {
        let netlist = parse_deck(SET_DECK).unwrap();
        let system = tunnel_system_from_netlist(&netlist).unwrap();
        assert_eq!(system.island_count(), 1);
        assert_eq!(system.junctions().len(), 2);
        assert_eq!(system.capacitors().len(), 1);
        // Drain electrode carries the 1 mV bias.
        let drain = system.external_index("drain").unwrap();
        assert!((system.external_voltage(drain) - 1e-3).abs() < 1e-12);
        let gate = system.external_index("gate").unwrap();
        assert!((system.external_voltage(gate) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn netlist_without_islands_is_rejected() {
        let deck = "rc\nV1 a 0 1\nR1 a b 1k\nC1 b 0 1p\n";
        let netlist = parse_deck(deck).unwrap();
        assert!(matches!(
            tunnel_system_from_netlist(&netlist),
            Err(MonteCarloError::NoIslands)
        ));
    }

    #[test]
    fn undriven_boundary_is_reported() {
        // The island couples to node `x`, which has no voltage source.
        let deck = "undriven\nVD drain 0 1m\nJ1 drain island C=1a R=100k\nJ2 island x C=1a R=100k\nR1 x 0 1k\n";
        let netlist = parse_deck(deck).unwrap();
        let err = tunnel_system_from_netlist(&netlist).unwrap_err();
        match err {
            MonteCarloError::UndrivenBoundary { node } => assert_eq!(node, "x"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn boundary_override_supplies_missing_voltage() {
        let deck = "undriven\nVD drain 0 1m\nJ1 drain island C=1a R=100k\nJ2 island x C=1a R=100k\nR1 x 0 1k\n";
        let netlist = parse_deck(deck).unwrap();
        let mut overrides = HashMap::new();
        overrides.insert("x".to_string(), 0.4e-3);
        let system = tunnel_system_with_boundary_voltages(&netlist, &overrides).unwrap();
        let x = system.external_index("x").unwrap();
        assert!((system.external_voltage(x) - 0.4e-3).abs() < 1e-12);
    }

    #[test]
    fn reversed_source_polarity_is_handled() {
        let deck = "reversed\nVD 0 drain 1m\nVG gate 0 0\nJ1 drain island C=1a R=100k\nJ2 island 0 C=1a R=100k\nCG gate island 0.5a\n";
        let netlist = parse_deck(deck).unwrap();
        let system = tunnel_system_from_netlist(&netlist).unwrap();
        let drain = system.external_index("drain").unwrap();
        assert!((system.external_voltage(drain) + 1e-3).abs() < 1e-12);
    }

    #[test]
    fn double_dot_maps_two_islands() {
        let deck = "double dot\nVS s 0 1m\nVG1 g1 0 0.1\nVG2 g2 0 0.2\nJ1 s i1 C=1a R=100k\nJ2 i1 i2 C=1a R=100k\nJ3 i2 0 C=1a R=100k\nCG1 g1 i1 0.5a\nCG2 g2 i2 0.5a\n";
        let netlist = parse_deck(deck).unwrap();
        let system = tunnel_system_from_netlist(&netlist).unwrap();
        assert_eq!(system.island_count(), 2);
        assert_eq!(system.junctions().len(), 3);
        assert_eq!(system.capacitors().len(), 2);
    }
}
