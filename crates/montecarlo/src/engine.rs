//! [`StationaryEngine`] implementations for the two detailed simulators,
//! plus the shared electrode/junction name resolver.
//!
//! Both the deterministic master-equation solver and the stochastic kinetic
//! Monte-Carlo engine answer the same question — "what stationary current
//! flows through this junction at this bias point?" — so both implement the
//! unified trait and are driven by the same parallel
//! [`se_engine::SweepRunner`]. The kinetic engine derives all of its
//! randomness from the per-point seed handed in by the runner, which is
//! what makes parallel KMC sweeps bit-identical to serial ones.

use crate::batched::BatchedKmcEngine;
use crate::error::MonteCarloError;
use crate::kmc::{MonteCarloSimulator, SimulationOptions};
use crate::master::MasterEquation;
use se_engine::{
    ControlId, ObservableId, StationaryEngine, TransientEngine, TransientTrace, Waveform,
};
use se_orthodox::TunnelSystem;
use se_units::constants::E;

/// Resolves an external electrode name to its typed index.
///
/// This is the single resolver used by every sweep helper and trait
/// implementation in this crate (it used to be copy-pasted three times).
///
/// # Errors
///
/// Returns [`MonteCarloError::InvalidArgument`] if no electrode has that
/// name.
pub fn resolve_electrode(system: &TunnelSystem, name: &str) -> Result<ControlId, MonteCarloError> {
    system
        .external_index(name)
        .map(ControlId)
        .ok_or_else(|| MonteCarloError::InvalidArgument(format!("no electrode named `{name}`")))
}

/// Resolves a junction name to its typed index.
///
/// # Errors
///
/// Returns [`MonteCarloError::InvalidArgument`] if no junction has that
/// name.
pub fn resolve_junction(
    system: &TunnelSystem,
    name: &str,
) -> Result<ObservableId, MonteCarloError> {
    system
        .junctions()
        .iter()
        .position(|j| j.name == name)
        .map(ObservableId)
        .ok_or_else(|| MonteCarloError::InvalidArgument(format!("no junction named `{name}`")))
}

/// Applies control values to a copy of the system's electrodes.
fn apply_controls(
    system: &mut TunnelSystem,
    controls: &[(ControlId, f64)],
) -> Result<(), MonteCarloError> {
    for &(ControlId(electrode), value) in controls {
        system.set_external_voltage(electrode, value)?;
    }
    Ok(())
}

/// Reads the requested junction currents out of a name-keyed lookup.
fn collect_observables(
    system: &TunnelSystem,
    observables: &[ObservableId],
    current_of: impl Fn(&str) -> Option<f64>,
) -> Result<Vec<f64>, MonteCarloError> {
    observables
        .iter()
        .map(|&ObservableId(index)| {
            let junction = system.junctions().get(index).ok_or_else(|| {
                MonteCarloError::InvalidArgument(format!("unknown junction handle {index}"))
            })?;
            current_of(&junction.name).ok_or_else(|| {
                MonteCarloError::InvalidArgument(format!(
                    "no current recorded for junction `{}`",
                    junction.name
                ))
            })
        })
        .collect()
}

impl MasterEquation {
    /// The warm-chaining form of
    /// [`StationaryEngine::stationary_currents`]: solves at the given
    /// control values, optionally seeding the iteration from a previous
    /// bias point's converged [`crate::master::MasterSolution`], and
    /// returns the solution alongside the currents so the caller can chain
    /// it into the next point. Sweep layers walk a block of adjacent bias
    /// points with this, cold-starting only the block's first point.
    ///
    /// # Errors
    ///
    /// As [`StationaryEngine::stationary_currents`].
    pub fn stationary_currents_warm(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        warm: Option<&crate::master::MasterSolution>,
    ) -> Result<(Vec<f64>, crate::master::MasterSolution), MonteCarloError> {
        let solution = if controls.is_empty() {
            self.solve_warm(warm)?
        } else {
            let mut solver = self.clone();
            apply_controls(solver.system_mut(), controls)?;
            solver.solve_warm(warm)?
        };
        let currents = collect_observables(self.system(), observables, |name| {
            solution.junction_current(name)
        })?;
        Ok((currents, solution))
    }
}

impl StationaryEngine for MasterEquation {
    type Error = MonteCarloError;

    fn engine_name(&self) -> &'static str {
        "master-equation"
    }

    fn resolve_control(&self, name: &str) -> Result<ControlId, MonteCarloError> {
        resolve_electrode(self.system(), name)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, MonteCarloError> {
        resolve_junction(self.system(), name)
    }

    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        _seed: u64,
    ) -> Result<Vec<f64>, MonteCarloError> {
        // Only clone when a control value actually has to be applied; the
        // hybrid co-simulator's hot loop solves with the bias already baked
        // into the system.
        let solution = if controls.is_empty() {
            self.solve()?
        } else {
            let mut solver = self.clone();
            apply_controls(solver.system_mut(), controls)?;
            solver.solve()?
        };
        collect_observables(self.system(), observables, |name| {
            solution.junction_current(name)
        })
    }
}

impl StationaryEngine for MonteCarloSimulator {
    type Error = MonteCarloError;

    fn engine_name(&self) -> &'static str {
        "kinetic-monte-carlo"
    }

    fn resolve_control(&self, name: &str) -> Result<ControlId, MonteCarloError> {
        resolve_electrode(self.system(), name)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, MonteCarloError> {
        resolve_junction(self.system(), name)
    }

    /// One stationary solve = a fresh simulator seeded with `seed`, the
    /// configured equilibration, and
    /// [`SimulationOptions::events_per_solve`] measurement events. The
    /// simulator's own RNG state is untouched, so trait-driven sweeps never
    /// perturb an ongoing time-domain run. (The per-solve system clone and
    /// constructor are a few vector copies — noise next to the thousands of
    /// Gillespie steps each solve executes.)
    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seed: u64,
    ) -> Result<Vec<f64>, MonteCarloError> {
        let mut system = self.system().clone();
        apply_controls(&mut system, controls)?;
        let options = SimulationOptions {
            seed: Some(seed),
            ..*self.options()
        };
        let mut simulator = MonteCarloSimulator::new(system, options)?;
        let result = simulator.run_events(options.events_per_solve)?;
        collect_observables(simulator.system(), observables, |name| {
            result.junction_current(name)
        })
    }

    /// A seed ensemble at one bias point runs through the
    /// [`BatchedKmcEngine`]: all replicas step in lockstep over SoA-packed
    /// state, sharing one warm pass over the junction tables per round.
    /// Replica `k` is bit-identical to [`Self::stationary_currents`] with
    /// `seeds[k]` (the batched engine's per-lane contract), so this is a
    /// pure throughput optimization.
    fn stationary_currents_ensemble(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seeds: &[u64],
    ) -> Result<Vec<Vec<f64>>, MonteCarloError> {
        if seeds.is_empty() {
            return Ok(Vec::new());
        }
        let mut system = self.system().clone();
        apply_controls(&mut system, controls)?;
        let options = *self.options();
        let mut batch = BatchedKmcEngine::new(system, options, seeds)?;
        let results = batch.run_events_all(options.events_per_solve)?;
        results
            .iter()
            .map(|result| {
                collect_observables(batch.system(), observables, |name| {
                    result.junction_current(name)
                })
            })
            .collect()
    }

    fn has_batched_stationary_ensemble(&self) -> bool {
        true
    }
}

/// The kinetic Monte-Carlo event clock as a [`TransientEngine`].
///
/// Drives are external electrodes, observables are junctions. A run clones
/// the system, seeds a fresh simulator with the per-run seed, equilibrates
/// at the `t = 0` drive values, then alternates zero-order-hold voltage
/// updates with [`MonteCarloSimulator::run_until`] calls: the drives are
/// evaluated at each sample time `t` and held over the window
/// `(t_prev, t]` (the backward-Euler convention, so a step aligned with a
/// sample boundary acts in the same window as in the SPICE backend).
///
/// Sample `k` reports the **window-averaged** conventional current of each
/// junction over `(t_prev, t]` — net tunnelled charge divided by the
/// window — which is the physically meaningful current observable of a
/// discrete-event simulator; a sample at exactly `t = 0` reports zero. The
/// shared simulator is never mutated, so concurrent ensemble runs off one
/// engine value are safe and bit-reproducible.
impl TransientEngine for MonteCarloSimulator {
    type Error = MonteCarloError;

    fn engine_name(&self) -> &'static str {
        "kinetic-monte-carlo"
    }

    fn resolve_drive(&self, name: &str) -> Result<ControlId, MonteCarloError> {
        resolve_electrode(self.system(), name)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, MonteCarloError> {
        resolve_junction(self.system(), name)
    }

    fn transient_currents(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seed: u64,
    ) -> Result<TransientTrace, MonteCarloError> {
        se_engine::transient::check_sample_times::<MonteCarloError>(times)?;
        let junction_count = self.system().junctions().len();
        for &ObservableId(junction) in observables {
            if junction >= junction_count {
                return Err(MonteCarloError::InvalidArgument(format!(
                    "unknown junction handle {junction}"
                )));
            }
        }

        let mut system = self.system().clone();
        for &(ControlId(electrode), ref waveform) in drives {
            system.set_external_voltage(electrode, waveform.value_at(0.0))?;
        }
        let options = SimulationOptions {
            seed: Some(seed),
            ..*self.options()
        };
        let mut simulator = MonteCarloSimulator::new(system, options)?;
        simulator.equilibrate()?;

        let mut currents = Vec::with_capacity(times.len() * observables.len());
        let mut previous_transfers = vec![0_i64; junction_count];
        let mut t_prev = 0.0;
        for &t in times {
            if t == 0.0 {
                currents.resize(currents.len() + observables.len(), 0.0);
                continue;
            }
            for &(ControlId(electrode), ref waveform) in drives {
                simulator
                    .system_mut()
                    .set_external_voltage(electrode, waveform.value_at(t))?;
            }
            simulator.run_until(t)?;
            let window = t - t_prev;
            let transfers = simulator.net_transfers();
            for &ObservableId(junction) in observables {
                let tunnelled = transfers[junction] - previous_transfers[junction];
                // Electrons moving a→b carry conventional current b→a;
                // report the conventional current in the a→b reference
                // direction, exactly as the stationary face does.
                currents.push(-E * tunnelled as f64 / window);
            }
            previous_transfers.copy_from_slice(transfers);
            t_prev = t;
        }
        Ok(TransientTrace::new(
            times.to_vec(),
            observables.len(),
            currents,
        ))
    }

    /// A transient seed ensemble runs through the [`BatchedKmcEngine`]:
    /// every replica follows the same zero-order-hold drive schedule (the
    /// batch shares one system) while the event walks stay independent per
    /// replica. Trace `k` is bit-identical to [`Self::transient_currents`]
    /// with `seeds[k]` — same lazy drive-sync timing, same per-lane RNG
    /// stream — so [`se_engine::TransientRunner::run_repeats`] can route
    /// repeats here without changing a published number.
    fn transient_currents_ensemble(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seeds: &[u64],
    ) -> Result<Vec<TransientTrace>, MonteCarloError> {
        se_engine::transient::check_sample_times::<MonteCarloError>(times)?;
        if seeds.is_empty() {
            return Ok(Vec::new());
        }
        let junction_count = self.system().junctions().len();
        for &ObservableId(junction) in observables {
            if junction >= junction_count {
                return Err(MonteCarloError::InvalidArgument(format!(
                    "unknown junction handle {junction}"
                )));
            }
        }

        let mut system = self.system().clone();
        for &(ControlId(electrode), ref waveform) in drives {
            system.set_external_voltage(electrode, waveform.value_at(0.0))?;
        }
        let replicas = seeds.len();
        let mut batch = BatchedKmcEngine::new(system, *self.options(), seeds)?;
        batch.equilibrate_all()?;

        let mut currents = vec![Vec::with_capacity(times.len() * observables.len()); replicas];
        let mut previous_transfers = vec![vec![0_i64; junction_count]; replicas];
        let mut t_prev = 0.0;
        for &t in times {
            if t == 0.0 {
                for lane in &mut currents {
                    lane.resize(lane.len() + observables.len(), 0.0);
                }
                continue;
            }
            for &(ControlId(electrode), ref waveform) in drives {
                batch
                    .system_mut()
                    .set_external_voltage(electrode, waveform.value_at(t))?;
            }
            batch.run_until_all(t)?;
            let window = t - t_prev;
            for (r, (lane, previous)) in currents
                .iter_mut()
                .zip(previous_transfers.iter_mut())
                .enumerate()
            {
                let transfers = batch.net_transfers(r);
                for &ObservableId(junction) in observables {
                    let tunnelled = transfers[junction] - previous[junction];
                    // Same sign convention as the scalar transient face.
                    lane.push(-E * tunnelled as f64 / window);
                }
                previous.copy_from_slice(transfers);
            }
            t_prev = t;
        }
        Ok(currents
            .into_iter()
            .map(|lane| TransientTrace::new(times.to_vec(), observables.len(), lane))
            .collect())
    }

    fn has_batched_transient_ensemble(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_engine::SweepRunner;
    use se_orthodox::TunnelSystemBuilder;

    fn set_system(vds: f64, vg: f64) -> TunnelSystem {
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", vds);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", vg);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        b.capacitor("CG", gate, island, 1e-18);
        b.build().unwrap()
    }

    #[test]
    fn resolver_returns_typed_indices() {
        let system = set_system(1e-3, 0.0);
        assert_eq!(resolve_electrode(&system, "gate").unwrap(), ControlId(2));
        assert_eq!(resolve_junction(&system, "JS").unwrap(), ObservableId(1));
        assert!(resolve_electrode(&system, "island").is_err());
        assert!(resolve_junction(&system, "CG").is_err());
    }

    #[test]
    fn master_engine_matches_direct_solve() {
        let vg = E / (2.0 * 1e-18);
        let solver = MasterEquation::new(set_system(1e-3, 0.0), 1.0).unwrap();
        let gate = solver.resolve_control("gate").unwrap();
        let jd = solver.resolve_observable("JD").unwrap();
        let via_trait = solver.stationary_current(&[(gate, vg)], jd, 7).unwrap();

        let direct = MasterEquation::new(set_system(1e-3, vg), 1.0)
            .unwrap()
            .solve()
            .unwrap()
            .junction_current("JD")
            .unwrap();
        assert!((via_trait - direct).abs() < 1e-9 * direct.abs().max(1e-18));
    }

    #[test]
    fn kmc_engine_is_seed_deterministic_and_leaves_self_untouched() {
        let vg = E / (2.0 * 1e-18);
        let sim = MonteCarloSimulator::new(
            set_system(1e-3, vg),
            SimulationOptions::new(1.0)
                .with_seed(5)
                .with_events_per_solve(5_000),
        )
        .unwrap();
        let jd = StationaryEngine::resolve_observable(&sim, "JD").unwrap();
        let a = sim.stationary_current(&[], jd, 123).unwrap();
        let b = sim.stationary_current(&[], jd, 123).unwrap();
        let c = sim.stationary_current(&[], jd, 124).unwrap();
        assert_eq!(a, b, "same seed, same current");
        assert_ne!(a, c, "different seeds explore different event sequences");
        assert_eq!(sim.time(), 0.0, "the shared simulator never advanced");
    }

    #[test]
    fn kmc_transient_tracks_a_drain_pulse() {
        // Gate at the conductance peak; pulse the drain 0 → 1 mV → 0 and
        // watch the window-averaged drain-junction current follow.
        let vg = E / (2.0 * 1e-18);
        let sim = MonteCarloSimulator::new(
            set_system(0.0, vg),
            SimulationOptions::new(1.0)
                .with_seed(3)
                .with_equilibration(200),
        )
        .unwrap();
        let drain = TransientEngine::resolve_drive(&sim, "drain").unwrap();
        let jd = TransientEngine::resolve_observable(&sim, "JD").unwrap();
        // 10 ns sample windows: long enough that the ±e/window shot noise
        // of the zero-bias windows averages well below the on-pulse
        // current.
        let pulse = Waveform::pulse(0.0, 1e-3, 20e-9, 40e-9, 1e-6).unwrap();
        let times: Vec<f64> = (0..8).map(|i| i as f64 * 10e-9).collect();
        let trace = sim
            .transient_currents(&[(drain, pulse)], &[jd], &times, 11)
            .unwrap();
        assert_eq!(trace.len(), 8);
        assert_eq!(trace.at(0, 0), 0.0, "a t = 0 sample has no window yet");
        // Drives are evaluated at the window *end* (backward-Euler
        // convention), so the pulse rising at 20 ns first acts in window
        // (10,20] — samples 2..=5 are on, samples 1 and 6..=7 are off.
        let on: f64 = (2..=5).map(|i| trace.at(i, 0)).sum::<f64>() / 4.0;
        let off = trace.at(1, 0).abs().max(trace.at(7, 0).abs());
        assert!(on.abs() > 3.0 * off.max(1e-12), "on {on} vs off {off}");
        // Seed-deterministic: same seed, bit-identical trace.
        let again = sim
            .transient_currents(
                &[(
                    drain,
                    Waveform::pulse(0.0, 1e-3, 20e-9, 40e-9, 1e-6).unwrap(),
                )],
                &[jd],
                &times,
                11,
            )
            .unwrap();
        assert_eq!(trace, again);
        assert_eq!(sim.time(), 0.0, "the shared simulator never advanced");
    }

    #[test]
    fn kmc_transient_mean_current_matches_the_stationary_estimate() {
        // A long constant-bias transient window must reproduce the
        // stationary KMC current at the same bias (same physics, two
        // faces).
        let vg = E / (2.0 * 1e-18);
        let sim = MonteCarloSimulator::new(
            set_system(1e-3, vg),
            SimulationOptions::new(1.0)
                .with_seed(5)
                .with_events_per_solve(40_000),
        )
        .unwrap();
        let jd = TransientEngine::resolve_observable(&sim, "JD").unwrap();
        let times = [200e-9];
        let trace = sim.transient_currents(&[], &[jd], &times, 21).unwrap();
        let stationary = sim.stationary_current(&[], ObservableId(0), 21).unwrap();
        let rel = (trace.at(0, 0) - stationary).abs() / stationary.abs();
        assert!(
            rel < 0.15,
            "transient mean {} vs stationary {stationary}: {rel:.2}",
            trace.at(0, 0)
        );
    }

    #[test]
    fn kmc_transient_validates_inputs() {
        let sim = MonteCarloSimulator::new(
            set_system(1e-3, 0.0),
            SimulationOptions::new(1.0).with_seed(1),
        )
        .unwrap();
        assert!(sim
            .transient_currents(&[], &[ObservableId(0)], &[], 0)
            .is_err());
        assert!(sim
            .transient_currents(&[], &[ObservableId(0)], &[2e-9, 1e-9], 0)
            .is_err());
        assert!(sim
            .transient_currents(&[], &[ObservableId(99)], &[1e-9], 0)
            .is_err());
    }

    #[test]
    fn stationary_ensemble_is_bit_identical_to_the_per_seed_loop() {
        let vg = E / (2.0 * 1e-18);
        let sim = MonteCarloSimulator::new(
            set_system(1e-3, vg),
            SimulationOptions::new(1.0)
                .with_equilibration(100)
                .with_events_per_solve(2_000),
        )
        .unwrap();
        assert!(sim.has_batched_stationary_ensemble());
        let jd = StationaryEngine::resolve_observable(&sim, "JD").unwrap();
        let js = StationaryEngine::resolve_observable(&sim, "JS").unwrap();
        let seeds = [11, 22, 33, 44];
        let batched = sim
            .stationary_currents_ensemble(&[], &[jd, js], &seeds)
            .unwrap();
        assert_eq!(batched.len(), seeds.len());
        for (row, &seed) in batched.iter().zip(&seeds) {
            let scalar = sim.stationary_currents(&[], &[jd, js], seed).unwrap();
            for (b, s) in row.iter().zip(&scalar) {
                assert_eq!(b.to_bits(), s.to_bits(), "seed {seed} diverged");
            }
        }
        assert!(sim
            .stationary_currents_ensemble(&[], &[jd], &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn transient_ensemble_is_bit_identical_to_the_per_seed_loop() {
        let vg = E / (2.0 * 1e-18);
        let sim = MonteCarloSimulator::new(
            set_system(0.0, vg),
            SimulationOptions::new(1.0)
                .with_seed(3)
                .with_equilibration(200),
        )
        .unwrap();
        assert!(sim.has_batched_transient_ensemble());
        let drain = TransientEngine::resolve_drive(&sim, "drain").unwrap();
        let jd = TransientEngine::resolve_observable(&sim, "JD").unwrap();
        let pulse = Waveform::pulse(0.0, 1e-3, 20e-9, 40e-9, 1e-6).unwrap();
        let times: Vec<f64> = (0..6).map(|i| i as f64 * 10e-9).collect();
        let seeds = [5, 6, 7];
        let batched = sim
            .transient_currents_ensemble(&[(drain, pulse.clone())], &[jd], &times, &seeds)
            .unwrap();
        assert_eq!(batched.len(), seeds.len());
        for (trace, &seed) in batched.iter().zip(&seeds) {
            let scalar = sim
                .transient_currents(&[(drain, pulse.clone())], &[jd], &times, seed)
                .unwrap();
            assert_eq!(trace, &scalar, "seed {seed} diverged");
        }
    }

    #[test]
    fn run_repeats_routes_through_the_batch_unchanged() {
        // More repeats than one ENSEMBLE_CHUNK, so the grouped path splits
        // into several batches — results must still match the per-repeat
        // default loop bit for bit.
        let vg = E / (2.0 * 1e-18);
        let sim = MonteCarloSimulator::new(
            set_system(1e-3, vg),
            SimulationOptions::new(1.0).with_equilibration(50),
        )
        .unwrap();
        let times: Vec<f64> = (1..4).map(|i| i as f64 * 5e-9).collect();
        let repeats = se_engine::ENSEMBLE_CHUNK + 3;
        let runner = se_engine::TransientRunner::new().with_seed(9);
        let via_batch = runner
            .run_repeats(&sim, &[], &["JD"], &times, repeats)
            .unwrap();
        // The default per-seed loop with the same derived seeds.
        let loose: Vec<TransientTrace> = (0..repeats)
            .map(|k| {
                sim.transient_currents(&[], &[ObservableId(0)], &times, {
                    se_engine::derive_seed(9, k as u64)
                })
                .unwrap()
            })
            .collect();
        assert_eq!(via_batch, loose);
    }

    #[test]
    fn both_engines_agree_through_the_runner() {
        let system = set_system(1e-3, 0.0);
        let period = E / 1e-18;
        let values = [0.25 * period, 0.5 * period];

        let master = MasterEquation::new(system.clone(), 1.0).unwrap();
        let kmc = MonteCarloSimulator::new(
            system,
            SimulationOptions::new(1.0).with_events_per_solve(40_000),
        )
        .unwrap();

        let runner = SweepRunner::new().with_seed(11);
        let exact = runner.run(&master, "gate", &values, "JD").unwrap();
        let sampled = runner.run(&kmc, "gate", &values, "JD").unwrap();
        for (m, k) in exact.iter().zip(&sampled) {
            let scale = m.current.abs().max(1e-15);
            assert!(
                (m.current - k.current).abs() < 0.15 * scale,
                "master {} vs kmc {}",
                m.current,
                k.current
            );
        }
    }
}
