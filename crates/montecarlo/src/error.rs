//! Error type for the Monte-Carlo simulator.

use se_netlist::NetlistError;
use se_numeric::NumericError;
use se_orthodox::OrthodoxError;
use std::error::Error;
use std::fmt;

/// Errors produced while building or running Monte-Carlo / master-equation
/// simulations.
#[derive(Debug, Clone, PartialEq)]
pub enum MonteCarloError {
    /// The netlist could not be converted into a tunnel system.
    Netlist(NetlistError),
    /// The netlist contains no single-electron islands to simulate.
    NoIslands,
    /// A boundary node's voltage could not be determined (it is not pinned
    /// by a voltage source to ground).
    UndrivenBoundary {
        /// The node name in question.
        node: String,
    },
    /// A physics-layer error (invalid parameters, singular electrostatics).
    Orthodox(OrthodoxError),
    /// A numerical error (singular rate matrix, …).
    Numeric(NumericError),
    /// Invalid simulation options or arguments.
    InvalidArgument(String),
    /// The state space of the master equation would be too large.
    StateSpaceTooLarge {
        /// Number of states that enumeration would have produced.
        states: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for MonteCarloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonteCarloError::Netlist(e) => write!(f, "netlist error: {e}"),
            MonteCarloError::NoIslands => {
                write!(f, "the netlist contains no single-electron islands")
            }
            MonteCarloError::UndrivenBoundary { node } => write!(
                f,
                "boundary node `{node}` is not driven by a grounded voltage source"
            ),
            MonteCarloError::Orthodox(e) => write!(f, "physics error: {e}"),
            MonteCarloError::Numeric(e) => write!(f, "numerical error: {e}"),
            MonteCarloError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MonteCarloError::StateSpaceTooLarge { states, limit } => write!(
                f,
                "master-equation state space has {states} states, exceeding the limit of {limit}"
            ),
        }
    }
}

impl Error for MonteCarloError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MonteCarloError::Netlist(e) => Some(e),
            MonteCarloError::Orthodox(e) => Some(e),
            MonteCarloError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for MonteCarloError {
    fn from(e: NetlistError) -> Self {
        MonteCarloError::Netlist(e)
    }
}

impl From<OrthodoxError> for MonteCarloError {
    fn from(e: OrthodoxError) -> Self {
        MonteCarloError::Orthodox(e)
    }
}

impl From<NumericError> for MonteCarloError {
    fn from(e: NumericError) -> Self {
        MonteCarloError::Numeric(e)
    }
}

impl From<se_engine::GridError> for MonteCarloError {
    fn from(e: se_engine::GridError) -> Self {
        MonteCarloError::InvalidArgument(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(MonteCarloError::NoIslands.to_string().contains("islands"));
        assert!(MonteCarloError::UndrivenBoundary { node: "x".into() }
            .to_string()
            .contains("`x`"));
        assert!(MonteCarloError::StateSpaceTooLarge {
            states: 10_000,
            limit: 100
        }
        .to_string()
        .contains("10000"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: MonteCarloError = OrthodoxError::InvalidParameter("x".into()).into();
        assert!(Error::source(&e).is_some());
        let e: MonteCarloError = NumericError::SingularMatrix { pivot: 0 }.into();
        assert!(Error::source(&e).is_some());
        let e: MonteCarloError = NetlistError::Empty.into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MonteCarloError>();
    }
}
