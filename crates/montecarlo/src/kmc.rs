//! Kinetic Monte-Carlo (Gillespie) engine.
//!
//! Each step evaluates the orthodox rate of every candidate tunnel event in
//! the current charge state, draws an exponential waiting time from the
//! total rate, selects one event with probability proportional to its rate,
//! and applies it. Net electron transfers through every junction are
//! counted, so time-averaged junction currents fall out directly.
//!
//! The step loop runs on the incremental hot path of
//! [`se_orthodox::live`]: island potentials live in a [`LiveState`] and are
//! corrected with one `K`-column axpy per event instead of being re-solved,
//! every per-event ΔF is O(1), the [`RateContext`] keeps the ΔF-independent
//! rate factors persistent, and the loop is allocation-free. Drive-voltage
//! and background-charge changes made through
//! [`MonteCarloSimulator::system_mut`] are folded in lazily at the next
//! step (`LiveState::sync`), so the public mutate-then-run protocol is
//! unchanged.

use crate::error::MonteCarloError;
use crate::observables::RunResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use se_numeric::sampling::exponential_waiting_time;
use se_orthodox::{ChargeState, EventRateTable, LiveState, RateContext, TunnelEvent, TunnelSystem};
use se_units::constants::E;
use std::collections::HashMap;

/// Below this many candidate events, [`KmcKernel::Auto`] stays on the
/// reference full-recompute path: a handful-of-junctions refill is a few
/// dozen flops, cheaper than any tree bookkeeping, and small-circuit traces
/// keep their committed bits. From this count up, the O(strong + log E)
/// incremental kernel wins and Auto routes through it.
pub const AUTO_TREE_THRESHOLD: usize = 64;

/// Which event-rate maintenance strategy the step loop runs on.
///
/// Both kernels draw the same RNG stream (one waiting-time draw, one
/// selection draw per event); they differ in how rates are maintained and
/// how the total rate is reduced, so the waiting times — and therefore
/// recorded traces — are kernel-revision-specific for circuits where the
/// kernels actually diverge (see `docs/DETERMINISM.md` §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KmcKernel {
    /// Pick per circuit, at construction: [`KmcKernel::Incremental`] when
    /// the candidate-event count reaches [`AUTO_TREE_THRESHOLD`],
    /// [`KmcKernel::FullRecompute`] below it. Deterministic — a pure
    /// function of the circuit — so replays resolve identically. The
    /// default.
    #[default]
    Auto,
    /// Incremental maintenance: after each event one axpy over the fired
    /// junction's strong list updates the affected ΔFs, only those
    /// Boltzmann kernels are recomputed, and totals plus selection run on
    /// an O(log E) partial-sum tree ([`se_orthodox::EventRateTable`]).
    Incremental,
    /// Reference path: every candidate rate is recomputed from scratch each
    /// step ([`RateContext::fill_rates`]) and selection is a linear scan.
    FullRecompute,
}

impl KmcKernel {
    /// Whether this kernel choice routes a circuit with `events` candidate
    /// events through the incremental table + selection tree.
    #[must_use]
    pub fn uses_tree(self, events: usize) -> bool {
        match self {
            KmcKernel::Auto => events >= AUTO_TREE_THRESHOLD,
            KmcKernel::Incremental => true,
            KmcKernel::FullRecompute => false,
        }
    }
}

/// Options controlling a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationOptions {
    /// Temperature in kelvin.
    pub temperature: f64,
    /// RNG seed; `None` seeds from the operating system.
    pub seed: Option<u64>,
    /// Number of events used to equilibrate (discarded from observables)
    /// before measurement runs.
    pub equilibration_events: usize,
    /// Measurement events per stationary solve when the simulator is driven
    /// through the [`se_engine::StationaryEngine`] trait (sweeps, stability
    /// maps, co-simulation).
    pub events_per_solve: usize,
    /// Event-rate maintenance strategy ([`KmcKernel::Auto`] by default:
    /// tree-based maintenance for large circuits, full recompute for
    /// small ones).
    pub kernel: KmcKernel,
}

impl SimulationOptions {
    /// Creates options for the given temperature with a random seed, a
    /// default equilibration of 1000 events and 40 000 measurement events
    /// per stationary solve.
    #[must_use]
    pub fn new(temperature: f64) -> Self {
        SimulationOptions {
            temperature,
            seed: None,
            equilibration_events: 1000,
            events_per_solve: 40_000,
            kernel: KmcKernel::default(),
        }
    }

    /// Sets a deterministic RNG seed (recommended for tests and benches).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Selects the event-rate maintenance kernel.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KmcKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the number of equilibration events.
    #[must_use]
    pub fn with_equilibration(mut self, events: usize) -> Self {
        self.equilibration_events = events;
        self
    }

    /// Sets the number of measurement events per stationary solve.
    #[must_use]
    pub fn with_events_per_solve(mut self, events: usize) -> Self {
        self.events_per_solve = events;
        self
    }
}

/// One recorded point of a time-domain trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Simulation time in seconds at which the state below became current.
    pub time: f64,
    /// Number of excess electrons per island.
    pub electrons: Vec<i64>,
    /// Island potentials in volt.
    pub potentials: Vec<f64>,
}

/// Kinetic Monte-Carlo simulator over a [`TunnelSystem`].
#[derive(Debug, Clone)]
pub struct MonteCarloSimulator {
    system: TunnelSystem,
    options: SimulationOptions,
    rng: StdRng,
    /// Charge state plus incrementally-maintained island potentials.
    live: LiveState,
    /// Persistent ΔF-independent rate factors (junction prefactors, kT).
    rate_ctx: RateContext,
    /// Reusable per-event rate buffer — keeps the step loop allocation-free.
    /// Only the [`KmcKernel::FullRecompute`] path writes it.
    rates: Vec<f64>,
    /// Incrementally maintained event rates + selection tree; present iff
    /// the kernel resolves to the tree path ([`KmcKernel::uses_tree`], so
    /// [`KmcKernel::Auto`] picks it for large circuits).
    table: Option<EventRateTable>,
    /// Set by [`Self::system_mut`]: the next step must fold pending drive /
    /// background changes into the live state before evaluating rates.
    drives_dirty: bool,
    time: f64,
    /// Net number of electrons that have tunnelled from endpoint `a` to
    /// endpoint `b` of each junction.
    net_transfers: Vec<i64>,
    /// Total number of events executed since the counters were last reset.
    events_executed: u64,
    frozen: bool,
}

impl MonteCarloSimulator {
    /// Creates a simulator for the given system and options, starting from
    /// the charge-neutral state.
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] for a negative or
    /// non-finite temperature.
    pub fn new(system: TunnelSystem, options: SimulationOptions) -> Result<Self, MonteCarloError> {
        if options.temperature < 0.0 || !options.temperature.is_finite() {
            return Err(MonteCarloError::InvalidArgument(format!(
                "temperature must be non-negative and finite, got {}",
                options.temperature
            )));
        }
        let rng = match options.seed {
            Some(seed) => StdRng::seed_from_u64(seed),
            None => StdRng::from_entropy(),
        };
        let islands = system.island_count();
        let junctions = system.junctions().len();
        let rate_ctx = RateContext::new(&system, options.temperature)?;
        let live = LiveState::new(&system, ChargeState::neutral(islands));
        let table = options
            .kernel
            .uses_tree(system.event_count())
            .then(|| EventRateTable::new(&system, &rate_ctx, &live));
        Ok(MonteCarloSimulator {
            system,
            options,
            rng,
            live,
            rate_ctx,
            rates: vec![0.0; 2 * junctions],
            table,
            drives_dirty: false,
            time: 0.0,
            net_transfers: vec![0; junctions],
            events_executed: 0,
            frozen: false,
        })
    }

    /// The tunnel system being simulated.
    #[must_use]
    pub fn system(&self) -> &TunnelSystem {
        &self.system
    }

    /// The options the simulator was created with.
    #[must_use]
    pub fn options(&self) -> &SimulationOptions {
        &self.options
    }

    /// Mutable access to the tunnel system, used to change source voltages
    /// or background charges between runs (counters should normally be
    /// reset afterwards with [`Self::reset_counters`]). Any changes are
    /// folded into the cached island potentials at the next step.
    pub fn system_mut(&mut self) -> &mut TunnelSystem {
        self.drives_dirty = true;
        &mut self.system
    }

    /// Folds pending drive/background changes into the live state. Cheap
    /// when nothing is pending (one flag test), so the step loop never pays
    /// the comparison pass for runs that do not touch the drives.
    fn sync_drives(&mut self) {
        if self.drives_dirty {
            self.live.sync(&self.system);
            self.drives_dirty = false;
        }
    }

    /// Current charge state.
    #[must_use]
    pub fn state(&self) -> &ChargeState {
        self.live.state()
    }

    /// Current simulation time in seconds.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Returns `true` if the last step found no executable event (all rates
    /// zero, which can only happen at exactly zero temperature deep in
    /// blockade).
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Net number of electrons that have tunnelled from endpoint `a` to
    /// endpoint `b` of each junction (indexed like
    /// [`TunnelSystem::junctions`]) since the counters were last reset.
    /// Differences of these counters across a time window are what the
    /// transient sampling layer turns into window-averaged currents.
    #[must_use]
    pub fn net_transfers(&self) -> &[i64] {
        &self.net_transfers
    }

    /// Advances the event clock to at least `t` (absolute simulation time,
    /// seconds), executing tunnel events as they come. If the system
    /// freezes (every rate zero — deep blockade at zero temperature) the
    /// clock jumps directly to `t`: time passes, no charge moves. A later
    /// call after the drive voltages change re-evaluates the rates, so a
    /// frozen system thaws as soon as an event becomes favourable.
    ///
    /// This is the trait-driven sampling face of the engine's internal
    /// Gillespie loop: callers alternate `run_until` with voltage updates
    /// and read [`Self::net_transfers`] between calls.
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] for a non-finite
    /// target time, and propagates [`Self::step`] errors.
    pub fn run_until(&mut self, t: f64) -> Result<(), MonteCarloError> {
        if !t.is_finite() {
            return Err(MonteCarloError::InvalidArgument(format!(
                "target time must be finite, got {t}"
            )));
        }
        while self.time < t {
            if self.step()?.is_none() {
                self.time = t;
                break;
            }
        }
        Ok(())
    }

    /// Resets the time, transfer counters and event counter, keeping the
    /// current charge state (used after equilibration and between sweep
    /// points).
    pub fn reset_counters(&mut self) {
        self.time = 0.0;
        self.events_executed = 0;
        self.frozen = false;
        for t in &mut self.net_transfers {
            *t = 0;
        }
    }

    /// Executes a single tunnel event. Returns the event that occurred, or
    /// `None` if the system is frozen (no event has a non-zero rate).
    ///
    /// This is the incremental hot path: pending drive/background changes
    /// are folded in with precomputed response columns
    /// ([`LiveState::sync`]), and applying the chosen event is an
    /// O(islands) potential correction — no linear solve, no allocation.
    /// Under [`KmcKernel::Incremental`] (what [`KmcKernel::Auto`], the
    /// default, resolves to on large circuits) the candidate rates are
    /// maintained in an [`EventRateTable`] — only the fired junction's
    /// strongly-coupled events are re-evaluated after each event, and the
    /// total and selection run on an O(log E) partial-sum tree. Under
    /// [`KmcKernel::FullRecompute`] every rate refreshes its ΔF-dependent
    /// factor ([`RateContext::fill_rates`] into a reusable buffer) and
    /// selection is a linear scan.
    ///
    /// # Errors
    ///
    /// Propagates waiting-time sampling errors (which cannot occur for the
    /// finite, positive total rate this method establishes first).
    pub fn step(&mut self) -> Result<Option<TunnelEvent>, MonteCarloError> {
        self.sync_drives();
        let (total, chosen_by_table) = match &mut self.table {
            Some(table) => {
                table.sync(&self.system, &self.rate_ctx, &self.live);
                (table.total(), true)
            }
            None => (
                self.rate_ctx
                    .fill_rates(&self.system, &self.live, &mut self.rates),
                false,
            ),
        };
        if total <= 0.0 {
            self.frozen = true;
            return Ok(None);
        }
        let dt = exponential_waiting_time(&mut self.rng, total)?;
        let chosen = if chosen_by_table {
            let target = self.rng.gen::<f64>() * total;
            self.table
                .as_ref()
                .expect("the incremental kernel owns a table")
                .select(target)
        } else {
            select_event(&mut self.rng, &self.rates, total)
        };
        let event = self.system.event(chosen);
        self.live.apply(&self.system, event);
        if let Some(table) = &mut self.table {
            table.apply_event(&self.system, &self.rate_ctx, &self.live, event);
        }
        self.time += dt;
        self.events_executed += 1;
        match event.direction {
            se_orthodox::Direction::AToB => self.net_transfers[event.junction] += 1,
            se_orthodox::Direction::BToA => self.net_transfers[event.junction] -= 1,
        }
        self.frozen = false;
        Ok(Some(event))
    }

    /// Runs the equilibration phase configured in the options and resets the
    /// observable counters afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    pub fn equilibrate(&mut self) -> Result<(), MonteCarloError> {
        for _ in 0..self.options.equilibration_events {
            if self.step()?.is_none() {
                break;
            }
        }
        self.reset_counters();
        Ok(())
    }

    /// Runs `events` measurement events (after equilibration) and returns
    /// the collected observables.
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] if `events == 0`, and
    /// propagates step errors.
    pub fn run_events(&mut self, events: usize) -> Result<RunResult, MonteCarloError> {
        if events == 0 {
            return Err(MonteCarloError::InvalidArgument(
                "a run needs at least one event".into(),
            ));
        }
        self.equilibrate()?;
        let mut occupation = OccupationTracker::new(self.system.island_count(), self.time);
        for _ in 0..events {
            match self.step()? {
                Some(event) => occupation.record(&self.system, self.live.state(), event, self.time),
                None => break,
            }
        }
        Ok(self.collect(occupation.finish(self.live.state(), self.time)))
    }

    /// Runs until the simulation clock advances by `duration` seconds
    /// (after equilibration) or the system freezes.
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] for a non-positive
    /// duration, and propagates step errors.
    pub fn run_for(&mut self, duration: f64) -> Result<RunResult, MonteCarloError> {
        if !(duration > 0.0) || !duration.is_finite() {
            return Err(MonteCarloError::InvalidArgument(format!(
                "duration must be positive and finite, got {duration}"
            )));
        }
        self.equilibrate()?;
        let t_end = self.time + duration;
        let mut occupation = OccupationTracker::new(self.system.island_count(), self.time);
        while self.time < t_end {
            match self.step()? {
                Some(event) => occupation.record(&self.system, self.live.state(), event, self.time),
                None => break,
            }
        }
        // The final event may overshoot `t_end`; occupation is integrated
        // over the full elapsed window so that `collect`'s division by the
        // elapsed time yields a consistent time average (currents use the
        // same window through the transfer counters).
        Ok(self.collect(occupation.finish(self.live.state(), self.time)))
    }

    /// Records a time-domain trace of `events` tunnel events (no
    /// equilibration, no counter reset) — used for telegraph-noise and
    /// logic-transient experiments.
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] if `events == 0`, and
    /// propagates step errors.
    pub fn record_trace(&mut self, events: usize) -> Result<Vec<TracePoint>, MonteCarloError> {
        if events == 0 {
            return Err(MonteCarloError::InvalidArgument(
                "a trace needs at least one event".into(),
            ));
        }
        let mut trace = Vec::with_capacity(events + 1);
        self.sync_drives();
        trace.push(TracePoint {
            time: self.time,
            electrons: self.live.state().0.clone(),
            potentials: self.live.potentials().to_vec(),
        });
        for _ in 0..events {
            if self.step()?.is_none() {
                break;
            }
            trace.push(TracePoint {
                time: self.time,
                electrons: self.live.state().0.clone(),
                potentials: self.live.potentials().to_vec(),
            });
        }
        Ok(trace)
    }

    fn collect(&self, occupation_time: Vec<f64>) -> RunResult {
        let mut junction_currents = HashMap::new();
        let mut junction_transfers = HashMap::new();
        for (idx, junction) in self.system.junctions().iter().enumerate() {
            let net = self.net_transfers[idx];
            junction_transfers.insert(junction.name.clone(), net);
            let current = if self.time > 0.0 {
                // Electrons moving a→b carry conventional current b→a; report
                // the conventional current in the a→b reference direction.
                -E * net as f64 / self.time
            } else {
                0.0
            };
            junction_currents.insert(junction.name.clone(), current);
        }
        let mean_occupation = occupation_time
            .iter()
            .map(|&t| if self.time > 0.0 { t / self.time } else { 0.0 })
            .collect();
        RunResult::new(
            self.time,
            self.events_executed,
            junction_currents,
            junction_transfers,
            mean_occupation,
            self.frozen,
        )
    }
}

/// Time-weighted island-occupation accumulator, shared by the scalar step
/// loop and the batched ensemble engine ([`crate::batched`]).
///
/// The occupation integral `∫ n_i dt` is piecewise constant and only
/// changes when an event touches island `i`, so instead of accumulating
/// `dwell · n` across **all** islands every step (which needs a copy of the
/// pre-event state), each island carries the start time of its current
/// segment and settles the finished segment only when its charge actually
/// changes — O(islands touched) per event.
pub(crate) struct OccupationTracker {
    occupation_time: Vec<f64>,
    segment_start: Vec<f64>,
}

impl OccupationTracker {
    pub(crate) fn new(islands: usize, start: f64) -> Self {
        OccupationTracker {
            occupation_time: vec![0.0; islands],
            segment_start: vec![start; islands],
        }
    }

    /// Settles the finished segments of the islands `event` touched.
    /// `state` is the post-event charge state and `t` the (possibly
    /// clamped) event time.
    #[inline]
    fn record(&mut self, system: &TunnelSystem, state: &ChargeState, event: TunnelEvent, t: f64) {
        self.record_endpoints(system.event_endpoints(event), |i| state.0[i], t);
    }

    /// [`Self::record`] with the post-event island charges supplied by a
    /// lookup instead of a materialized [`ChargeState`] — the batched
    /// engine's lanes keep their electrons in island-major planes.
    #[inline]
    pub(crate) fn record_endpoints(
        &mut self,
        endpoints: (se_orthodox::Endpoint, se_orthodox::Endpoint),
        electrons: impl Fn(usize) -> i64,
        t: f64,
    ) {
        let (from, to) = endpoints;
        if let se_orthodox::Endpoint::Island(i) = from {
            // The electron just left: the segment that ended held n + 1.
            self.occupation_time[i] += (electrons(i) + 1) as f64 * (t - self.segment_start[i]);
            self.segment_start[i] = t;
        }
        if let se_orthodox::Endpoint::Island(i) = to {
            self.occupation_time[i] += (electrons(i) - 1) as f64 * (t - self.segment_start[i]);
            self.segment_start[i] = t;
        }
    }

    /// Settles every island's open segment up to `t_end` and returns the
    /// per-island occupation times.
    fn finish(self, state: &ChargeState, t_end: f64) -> Vec<f64> {
        self.finish_with(|i| state.0[i], t_end)
    }

    /// [`Self::finish`] with the final island charges supplied by a lookup.
    pub(crate) fn finish_with(mut self, electrons: impl Fn(usize) -> i64, t_end: f64) -> Vec<f64> {
        for (i, occ) in self.occupation_time.iter_mut().enumerate() {
            *occ += electrons(i) as f64 * (t_end - self.segment_start[i]);
        }
        self.occupation_time
    }
}

/// Selects the event index with probability `rates[i] / total`.
///
/// This is [`se_numeric::sampling::select_weighted`] minus the per-call
/// validation pass: the step loop has already established that every rate
/// is finite and non-negative and that `total > 0`. The round-off fallback
/// is the same — if `total` (summed junction-pairwise) lands marginally
/// above the linear scan's accumulation, the last non-zero rate wins.
#[inline]
fn select_event<R: Rng + ?Sized>(rng: &mut R, rates: &[f64], total: f64) -> usize {
    select_event_from(rng, rates.iter().copied(), total)
}

/// [`select_event`] over any event-ordered weight iterator — the batched
/// engine feeds one replica's strided lane of the event-major rate matrix.
/// One forward pass: the zero-skip accumulation of the scalar scan plus the
/// round-off fallback (last non-zero weight wins) folded into the same
/// traversal, so the selected index — and the single RNG draw — are
/// bit-identical to the scalar path.
#[inline]
pub(crate) fn select_event_from<R: Rng + ?Sized>(
    rng: &mut R,
    weights: impl Iterator<Item = f64>,
    total: f64,
) -> usize {
    let target = rng.gen::<f64>() * total;
    select_with_target(weights, target)
}

/// The deterministic tail of [`select_event_from`]: the zero-skip linear
/// scan for the first positive weight whose running sum exceeds `target`,
/// falling back to the last positive weight when round-off leaves the
/// target unreached. Split out so the batched engine can draw every
/// replica's target in its per-lane RNG phase and resolve the selections
/// afterwards (by mask or by this scan) without touching any stream order.
#[inline]
pub(crate) fn select_with_target(weights: impl Iterator<Item = f64>, target: f64) -> usize {
    let mut acc = 0.0;
    let mut last_nonzero = None;
    for (i, w) in weights.enumerate() {
        // Skipping zero rates leaves the accumulation unchanged and spares
        // the frozen majority of a cold circuit's events the fp add.
        if w > 0.0 {
            acc += w;
            if target < acc {
                return i;
            }
            last_nonzero = Some(i);
        }
    }
    last_nonzero.expect("the total rate was positive")
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_orthodox::TunnelSystemBuilder;

    /// Symmetric SET at its conductance peak: gate charge = e/2.
    fn set_at_peak(vds: f64, temperature: f64) -> MonteCarloSimulator {
        let cg = 1e-18;
        let vg = E / (2.0 * cg);
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", vds);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", vg);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        b.capacitor("CG", gate, island, cg);
        let system = b.build().unwrap();
        MonteCarloSimulator::new(system, SimulationOptions::new(temperature).with_seed(12345))
            .unwrap()
    }

    #[test]
    fn rejects_bad_options() {
        let sim = set_at_peak(1e-3, 1.0);
        let system = sim.system().clone();
        assert!(MonteCarloSimulator::new(system.clone(), SimulationOptions::new(-1.0)).is_err());
        let mut ok = MonteCarloSimulator::new(system, SimulationOptions::new(1.0)).unwrap();
        assert!(ok.run_events(0).is_err());
        assert!(ok.run_for(0.0).is_err());
        assert!(ok.record_trace(0).is_err());
    }

    #[test]
    fn current_flows_at_conductance_peak() {
        let mut sim = set_at_peak(1e-3, 1.0);
        let result = sim.run_events(20_000).unwrap();
        let i_drain = result.junction_current("JD").unwrap();
        let i_source = result.junction_current("JS").unwrap();
        assert!(i_drain.abs() > 1e-12, "drain current {i_drain}");
        // Current continuity: the same current flows through both junctions
        // (within Monte-Carlo noise).
        assert!(
            (i_drain - i_source).abs() < 0.1 * i_drain.abs(),
            "continuity violated: {i_drain} vs {i_source}"
        );
    }

    #[test]
    fn current_direction_follows_bias_sign() {
        let mut forward = set_at_peak(1e-3, 1.0);
        let mut reverse = set_at_peak(-1e-3, 1.0);
        let i_f = forward
            .run_events(20_000)
            .unwrap()
            .junction_current("JD")
            .unwrap();
        let i_r = reverse
            .run_events(20_000)
            .unwrap()
            .junction_current("JD")
            .unwrap();
        assert!(
            i_f * i_r < 0.0,
            "bias reversal must reverse the current: {i_f} vs {i_r}"
        );
    }

    #[test]
    fn blockade_freezes_at_zero_temperature() {
        // Gate at zero charge, tiny bias, T = 0: every event is uphill.
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", 1e-5);
        let source = b.external("source", 0.0);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        let system = b.build().unwrap();
        let mut sim = MonteCarloSimulator::new(
            system,
            SimulationOptions::new(0.0)
                .with_seed(1)
                .with_equilibration(0),
        )
        .unwrap();
        let step = sim.step().unwrap();
        assert!(step.is_none());
        assert!(sim.is_frozen());
        let result = sim.run_events(100).unwrap();
        assert!(result.is_frozen());
        assert_eq!(result.events(), 0);
    }

    #[test]
    fn select_with_target_clamps_the_final_bucket() {
        // Round-off can leave `u * total` at or above the accumulated sum
        // (the junction-pairwise total associates differently from the
        // scan's fold). The selection must then clamp to the last event
        // with a non-zero rate — never panic, never return a zero-rate
        // event. The trailing zero rates model a cold circuit's frozen
        // tail.
        let rates = [0.0, 0.25, 0.5, 0.25, 0.0, 0.0];
        let total: f64 = rates.iter().sum();
        assert_eq!(select_with_target(rates.iter().copied(), total), 3);
        assert_eq!(
            select_with_target(rates.iter().copied(), total * (1.0 + 1e-9)),
            3
        );
        // In-range targets behave like the plain inverse-CDF scan.
        assert_eq!(select_with_target(rates.iter().copied(), 0.0), 1);
        assert_eq!(select_with_target(rates.iter().copied(), 0.3), 2);
        assert_eq!(select_with_target(rates.iter().copied(), 0.8), 3);
    }

    #[test]
    fn auto_kernel_resolves_by_event_count() {
        // Auto is a pure function of the circuit's event count: below the
        // threshold the flat fill_rates path, at or above it the tree —
        // explicit kernels override in both directions.
        assert!(!KmcKernel::Auto.uses_tree(AUTO_TREE_THRESHOLD - 1));
        assert!(KmcKernel::Auto.uses_tree(AUTO_TREE_THRESHOLD));
        assert!(KmcKernel::Incremental.uses_tree(2));
        assert!(!KmcKernel::FullRecompute.uses_tree(10_000));
        assert_eq!(KmcKernel::default(), KmcKernel::Auto);
    }

    #[test]
    fn kernels_agree_on_the_physics() {
        // The incremental table refills to bit-identical rates at every
        // refresh boundary, but its tree total associates differently from
        // the sequential fold (and between refills the maintained rates
        // may differ in final ulps), so the trajectories diverge; the
        // *currents* must still agree within Monte-Carlo error.
        let run = |kernel| {
            let mut sim = set_at_peak(1e-3, 1.0);
            sim.options.kernel = kernel;
            let mut sim = MonteCarloSimulator::new(sim.system().clone(), sim.options).unwrap();
            sim.run_events(50_000)
                .unwrap()
                .junction_current("JD")
                .unwrap()
        };
        let i_inc = run(KmcKernel::Incremental);
        let i_full = run(KmcKernel::FullRecompute);
        let rel = (i_inc - i_full).abs() / i_full.abs();
        assert!(
            rel < 0.05,
            "kernel currents diverged: {i_inc} vs {i_full} ({rel:.3})"
        );
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = set_at_peak(1e-3, 1.0);
        let mut b = set_at_peak(1e-3, 1.0);
        let ra = a.run_events(5_000).unwrap();
        let rb = b.run_events(5_000).unwrap();
        assert_eq!(
            ra.junction_transfer("JD"),
            rb.junction_transfer("JD"),
            "same seed must give identical transfer counts"
        );
        assert!((ra.total_time() - rb.total_time()).abs() < 1e-18);
    }

    #[test]
    fn kmc_current_agrees_with_master_equation_reference() {
        // The KMC estimate at the conductance peak must agree with the exact
        // orthodox (master-equation) current within Monte-Carlo error.
        let vds = 1e-3;
        let temperature = 1.0;
        let mut sim = set_at_peak(vds, temperature);
        let result = sim.run_events(100_000).unwrap();
        let i_kmc = result.junction_current("JD").unwrap();

        let set =
            se_orthodox::set::SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
        let vg = E / (2.0 * 1e-18);
        let i_exact = set.current(vds, vg, 0.0, temperature).unwrap();
        let rel = (i_kmc - i_exact).abs() / i_exact.abs();
        assert!(
            rel < 0.1,
            "KMC {i_kmc} vs exact {i_exact} differ by {rel:.2}"
        );
    }

    #[test]
    fn trace_times_are_monotone() {
        let mut sim = set_at_peak(1e-3, 1.0);
        let trace = sim.record_trace(500).unwrap();
        assert!(trace.len() > 1);
        for pair in trace.windows(2) {
            assert!(pair[1].time >= pair[0].time);
        }
        // Island occupation in a single-island SET stays near 0/1 at the peak.
        assert!(trace.iter().all(|p| p.electrons[0].abs() <= 3));
    }

    #[test]
    fn run_for_advances_the_requested_duration() {
        let mut sim = set_at_peak(1e-3, 1.0);
        let result = sim.run_for(2e-9).unwrap();
        assert!(result.total_time() >= 2e-9);
        assert!(result.events() > 0);
    }

    #[test]
    fn run_until_advances_the_clock_and_counts_transfers() {
        let mut sim = set_at_peak(1e-3, 1.0);
        assert!(sim.run_until(f64::NAN).is_err());
        sim.run_until(1e-9).unwrap();
        assert!(sim.time() >= 1e-9);
        let early: Vec<i64> = sim.net_transfers().to_vec();
        sim.run_until(20e-9).unwrap();
        assert!(sim.time() >= 20e-9);
        // At the conductance peak, charge keeps flowing through the drain
        // junction as the clock advances.
        assert!(sim.net_transfers()[0].abs() > early[0].abs());
    }

    #[test]
    fn run_until_jumps_through_frozen_blockade() {
        // Zero temperature, zero bias: every event is uphill, so the clock
        // must jump to the target time with no transfers.
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", 1e-5);
        let source = b.external("source", 0.0);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        let system = b.build().unwrap();
        let mut sim = MonteCarloSimulator::new(
            system,
            SimulationOptions::new(0.0)
                .with_seed(1)
                .with_equilibration(0),
        )
        .unwrap();
        sim.run_until(5e-9).unwrap();
        assert_eq!(sim.time(), 5e-9);
        assert!(sim.is_frozen());
        assert!(sim.net_transfers().iter().all(|&n| n == 0));
        // Raising the drain bias far above the blockade threshold thaws it.
        sim.system_mut().set_external_voltage(0, 0.5).unwrap();
        sim.run_until(6e-9).unwrap();
        assert!(!sim.is_frozen());
        assert!(sim.net_transfers()[0] != 0);
    }

    #[test]
    fn mean_occupation_tracks_gate_charge() {
        // With the gate set to one full period (gate charge = e), the island
        // prefers exactly one extra electron.
        let cg = 1e-18;
        let vg = E / cg;
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", 0.0);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", vg);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        b.capacitor("CG", gate, island, cg);
        let system = b.build().unwrap();
        let mut sim =
            MonteCarloSimulator::new(system, SimulationOptions::new(4.2).with_seed(99)).unwrap();
        let result = sim.run_events(20_000).unwrap();
        let occupation = result.mean_occupation(0).unwrap();
        assert!(
            (occupation - 1.0).abs() < 0.1,
            "mean occupation {occupation} should be ≈ 1"
        );
    }
}
