//! SIMON-class single-electron circuit simulator.
//!
//! The paper's Section 4 contrasts two simulator families: SPICE extensions
//! with analytic SET models, and "detailed Monte-Carlo simulators, such as
//! SIMON, \[which\] capture all the necessary physics but are limited in terms
//! of circuit size". This crate is the Monte-Carlo family member of the
//! toolkit. It consumes a [`se_netlist::Netlist`] (or a hand-built
//! [`se_orthodox::TunnelSystem`]) and offers two engines over the same
//! orthodox physics:
//!
//! * [`kmc::MonteCarloSimulator`] — a kinetic Monte-Carlo (Gillespie) engine
//!   that samples individual tunnel events; handles any island count, gives
//!   time-domain traces and noise, optionally includes cotunneling events.
//!   Its step loop runs on the incremental hot path of
//!   [`se_orthodox::live`]: cached island potentials, O(1) per-event ΔF, a
//!   persistent rate table, no per-step allocation;
//! * [`master::MasterEquation`] — a deterministic master-equation solver
//!   that enumerates charge states in a window around the ground state and
//!   solves for the stationary distribution; the accuracy reference. The
//!   generator is assembled sparsely (CSR over the state lattice) and
//!   solved iteratively (preconditioned BiCGSTAB by default, anchored
//!   Gauss–Seidel as fallback), so the enumeration scales to millions of
//!   states, and bias sweeps can warm-start each point from its
//!   neighbour's converged distribution.
//!
//! Both engines implement [`se_engine::StationaryEngine`], so [`sweep`]'s
//! helpers (and anything else built on [`se_engine::SweepRunner`]) drive
//! them through one parallel, deterministic execution layer; [`builder`]
//! converts netlists into tunnel systems.
//!
//! # Example
//!
//! ```
//! use se_montecarlo::prelude::*;
//!
//! # fn main() -> Result<(), se_montecarlo::MonteCarloError> {
//! // Single SET, drain biased at 1 mV, gate at the conductance peak.
//! let deck = "single SET\n\
//!             VD drain 0 1m\n\
//!             VG gate 0 0.08\n\
//!             J1 drain island C=1a R=100k\n\
//!             J2 island 0 C=1a R=100k\n\
//!             CG gate island 1a\n";
//! let netlist = se_netlist::parse_deck(deck).map_err(MonteCarloError::from)?;
//! let system = tunnel_system_from_netlist(&netlist)?;
//! let mut sim = MonteCarloSimulator::new(system, SimulationOptions::new(4.2).with_seed(7))?;
//! let result = sim.run_events(20_000)?;
//! let drain_current = result.junction_current("J1");
//! assert!(drain_current.is_some());
//! # Ok(())
//! # }
//! ```
//!
//! The same device through the unified sweep layer — the master-equation
//! engine, swept in parallel across bias points:
//!
//! ```
//! use se_montecarlo::prelude::*;
//!
//! # fn main() -> Result<(), se_montecarlo::MonteCarloError> {
//! let deck = "single SET\n\
//!             VD drain 0 1m\n\
//!             VG gate 0 0\n\
//!             J1 drain island C=1a R=100k\n\
//!             J2 island 0 C=1a R=100k\n\
//!             CG gate island 1a\n";
//! let netlist = se_netlist::parse_deck(deck).map_err(MonteCarloError::from)?;
//! let system = tunnel_system_from_netlist(&netlist)?;
//! let solver = MasterEquation::new(system, 1.0)?;
//! let values = se_montecarlo::sweep::linspace(0.0, 0.16, 9)?;
//! let sweep = SweepRunner::new().run(&solver, "gate", &values, "J1")?;
//! assert_eq!(sweep.len(), 9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(a > b)` is the idiom this crate uses to reject NaN alongside ordinary
// range violations.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod batched;
pub mod builder;
pub mod engine;
pub mod error;
pub mod kmc;
pub mod master;
pub mod observables;
pub mod sweep;

pub use batched::{BatchedKmcEngine, ReplicaObservation};
pub use builder::tunnel_system_from_netlist;
pub use engine::{resolve_electrode, resolve_junction};
pub use error::MonteCarloError;
pub use kmc::{KmcKernel, MonteCarloSimulator, SimulationOptions, TracePoint, AUTO_TREE_THRESHOLD};
pub use master::{MasterEquation, MasterSolution, MasterSolveStats};
pub use observables::RunResult;
pub use se_numeric::{Preconditioner, StationarySolver};
pub use sweep::{gate_sweep_kmc, gate_sweep_master, stability_map_master, SweepPoint};

/// Commonly used types for driving the Monte-Carlo simulator.
pub mod prelude {
    pub use crate::batched::{BatchedKmcEngine, ReplicaObservation};
    pub use crate::builder::tunnel_system_from_netlist;
    pub use crate::error::MonteCarloError;
    pub use crate::kmc::{KmcKernel, MonteCarloSimulator, SimulationOptions, TracePoint};
    pub use crate::master::MasterEquation;
    pub use crate::observables::RunResult;
    pub use crate::sweep::{gate_sweep_kmc, gate_sweep_master, stability_map_master, SweepPoint};
    pub use se_engine::{StationaryEngine, SweepRunner};
    pub use se_orthodox::{ChargeState, TunnelSystem};
}
