//! Deterministic master-equation solver.
//!
//! The stationary state of the orthodox model can be computed without
//! sampling: enumerate the charge states in a window around the
//! electrostatic ground state, assemble the transition-rate generator from
//! the same orthodox rates the Monte-Carlo engine samples, and solve for
//! the stationary probability distribution. This is the accuracy reference
//! used to validate the Monte-Carlo engine (and the analytic SPICE model)
//! in experiment E10, exactly the role the paper assigns to "detailed"
//! simulators.
//!
//! The state space is handled sparsely: each charge state couples to at
//! most two neighbours per junction, so the generator is assembled as CSR
//! triplets over the mixed-radix state lattice (per-event index offsets,
//! no hash lookups) and the stationary distribution comes from the solver
//! selection in [`se_numeric::sparse`] — preconditioned BiCGSTAB by
//! default, with the anchored Gauss–Seidel sweep as selectable alternative
//! and automatic fallback. Together with the incremental [`LiveState`]
//! walk of the enumeration (one axpy per lattice step instead of a dense
//! solve per state), this lets the default enumeration window cover
//! millions of states — the old dense-LU implementation capped out at
//! 20 000 and the Gauss–Seidel-only sparse path at 400 000.
//!
//! Sweeps over nearby operating points can reuse a converged solution as
//! the next solve's starting iterate via [`MasterEquation::solve_warm`]:
//! the previous distribution is re-indexed onto the (possibly shifted)
//! new enumeration window, which typically cuts the iteration count to a
//! handful. Warm-starting changes only the starting iterate — solves are
//! deterministic for a given (system, warm seed) pair.

use crate::error::MonteCarloError;
use se_numeric::sparse::{
    stationary_distribution_with, CsrMatrix, StationaryOptions, StationarySolver,
    StationaryWorkspace,
};
use se_orthodox::{ChargeState, Endpoint, LiveState, RateContext, TunnelEvent, TunnelSystem};
use se_units::constants::E;
use std::collections::HashMap;

/// Default half-width of the per-island charge window.
const DEFAULT_WINDOW: i64 = 3;

/// Default maximum number of enumerated states. The sparse generator and
/// iterative stationary solve keep both memory and time roughly linear in
/// this number (times the junction count); the old dense-LU path was capped
/// at 20 000 states and the Gauss–Seidel-only sparse path at 400 000 —
/// the Krylov solver pushes the practical ceiling into the millions.
const DEFAULT_MAX_STATES: usize = 2_000_000;

/// Provenance of one master-equation solve: which stationary solver
/// produced the distribution and how hard it had to work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterSolveStats {
    /// Name of the solver that produced the accepted distribution (for
    /// example `"bicgstab-ilu0"`, or `"gauss-seidel(fallback)"` when the
    /// Krylov iteration failed and the sweep finished the job).
    pub solver: &'static str,
    /// Iterations (Krylov steps or Gauss–Seidel sweeps) performed.
    pub iterations: usize,
    /// Final convergence measure reported by the solver.
    pub residual: f64,
    /// Whether the solve was seeded from a previous solution (see
    /// [`MasterEquation::solve_warm`]).
    pub warm_started: bool,
}

/// Stationary solution of the master equation.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterSolution {
    states: Vec<ChargeState>,
    probabilities: Vec<f64>,
    junction_currents: HashMap<String, f64>,
    /// Window geometry of the enumeration, kept so a later solve can
    /// re-index this distribution onto its own (possibly shifted) window.
    center: ChargeState,
    window: i64,
    stats: MasterSolveStats,
}

impl MasterSolution {
    /// The enumerated charge states.
    #[must_use]
    pub fn states(&self) -> &[ChargeState] {
        &self.states
    }

    /// Stationary probability of each state (same order as
    /// [`Self::states`]).
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Stationary conventional current through the named junction, in the
    /// junction's `a → b` reference direction (ampere).
    #[must_use]
    pub fn junction_current(&self, junction: &str) -> Option<f64> {
        self.junction_currents.get(junction).copied()
    }

    /// Probability of the given charge state, or 0 if it was outside the
    /// enumeration window.
    #[must_use]
    pub fn probability_of(&self, state: &ChargeState) -> f64 {
        self.states
            .iter()
            .position(|s| s == state)
            .map_or(0.0, |i| self.probabilities[i])
    }

    /// Mean number of excess electrons on island `i`.
    #[must_use]
    pub fn mean_occupation(&self, island: usize) -> f64 {
        self.states
            .iter()
            .zip(&self.probabilities)
            .map(|(s, &p)| p * s.0[island] as f64)
            .sum()
    }

    /// Provenance of the stationary solve that produced this solution.
    #[must_use]
    pub fn stats(&self) -> &MasterSolveStats {
        &self.stats
    }
}

/// Master-equation solver over a [`TunnelSystem`].
#[derive(Debug, Clone)]
pub struct MasterEquation {
    system: TunnelSystem,
    temperature: f64,
    window: i64,
    max_states: usize,
    solver: StationarySolver,
}

impl MasterEquation {
    /// Creates a solver at the given temperature with the default charge
    /// window (±3 electrons per island around the electrostatic ground
    /// state).
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] for a negative or
    /// non-finite temperature.
    pub fn new(system: TunnelSystem, temperature: f64) -> Result<Self, MonteCarloError> {
        if temperature < 0.0 || !temperature.is_finite() {
            return Err(MonteCarloError::InvalidArgument(format!(
                "temperature must be non-negative and finite, got {temperature}"
            )));
        }
        Ok(MasterEquation {
            system,
            temperature,
            window: DEFAULT_WINDOW,
            max_states: DEFAULT_MAX_STATES,
            solver: StationarySolver::default(),
        })
    }

    /// Selects the stationary solver (default: BiCGSTAB + ILU(0) with an
    /// automatic Gauss–Seidel fallback).
    #[must_use]
    pub fn with_solver(mut self, solver: StationarySolver) -> Self {
        self.solver = solver;
        self
    }

    /// The configured stationary solver.
    #[must_use]
    pub fn solver(&self) -> StationarySolver {
        self.solver
    }

    /// Sets the per-island charge window half-width.
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] if `window < 1`.
    pub fn with_window(mut self, window: i64) -> Result<Self, MonteCarloError> {
        if window < 1 {
            return Err(MonteCarloError::InvalidArgument(format!(
                "window must be at least 1, got {window}"
            )));
        }
        self.window = window;
        Ok(self)
    }

    /// Sets the maximum number of enumerated states (the guard against
    /// accidentally exponential windows, default 2 000 000).
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] if `max_states == 0`.
    pub fn with_max_states(mut self, max_states: usize) -> Result<Self, MonteCarloError> {
        if max_states == 0 {
            return Err(MonteCarloError::InvalidArgument(
                "the state limit must be at least 1".into(),
            ));
        }
        self.max_states = max_states;
        Ok(self)
    }

    /// The tunnel system being solved.
    #[must_use]
    pub fn system(&self) -> &TunnelSystem {
        &self.system
    }

    /// Mutable access to the tunnel system (to change bias points between
    /// solves).
    pub fn system_mut(&mut self) -> &mut TunnelSystem {
        &mut self.system
    }

    /// Finds the electrostatic ground state by greedy descent from the
    /// charge-neutral state.
    ///
    /// At a conducting bias point no true minimum exists — the sources do
    /// work, so the free energy keeps decreasing around the
    /// current-carrying cycle. The descent therefore stops at the first
    /// revisited charge state; because every step strictly lowers the free
    /// energy, the stopping state is the lowest-free-energy state seen,
    /// deterministic, and a natural center for the enumeration window.
    /// (The pre-sparse implementation span through its full iteration
    /// bound at every conducting point instead, which dominated
    /// small-sweep wall-clock.)
    #[must_use]
    pub fn ground_state(&self) -> ChargeState {
        let islands = self.system.island_count();
        let mut live = LiveState::new(&self.system, ChargeState::neutral(islands));
        let mut visited: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
        visited.insert(live.state().0.clone());
        // Bounded for robustness; descent paths and cycles are short.
        for _ in 0..10_000 {
            let mut best_step: Option<(f64, TunnelEvent)> = None;
            for idx in 0..self.system.event_count() {
                let event = self.system.event(idx);
                let df = live.delta_free_energy(&self.system, event);
                if df < -1e-30 && best_step.is_none_or(|(b, _)| df < b) {
                    best_step = Some((df, event));
                }
            }
            match best_step {
                Some((_, event)) => {
                    live.apply(&self.system, event);
                    if !visited.insert(live.state().0.clone()) {
                        break;
                    }
                }
                None => break,
            }
        }
        live.into_state()
    }

    /// Solves for the stationary distribution and junction currents.
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::StateSpaceTooLarge`] if the enumeration
    /// exceeds the state limit, and propagates numerical errors from the
    /// iterative stationary solve (including
    /// [`se_numeric::NumericError::NoConvergence`] if the selected solver
    /// and its fallback both exhaust their iteration budgets).
    pub fn solve(&self) -> Result<MasterSolution, MonteCarloError> {
        self.solve_warm(None)
    }

    /// Solves for the stationary distribution, optionally warm-starting
    /// the iteration from a previously converged solution.
    ///
    /// The previous distribution is re-indexed onto this solve's
    /// enumeration window (the windows may be centered on different ground
    /// states — each state is matched by its physical island charges, and
    /// charges that fall outside either window drop out). A seed is used
    /// only if it is structurally compatible (same per-island window
    /// half-width and island count) and carries probability on this
    /// solve's ground state; otherwise the solve cold-starts exactly like
    /// [`MasterEquation::solve`]. Warm-starting changes the starting
    /// iterate, not the fixed iteration/reduction order, so a solve is
    /// deterministic for a given (system, warm seed) pair.
    ///
    /// # Errors
    ///
    /// As [`MasterEquation::solve`].
    pub fn solve_warm(
        &self,
        warm: Option<&MasterSolution>,
    ) -> Result<MasterSolution, MonteCarloError> {
        let assembly = self.assemble()?;
        let Assembly {
            center,
            span,
            place,
            ground_index,
            states,
            inflow,
            out_rate,
        } = assembly;
        let state_count = states.len();
        let islands = self.system.island_count();

        // Re-index the warm seed onto this window. The state at counter
        // value `index` has charges `n_i = center_i − window + digit_i`,
        // so the same physical state sits at digit
        // `digit_i + (center_i − prev_center_i)` of the previous window.
        let warm_p: Option<Vec<f64>> = warm.and_then(|prev| {
            if prev.window != self.window || prev.center.0.len() != islands {
                return None;
            }
            let delta: Vec<i64> = center
                .0
                .iter()
                .zip(&prev.center.0)
                .map(|(&now, &before)| now - before)
                .collect();
            let seed = if delta.iter().all(|&d| d == 0) {
                prev.probabilities.clone()
            } else {
                let mut seed = vec![0.0_f64; state_count];
                for (index, slot) in seed.iter_mut().enumerate() {
                    let mut rem = index;
                    let mut prev_index = 0_i64;
                    let mut inside = true;
                    for i in 0..islands {
                        let digit = (rem % span) as i64;
                        rem /= span;
                        let prev_digit = digit + delta[i];
                        if !(0..span as i64).contains(&prev_digit) {
                            inside = false;
                            break;
                        }
                        prev_index += prev_digit * place[i];
                    }
                    if inside {
                        *slot = prev.probabilities[prev_index as usize];
                    }
                }
                seed
            };
            // The solver re-scales the seed so the anchor carries 1; a
            // seed with no mass there cannot be used.
            (seed[ground_index] > 0.0).then_some(seed)
        });

        // The ground state anchors the iteration: its balance equation is
        // the one the normalisation condition replaces (as in the dense
        // implementation), and the regularisation in `assemble` guarantees
        // every state drains towards it.
        let options = StationaryOptions {
            solver: self.solver,
            ..StationaryOptions::default()
        };
        let mut workspace = StationaryWorkspace::new();
        let (probabilities, solve_stats) = stationary_distribution_with(
            &inflow,
            &out_rate,
            ground_index,
            &options,
            warm_p.as_deref(),
            &mut workspace,
        )?;
        let stats = MasterSolveStats {
            solver: solve_stats.solver,
            iterations: solve_stats.iterations,
            residual: solve_stats.residual,
            warm_started: warm_p.is_some(),
        };

        // Junction currents: net a→b tunnel rate weighted by the stationary
        // occupation, using the *real* event rates (out-of-window targets
        // included — charge that leaves the window still crossed the
        // junction). Events keep their canonical order, so junction `j`
        // owns rate slots `2j` (a→b) and `2j + 1` (b→a). The lattice is
        // walked a second time instead of buffering every state's rates
        // during assembly — the O(states × events) buffer was the memory
        // ceiling at million-state windows — and states with zero
        // stationary probability skip the rate evaluation entirely.
        let rate_ctx = RateContext::new(&self.system, self.temperature)?;
        let junction_count = self.system.junctions().len();
        let mut net_rates = vec![0.0_f64; junction_count];
        let first = ChargeState(center.0.iter().map(|&c| c - self.window).collect());
        let mut live = LiveState::new(&self.system, first);
        let mut digits = vec![0_usize; islands];
        let mut scratch = Vec::with_capacity(self.system.event_count());
        for (index, &p) in probabilities.iter().enumerate() {
            if p != 0.0 {
                rate_ctx.fill_rates(&self.system, &live, &mut scratch);
                for (j_idx, net) in net_rates.iter_mut().enumerate() {
                    *net += p * (scratch[2 * j_idx] - scratch[2 * j_idx + 1]);
                }
            }
            if index + 1 < state_count {
                let mut i = 0;
                loop {
                    digits[i] += 1;
                    if digits[i] < span {
                        live.shift_island(&self.system, i, 1);
                        break;
                    }
                    digits[i] = 0;
                    live.shift_island(&self.system, i, -(span as i64 - 1));
                    i += 1;
                }
            }
        }
        let mut junction_currents = HashMap::new();
        for (j_idx, junction) in self.system.junctions().iter().enumerate() {
            junction_currents.insert(junction.name.clone(), -E * net_rates[j_idx]);
        }

        Ok(MasterSolution {
            states,
            probabilities,
            junction_currents,
            center,
            window: self.window,
            stats,
        })
    }

    /// Enumerates the window and assembles the regularised generator.
    fn assemble(&self) -> Result<Assembly, MonteCarloError> {
        let islands = self.system.island_count();
        let span = (2 * self.window + 1) as usize;
        let state_count =
            span.checked_pow(islands as u32)
                .ok_or(MonteCarloError::StateSpaceTooLarge {
                    states: usize::MAX,
                    limit: self.max_states,
                })?;
        if state_count > self.max_states {
            return Err(MonteCarloError::StateSpaceTooLarge {
                states: state_count,
                limit: self.max_states,
            });
        }

        let center = self.ground_state();
        let rate_ctx = RateContext::new(&self.system, self.temperature)?;
        let events = self.system.events();

        // The enumeration is a mixed-radix counter over the window box
        // around the ground state: island `i` is digit `i` with place value
        // `span^i`, so the state at counter value `index` has
        // `n_i = center_i − window + digit_i(index)`. An event shifts at
        // most two digits by ±1, which makes its target state a *constant*
        // index offset away — the whole generator assembles with integer
        // arithmetic, no state hashing.
        let place: Vec<i64> = (0..islands)
            .scan(1_i64, |acc, _| {
                let p = *acc;
                *acc *= span as i64;
                Some(p)
            })
            .collect();
        struct EventGeometry {
            /// Index offset of the target state.
            offset: i64,
            /// Digit moves: (island, ±1).
            moves: Vec<(usize, i64)>,
        }
        let geometry: Vec<EventGeometry> = events
            .iter()
            .map(|&event| {
                let (from, to) = self.system.event_endpoints(event);
                let mut moves = Vec::with_capacity(2);
                if let Endpoint::Island(i) = from {
                    moves.push((i, -1_i64));
                }
                if let Endpoint::Island(i) = to {
                    moves.push((i, 1_i64));
                }
                let offset = moves.iter().map(|&(i, d)| d * place[i]).sum();
                EventGeometry { offset, moves }
            })
            .collect();
        let ground_index =
            usize::try_from((0..islands).map(|i| self.window * place[i]).sum::<i64>())
                .expect("the ground state is inside its own window");

        // Walk the lattice with an incrementally-updated LiveState (one
        // axpy per counter step) and assemble the off-diagonal inflow
        // triplets plus the total out-rate of every state. Rates towards
        // states outside the window are dropped entirely (they neither
        // appear as inflows nor count into the out-rate), exactly as in the
        // dense implementation.
        let first = ChargeState(center.0.iter().map(|&c| c - self.window).collect());
        let mut live = LiveState::new(&self.system, first);
        let mut digits = vec![0_usize; islands];
        let mut states = Vec::with_capacity(state_count);
        let mut out_rate = vec![0.0_f64; state_count];
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut scratch = Vec::with_capacity(events.len());

        for (index, out) in out_rate.iter_mut().enumerate() {
            states.push(live.state().clone());
            rate_ctx.fill_rates(&self.system, &live, &mut scratch);
            for (e, geo) in geometry.iter().enumerate() {
                let rate = scratch[e];
                if rate <= 0.0 {
                    continue;
                }
                let in_window = geo.moves.iter().all(|&(i, d)| {
                    let digit = digits[i] as i64 + d;
                    (0..span as i64).contains(&digit)
                });
                if !in_window {
                    continue;
                }
                let target = (index as i64 + geo.offset) as usize;
                triplets.push((target, index, rate));
                *out += rate;
            }
            // Advance the mixed-radix counter, keeping the live state in
            // lockstep (a wrap of digit `i` steps the island back by the
            // full span; the carry target steps forward by one).
            if index + 1 < state_count {
                let mut i = 0;
                loop {
                    digits[i] += 1;
                    if digits[i] < span {
                        live.shift_island(&self.system, i, 1);
                        break;
                    }
                    digits[i] = 0;
                    live.shift_island(&self.system, i, -(span as i64 - 1));
                    i += 1;
                }
            }
        }

        // Regularise isolated states: at low temperature every rate out of
        // a deeply blockaded state can underflow to exactly zero, leaving
        // an absorbing state that is not the ground state. A vanishingly
        // small escape rate towards the ground state (10⁻¹² of the largest
        // total out-rate) makes the chain irreducible without affecting any
        // junction current, which is computed from the real event rates
        // only.
        let rate_scale = out_rate.iter().fold(0.0_f64, |m, &v| m.max(v));
        let epsilon = 1e-12 * if rate_scale > 0.0 { rate_scale } else { 1.0 };
        for (i, out) in out_rate.iter_mut().enumerate() {
            if i == ground_index {
                continue;
            }
            triplets.push((ground_index, i, epsilon));
            *out += epsilon;
        }

        let inflow = CsrMatrix::from_triplets(state_count, state_count, &triplets)?;
        Ok(Assembly {
            center,
            span,
            place,
            ground_index,
            states,
            inflow,
            out_rate,
        })
    }

    /// Assembles and returns the regularised anchored generator — the
    /// inflow matrix, total out-rate vector and anchor index — without
    /// solving it. This exists so benchmarks can time the stationary
    /// solvers alone on a real master-equation generator; it is not part
    /// of the supported API surface.
    ///
    /// # Errors
    ///
    /// As [`MasterEquation::solve`], for the assembly phase.
    #[doc(hidden)]
    pub fn generator(&self) -> Result<(CsrMatrix, Vec<f64>, usize), MonteCarloError> {
        let assembly = self.assemble()?;
        Ok((assembly.inflow, assembly.out_rate, assembly.ground_index))
    }
}

/// The assembled generator of one enumeration window.
struct Assembly {
    center: ChargeState,
    span: usize,
    place: Vec<i64>,
    ground_index: usize,
    states: Vec<ChargeState>,
    inflow: CsrMatrix,
    out_rate: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_orthodox::TunnelSystemBuilder;

    fn set_system(vds: f64, vg: f64, q0: f64) -> TunnelSystem {
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", q0);
        let drain = b.external("drain", vds);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", vg);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        b.capacitor("CG", gate, island, 1e-18);
        b.build().unwrap()
    }

    #[test]
    fn rejects_invalid_arguments() {
        let system = set_system(0.0, 0.0, 0.0);
        assert!(MasterEquation::new(system.clone(), -1.0).is_err());
        let me = MasterEquation::new(system, 1.0).unwrap();
        assert!(me.clone().with_window(0).is_err());
        assert!(me.clone().with_max_states(0).is_err());
    }

    #[test]
    fn probabilities_are_normalised_and_non_negative() {
        let me = MasterEquation::new(set_system(1e-3, 0.05, 0.0), 4.2).unwrap();
        let solution = me.solve().unwrap();
        let total: f64 = solution.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(solution.probabilities().iter().all(|&p| p >= 0.0));
        assert_eq!(solution.states().len(), solution.probabilities().len());
    }

    #[test]
    fn blockade_keeps_island_neutral() {
        let me = MasterEquation::new(set_system(1e-4, 0.0, 0.0), 1.0).unwrap();
        let solution = me.solve().unwrap();
        let neutral = ChargeState(vec![0]);
        assert!(solution.probability_of(&neutral) > 0.99);
        assert!(solution.mean_occupation(0).abs() < 0.01);
        // And the blockade current is vanishingly small.
        let i = solution.junction_current("JD").unwrap();
        assert!(i.abs() < 1e-15, "blockade current {i}");
    }

    #[test]
    fn current_continuity_between_junctions() {
        let cg = 1e-18;
        let vg = E / (2.0 * cg);
        let me = MasterEquation::new(set_system(1e-3, vg, 0.0), 1.0).unwrap();
        let solution = me.solve().unwrap();
        let i_d = solution.junction_current("JD").unwrap();
        let i_s = solution.junction_current("JS").unwrap();
        assert!(i_d.abs() > 1e-12);
        assert!(
            (i_d - i_s).abs() < 1e-6 * i_d.abs(),
            "continuity violated: {i_d} vs {i_s}"
        );
    }

    #[test]
    fn master_equation_matches_single_set_reference() {
        // The generic multi-island solver must agree with the specialised
        // birth–death solution in `se-orthodox::set`.
        let cg = 1e-18;
        let vds = 1e-3;
        let temperature = 1.0;
        let set =
            se_orthodox::set::SingleElectronTransistor::new(cg, 0.5e-18, 0.5e-18, 100e3, 100e3)
                .unwrap();
        for vg_frac in [0.1, 0.25, 0.5, 0.75] {
            let vg = vg_frac * E / cg;
            let me = MasterEquation::new(set_system(vds, vg, 0.0), temperature).unwrap();
            let solution = me.solve().unwrap();
            let i_master = solution.junction_current("JD").unwrap();
            let i_ref = set.current(vds, vg, 0.0, temperature).unwrap();
            let scale = i_ref.abs().max(1e-15);
            assert!(
                (i_master - i_ref).abs() < 0.02 * scale + 1e-15,
                "vg fraction {vg_frac}: master {i_master} vs reference {i_ref}"
            );
        }
    }

    #[test]
    fn ground_state_follows_gate_charge() {
        // Gate charge of ~2 e pulls two electrons onto the island.
        let cg = 1e-18;
        let vg = 2.0 * E / cg;
        let me = MasterEquation::new(set_system(0.0, vg, 0.0), 0.1).unwrap();
        let ground = me.ground_state();
        assert_eq!(ground.0, vec![2]);
    }

    #[test]
    fn state_space_limit_is_enforced() {
        // A 2-island system with a huge window (1601² states) exceeds the
        // default 2M limit.
        let mut b = TunnelSystemBuilder::new();
        let i1 = b.island("i1", 0.0);
        let i2 = b.island("i2", 0.0);
        let s = b.external("s", 0.0);
        b.junction("J1", s, i1, 1e-18, 1e5);
        b.junction("J2", i1, i2, 1e-18, 1e5);
        b.junction("J3", i2, s, 1e-18, 1e5);
        let system = b.build().unwrap();
        let me = MasterEquation::new(system.clone(), 1.0)
            .unwrap()
            .with_window(800)
            .unwrap();
        assert!(matches!(
            me.solve(),
            Err(MonteCarloError::StateSpaceTooLarge { .. })
        ));
        // A caller-supplied limit tightens the guard further.
        let small = MasterEquation::new(system, 1.0)
            .unwrap()
            .with_max_states(10)
            .unwrap();
        assert!(matches!(
            small.solve(),
            Err(MonteCarloError::StateSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn double_dot_solution_is_normalised() {
        let mut b = TunnelSystemBuilder::new();
        let i1 = b.island("i1", 0.0);
        let i2 = b.island("i2", 0.0);
        let s = b.external("s", 1e-3);
        let d = b.external("d", 0.0);
        let g = b.external("g", 0.05);
        b.junction("J1", s, i1, 1e-18, 1e5);
        b.junction("J2", i1, i2, 1e-18, 1e5);
        b.junction("J3", i2, d, 1e-18, 1e5);
        b.capacitor("Cg1", g, i1, 0.5e-18);
        b.capacitor("Cg2", g, i2, 0.5e-18);
        let system = b.build().unwrap();
        let me = MasterEquation::new(system, 4.2)
            .unwrap()
            .with_window(2)
            .unwrap();
        let solution = me.solve().unwrap();
        let total: f64 = solution.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Current continuity through the series chain.
        let i1c = solution.junction_current("J1").unwrap();
        let i3c = solution.junction_current("J3").unwrap();
        assert!((i1c - i3c).abs() < 1e-6 * i1c.abs().max(1e-18));
    }

    #[test]
    fn solver_selections_agree_and_report_provenance() {
        let cg = 1e-18;
        let vg = E / (2.0 * cg);
        let gs = MasterEquation::new(set_system(1e-3, vg, 0.0), 1.0)
            .unwrap()
            .with_solver(StationarySolver::GaussSeidel);
        let reference = gs.solve().unwrap();
        assert_eq!(reference.stats().solver, "gauss-seidel");
        assert!(reference.stats().iterations > 0);
        assert!(!reference.stats().warm_started);
        let krylov = MasterEquation::new(set_system(1e-3, vg, 0.0), 1.0).unwrap();
        let solution = krylov.solve().unwrap();
        assert_eq!(solution.stats().solver, "bicgstab-ilu0");
        for (a, b) in solution
            .probabilities()
            .iter()
            .zip(reference.probabilities())
        {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        let i_gs = reference.junction_current("JD").unwrap();
        let i_kr = solution.junction_current("JD").unwrap();
        assert!((i_gs - i_kr).abs() < 1e-8 * i_gs.abs().max(1e-18));
    }

    #[test]
    fn warm_started_solve_agrees_with_cold_start_across_a_bias_step() {
        let cg = 1e-18;
        let me = |vg_frac: f64| {
            MasterEquation::new(set_system(1e-3, vg_frac * E / cg, 0.0), 1.0).unwrap()
        };
        let previous = me(0.48).solve().unwrap();
        // The next bias point may shift the window center; the warm solve
        // must land on the cold solution regardless.
        let cold = me(0.52).solve().unwrap();
        let warm = me(0.52).solve_warm(Some(&previous)).unwrap();
        assert!(warm.stats().warm_started);
        assert!(!cold.stats().warm_started);
        for (a, b) in warm.probabilities().iter().zip(cold.probabilities()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        let i_cold = cold.junction_current("JD").unwrap();
        let i_warm = warm.junction_current("JD").unwrap();
        assert!((i_cold - i_warm).abs() < 1e-8 * i_cold.abs().max(1e-18));
    }

    #[test]
    fn incompatible_warm_seeds_fall_back_to_cold_start() {
        let cg = 1e-18;
        let system = || set_system(1e-3, 0.5 * E / cg, 0.0);
        let cold = MasterEquation::new(system(), 1.0).unwrap().solve().unwrap();
        // A seed from a different window half-width is rejected outright.
        let narrow = MasterEquation::new(system(), 1.0)
            .unwrap()
            .with_window(2)
            .unwrap()
            .solve()
            .unwrap();
        let solved = MasterEquation::new(system(), 1.0)
            .unwrap()
            .solve_warm(Some(&narrow))
            .unwrap();
        assert!(!solved.stats().warm_started);
        let bits = |p: &[f64]| p.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(solved.probabilities()), bits(cold.probabilities()));
    }

    #[test]
    fn state_spaces_beyond_the_old_dense_limit_solve() {
        // A 2-island window of ±100 enumerates 201² = 40 401 states — past
        // the old dense-LU cap of 20 000 — and still solves within the
        // default limits of the sparse path.
        let mut b = TunnelSystemBuilder::new();
        let i1 = b.island("i1", 0.0);
        let i2 = b.island("i2", 0.0);
        let s = b.external("s", 1e-3);
        let d = b.external("d", 0.0);
        b.junction("J1", s, i1, 1e-18, 1e5);
        b.junction("J2", i1, i2, 1e-18, 1e5);
        b.junction("J3", i2, d, 1e-18, 1e5);
        let system = b.build().unwrap();
        let me = MasterEquation::new(system, 1.0)
            .unwrap()
            .with_window(100)
            .unwrap();
        let solution = me.solve().unwrap();
        assert_eq!(solution.states().len(), 201 * 201);
        let total: f64 = solution.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let i1c = solution.junction_current("J1").unwrap();
        let i3c = solution.junction_current("J3").unwrap();
        assert!((i1c - i3c).abs() < 1e-6 * i1c.abs().max(1e-18));
        // The distribution concentrates on the handful of physical states;
        // the vast window padding carries no weight.
        let neutral = ChargeState(vec![0, 0]);
        assert!(solution.probability_of(&neutral) > 0.5);
    }
}
