//! Deterministic master-equation solver.
//!
//! For small circuits the stationary state of the orthodox model can be
//! computed exactly: enumerate the charge states in a window around the
//! electrostatic ground state, assemble the transition-rate matrix from the
//! same orthodox rates the Monte-Carlo engine samples, and solve the linear
//! system for the stationary probability distribution. This is the accuracy
//! reference used to validate the Monte-Carlo engine (and the analytic
//! SPICE model) in experiment E10, exactly the role the paper assigns to
//! "detailed" simulators.

use crate::error::MonteCarloError;
use se_numeric::{LuDecomposition, Matrix};
use se_orthodox::{rates::tunnel_rate, ChargeState, TunnelSystem};
use se_units::constants::E;
use std::collections::HashMap;

/// Default half-width of the per-island charge window.
const DEFAULT_WINDOW: i64 = 3;

/// Default maximum number of enumerated states.
const DEFAULT_MAX_STATES: usize = 20_000;

/// Stationary solution of the master equation.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterSolution {
    states: Vec<ChargeState>,
    probabilities: Vec<f64>,
    junction_currents: HashMap<String, f64>,
}

impl MasterSolution {
    /// The enumerated charge states.
    #[must_use]
    pub fn states(&self) -> &[ChargeState] {
        &self.states
    }

    /// Stationary probability of each state (same order as
    /// [`Self::states`]).
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Stationary conventional current through the named junction, in the
    /// junction's `a → b` reference direction (ampere).
    #[must_use]
    pub fn junction_current(&self, junction: &str) -> Option<f64> {
        self.junction_currents.get(junction).copied()
    }

    /// Probability of the given charge state, or 0 if it was outside the
    /// enumeration window.
    #[must_use]
    pub fn probability_of(&self, state: &ChargeState) -> f64 {
        self.states
            .iter()
            .position(|s| s == state)
            .map_or(0.0, |i| self.probabilities[i])
    }

    /// Mean number of excess electrons on island `i`.
    #[must_use]
    pub fn mean_occupation(&self, island: usize) -> f64 {
        self.states
            .iter()
            .zip(&self.probabilities)
            .map(|(s, &p)| p * s.0[island] as f64)
            .sum()
    }
}

/// Master-equation solver over a [`TunnelSystem`].
#[derive(Debug, Clone)]
pub struct MasterEquation {
    system: TunnelSystem,
    temperature: f64,
    window: i64,
    max_states: usize,
}

impl MasterEquation {
    /// Creates a solver at the given temperature with the default charge
    /// window (±3 electrons per island around the electrostatic ground
    /// state).
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] for a negative or
    /// non-finite temperature.
    pub fn new(system: TunnelSystem, temperature: f64) -> Result<Self, MonteCarloError> {
        if temperature < 0.0 || !temperature.is_finite() {
            return Err(MonteCarloError::InvalidArgument(format!(
                "temperature must be non-negative and finite, got {temperature}"
            )));
        }
        Ok(MasterEquation {
            system,
            temperature,
            window: DEFAULT_WINDOW,
            max_states: DEFAULT_MAX_STATES,
        })
    }

    /// Sets the per-island charge window half-width.
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::InvalidArgument`] if `window < 1`.
    pub fn with_window(mut self, window: i64) -> Result<Self, MonteCarloError> {
        if window < 1 {
            return Err(MonteCarloError::InvalidArgument(format!(
                "window must be at least 1, got {window}"
            )));
        }
        self.window = window;
        Ok(self)
    }

    /// The tunnel system being solved.
    #[must_use]
    pub fn system(&self) -> &TunnelSystem {
        &self.system
    }

    /// Mutable access to the tunnel system (to change bias points between
    /// solves).
    pub fn system_mut(&mut self) -> &mut TunnelSystem {
        &mut self.system
    }

    /// Finds the electrostatic ground state by greedy descent from the
    /// charge-neutral state.
    #[must_use]
    pub fn ground_state(&self) -> ChargeState {
        let mut state = ChargeState::neutral(self.system.island_count());
        // Each step strictly lowers the free energy, so the loop terminates;
        // bound it anyway for robustness against degenerate cases.
        for _ in 0..10_000 {
            let potentials = self.system.island_potentials(&state);
            let mut best: Option<(f64, se_orthodox::TunnelEvent)> = None;
            for event in self.system.events() {
                let df = self
                    .system
                    .delta_free_energy_with_potentials(&potentials, event);
                if df < -1e-30 && best.is_none_or(|(b, _)| df < b) {
                    best = Some((df, event));
                }
            }
            match best {
                Some((_, event)) => self.system.apply_event(&mut state, event),
                None => break,
            }
        }
        state
    }

    /// Solves for the stationary distribution and junction currents.
    ///
    /// # Errors
    ///
    /// Returns [`MonteCarloError::StateSpaceTooLarge`] if the enumeration
    /// exceeds the state limit, and propagates numerical errors from the
    /// linear solve.
    pub fn solve(&self) -> Result<MasterSolution, MonteCarloError> {
        let islands = self.system.island_count();
        let span = (2 * self.window + 1) as usize;
        let state_count =
            span.checked_pow(islands as u32)
                .ok_or(MonteCarloError::StateSpaceTooLarge {
                    states: usize::MAX,
                    limit: self.max_states,
                })?;
        if state_count > self.max_states {
            return Err(MonteCarloError::StateSpaceTooLarge {
                states: state_count,
                limit: self.max_states,
            });
        }

        let center = self.ground_state();

        // Enumerate all states in the window around the ground state.
        let mut states = Vec::with_capacity(state_count);
        let mut index: HashMap<Vec<i64>, usize> = HashMap::with_capacity(state_count);
        let mut counter = vec![0usize; islands];
        loop {
            let state: Vec<i64> = counter
                .iter()
                .zip(&center.0)
                .map(|(&c, &base)| base - self.window + c as i64)
                .collect();
            index.insert(state.clone(), states.len());
            states.push(ChargeState(state));
            // Advance the mixed-radix counter.
            let mut i = 0;
            loop {
                if i == islands {
                    break;
                }
                counter[i] += 1;
                if counter[i] < span {
                    break;
                }
                counter[i] = 0;
                i += 1;
            }
            if i == islands {
                break;
            }
        }

        // Assemble the generator matrix A where A[j][i] is the rate from
        // state i to state j and the diagonal holds the negative total
        // outflow.
        let n = states.len();
        let mut a = Matrix::zeros(n, n);
        let events = self.system.events();
        // Per-junction current accumulators need the rates again, so keep
        // them per (state, event).
        let mut event_rates = vec![vec![0.0; events.len()]; n];
        for (i, state) in states.iter().enumerate() {
            let potentials = self.system.island_potentials(state);
            for (e_idx, &event) in events.iter().enumerate() {
                let df = self
                    .system
                    .delta_free_energy_with_potentials(&potentials, event);
                let rate = tunnel_rate(df, self.system.event_resistance(event), self.temperature)?;
                event_rates[i][e_idx] = rate;
                if rate <= 0.0 {
                    continue;
                }
                let mut target = state.clone();
                self.system.apply_event(&mut target, event);
                if let Some(&j) = index.get(&target.0) {
                    a.add_at(j, i, rate);
                    a.add_at(i, i, -rate);
                }
            }
        }

        // Rescale the generator so its entries are O(1): the stationary
        // condition A·p = 0 is invariant under scaling, but mixing 10¹³-scale
        // tunnel rates with the O(1) normalisation row would make the LU
        // factorisation reject perfectly good pivots.
        let rate_scale = a.max_abs();
        if rate_scale > 0.0 {
            a.scale(1.0 / rate_scale);
        }

        // Regularise isolated states: at low temperature every rate out of a
        // deeply blockaded state can underflow to exactly zero, leaving an
        // all-zero column and a singular generator. A vanishingly small
        // escape rate towards the ground state (10⁻¹² of the fastest rate)
        // makes the chain irreducible without affecting any junction
        // current, which is computed from the real event rates only.
        let ground_index = *index
            .get(&center.0)
            .expect("the ground state is inside its own window");
        let epsilon = 1e-12;
        for i in 0..n {
            if i == ground_index {
                continue;
            }
            a.add_at(ground_index, i, epsilon);
            a.add_at(i, i, -epsilon);
        }

        // Replace the last row by the normalisation condition Σ p = 1.
        let mut rhs = vec![0.0; n];
        for col in 0..n {
            a[(n - 1, col)] = 1.0;
        }
        rhs[n - 1] = 1.0;

        let lu = LuDecomposition::new(&a)?;
        let mut probabilities = lu.solve(&rhs)?;
        // Clamp tiny negative round-off and renormalise.
        for p in &mut probabilities {
            if *p < 0.0 && *p > -1e-9 {
                *p = 0.0;
            }
        }
        let total: f64 = probabilities.iter().sum();
        if total > 0.0 {
            for p in &mut probabilities {
                *p /= total;
            }
        }

        // Junction currents.
        let mut junction_currents = HashMap::new();
        for (j_idx, junction) in self.system.junctions().iter().enumerate() {
            let mut net_rate = 0.0;
            for (i, _) in states.iter().enumerate() {
                let p = probabilities[i];
                if p == 0.0 {
                    continue;
                }
                for (e_idx, &event) in events.iter().enumerate() {
                    if event.junction != j_idx {
                        continue;
                    }
                    let sign = match event.direction {
                        se_orthodox::Direction::AToB => 1.0,
                        se_orthodox::Direction::BToA => -1.0,
                    };
                    net_rate += sign * p * event_rates[i][e_idx];
                }
            }
            junction_currents.insert(junction.name.clone(), -E * net_rate);
        }

        Ok(MasterSolution {
            states,
            probabilities,
            junction_currents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_orthodox::TunnelSystemBuilder;

    fn set_system(vds: f64, vg: f64, q0: f64) -> TunnelSystem {
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", q0);
        let drain = b.external("drain", vds);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", vg);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        b.capacitor("CG", gate, island, 1e-18);
        b.build().unwrap()
    }

    #[test]
    fn rejects_invalid_arguments() {
        let system = set_system(0.0, 0.0, 0.0);
        assert!(MasterEquation::new(system.clone(), -1.0).is_err());
        let me = MasterEquation::new(system, 1.0).unwrap();
        assert!(me.clone().with_window(0).is_err());
    }

    #[test]
    fn probabilities_are_normalised_and_non_negative() {
        let me = MasterEquation::new(set_system(1e-3, 0.05, 0.0), 4.2).unwrap();
        let solution = me.solve().unwrap();
        let total: f64 = solution.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(solution.probabilities().iter().all(|&p| p >= 0.0));
        assert_eq!(solution.states().len(), solution.probabilities().len());
    }

    #[test]
    fn blockade_keeps_island_neutral() {
        let me = MasterEquation::new(set_system(1e-4, 0.0, 0.0), 1.0).unwrap();
        let solution = me.solve().unwrap();
        let neutral = ChargeState(vec![0]);
        assert!(solution.probability_of(&neutral) > 0.99);
        assert!(solution.mean_occupation(0).abs() < 0.01);
        // And the blockade current is vanishingly small.
        let i = solution.junction_current("JD").unwrap();
        assert!(i.abs() < 1e-15, "blockade current {i}");
    }

    #[test]
    fn current_continuity_between_junctions() {
        let cg = 1e-18;
        let vg = E / (2.0 * cg);
        let me = MasterEquation::new(set_system(1e-3, vg, 0.0), 1.0).unwrap();
        let solution = me.solve().unwrap();
        let i_d = solution.junction_current("JD").unwrap();
        let i_s = solution.junction_current("JS").unwrap();
        assert!(i_d.abs() > 1e-12);
        assert!(
            (i_d - i_s).abs() < 1e-6 * i_d.abs(),
            "continuity violated: {i_d} vs {i_s}"
        );
    }

    #[test]
    fn master_equation_matches_single_set_reference() {
        // The generic multi-island solver must agree with the specialised
        // birth–death solution in `se-orthodox::set`.
        let cg = 1e-18;
        let vds = 1e-3;
        let temperature = 1.0;
        let set =
            se_orthodox::set::SingleElectronTransistor::new(cg, 0.5e-18, 0.5e-18, 100e3, 100e3)
                .unwrap();
        for vg_frac in [0.1, 0.25, 0.5, 0.75] {
            let vg = vg_frac * E / cg;
            let me = MasterEquation::new(set_system(vds, vg, 0.0), temperature).unwrap();
            let solution = me.solve().unwrap();
            let i_master = solution.junction_current("JD").unwrap();
            let i_ref = set.current(vds, vg, 0.0, temperature).unwrap();
            let scale = i_ref.abs().max(1e-15);
            assert!(
                (i_master - i_ref).abs() < 0.02 * scale + 1e-15,
                "vg fraction {vg_frac}: master {i_master} vs reference {i_ref}"
            );
        }
    }

    #[test]
    fn ground_state_follows_gate_charge() {
        // Gate charge of ~2 e pulls two electrons onto the island.
        let cg = 1e-18;
        let vg = 2.0 * E / cg;
        let me = MasterEquation::new(set_system(0.0, vg, 0.0), 0.1).unwrap();
        let ground = me.ground_state();
        assert_eq!(ground.0, vec![2]);
    }

    #[test]
    fn state_space_limit_is_enforced() {
        // A 2-island system with a huge window exceeds the default limit.
        let mut b = TunnelSystemBuilder::new();
        let i1 = b.island("i1", 0.0);
        let i2 = b.island("i2", 0.0);
        let s = b.external("s", 0.0);
        b.junction("J1", s, i1, 1e-18, 1e5);
        b.junction("J2", i1, i2, 1e-18, 1e5);
        b.junction("J3", i2, s, 1e-18, 1e5);
        let system = b.build().unwrap();
        let me = MasterEquation::new(system, 1.0)
            .unwrap()
            .with_window(100)
            .unwrap();
        assert!(matches!(
            me.solve(),
            Err(MonteCarloError::StateSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn double_dot_solution_is_normalised() {
        let mut b = TunnelSystemBuilder::new();
        let i1 = b.island("i1", 0.0);
        let i2 = b.island("i2", 0.0);
        let s = b.external("s", 1e-3);
        let d = b.external("d", 0.0);
        let g = b.external("g", 0.05);
        b.junction("J1", s, i1, 1e-18, 1e5);
        b.junction("J2", i1, i2, 1e-18, 1e5);
        b.junction("J3", i2, d, 1e-18, 1e5);
        b.capacitor("Cg1", g, i1, 0.5e-18);
        b.capacitor("Cg2", g, i2, 0.5e-18);
        let system = b.build().unwrap();
        let me = MasterEquation::new(system, 4.2)
            .unwrap()
            .with_window(2)
            .unwrap();
        let solution = me.solve().unwrap();
        let total: f64 = solution.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Current continuity through the series chain.
        let i1c = solution.junction_current("J1").unwrap();
        let i3c = solution.junction_current("J3").unwrap();
        assert!((i1c - i3c).abs() < 1e-6 * i1c.abs().max(1e-18));
    }
}
