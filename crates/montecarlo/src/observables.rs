//! Observables collected from a Monte-Carlo run.

use std::collections::HashMap;

/// Observables of one Monte-Carlo measurement run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    total_time: f64,
    events: u64,
    junction_currents: HashMap<String, f64>,
    junction_transfers: HashMap<String, i64>,
    mean_occupation: Vec<f64>,
    frozen: bool,
}

impl RunResult {
    /// Assembles a result; used by the simulator engines.
    #[must_use]
    pub(crate) fn new(
        total_time: f64,
        events: u64,
        junction_currents: HashMap<String, f64>,
        junction_transfers: HashMap<String, i64>,
        mean_occupation: Vec<f64>,
        frozen: bool,
    ) -> Self {
        RunResult {
            total_time,
            events,
            junction_currents,
            junction_transfers,
            mean_occupation,
            frozen,
        }
    }

    /// Total simulated time in seconds.
    #[must_use]
    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    /// Number of tunnel events executed.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Returns `true` if the run ended because no event had a non-zero rate.
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Time-averaged conventional current through the named junction, in
    /// ampere, measured in the junction's `a → b` reference direction.
    #[must_use]
    pub fn junction_current(&self, junction: &str) -> Option<f64> {
        self.junction_currents.get(junction).copied()
    }

    /// Net number of electrons that tunnelled from side `a` to side `b` of
    /// the named junction.
    #[must_use]
    pub fn junction_transfer(&self, junction: &str) -> Option<i64> {
        self.junction_transfers.get(junction).copied()
    }

    /// Time-averaged number of excess electrons on island `i`.
    #[must_use]
    pub fn mean_occupation(&self, island: usize) -> Option<f64> {
        self.mean_occupation.get(island).copied()
    }

    /// Iterates over `(junction name, current)` pairs.
    pub fn currents(&self) -> impl Iterator<Item = (&str, f64)> {
        self.junction_currents
            .iter()
            .map(|(name, &current)| (name.as_str(), current))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunResult {
        let mut currents = HashMap::new();
        currents.insert("JD".to_string(), 1.5e-9);
        let mut transfers = HashMap::new();
        transfers.insert("JD".to_string(), -42);
        RunResult::new(1e-6, 100, currents, transfers, vec![0.5], false)
    }

    #[test]
    fn accessors_return_stored_values() {
        let r = sample();
        assert_eq!(r.total_time(), 1e-6);
        assert_eq!(r.events(), 100);
        assert!(!r.is_frozen());
        assert_eq!(r.junction_current("JD"), Some(1.5e-9));
        assert_eq!(r.junction_current("nope"), None);
        assert_eq!(r.junction_transfer("JD"), Some(-42));
        assert_eq!(r.mean_occupation(0), Some(0.5));
        assert_eq!(r.mean_occupation(7), None);
        assert_eq!(r.currents().count(), 1);
    }
}
