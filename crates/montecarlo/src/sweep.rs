//! Bias sweeps driven by either simulation engine.
//!
//! These helpers regenerate the classic SET characteristics: the periodic
//! Id–Vg Coulomb oscillations, the Id–Vds blockade/staircase curve and the
//! stability (Coulomb-diamond) map. Since the unified-engine refactor they
//! are thin wrappers over the shared, parallel
//! [`se_engine::SweepRunner`] — every bias point is an independent task
//! fanned out across all cores, with per-point RNG seeds derived
//! deterministically from the sweep seed so parallel and serial runs are
//! bit-identical.

use crate::engine::{resolve_electrode, resolve_junction};
use crate::error::MonteCarloError;
use crate::kmc::{MonteCarloSimulator, SimulationOptions};
use crate::master::MasterEquation;
use se_engine::SweepRunner;
use se_orthodox::TunnelSystem;

/// One point of a bias sweep (re-exported from the unified sweep layer).
pub use se_engine::SweepPoint;

/// Generates `points` evenly spaced values covering `[start, stop]`.
///
/// Descending ranges (`start > stop`) are supported and produce the values
/// in descending order — the natural way to run a reverse-bias sweep.
///
/// # Errors
///
/// Returns [`MonteCarloError::InvalidArgument`] if `points < 2` or the
/// range is degenerate (`start == stop` or non-finite endpoints).
pub fn linspace(start: f64, stop: f64, points: usize) -> Result<Vec<f64>, MonteCarloError> {
    se_engine::linspace(start, stop, points)
        .map_err(|e| MonteCarloError::InvalidArgument(e.to_string()))
}

/// Sweeps the named external electrode with the master-equation solver and
/// measures the current through the named junction. Bias points run in
/// parallel.
///
/// # Errors
///
/// Returns [`MonteCarloError::InvalidArgument`] if the electrode or junction
/// does not exist, and propagates solver errors.
pub fn gate_sweep_master(
    system: &TunnelSystem,
    electrode: &str,
    values: &[f64],
    junction: &str,
    temperature: f64,
) -> Result<Vec<SweepPoint>, MonteCarloError> {
    let solver = MasterEquation::new(system.clone(), temperature)?;
    SweepRunner::new().run(&solver, electrode, values, junction)
}

/// Sweeps the named electrode with the kinetic Monte-Carlo engine, running
/// `events_per_point` measurement events at every bias value. Bias points
/// run in parallel, each with a seed derived from `options.seed` and the
/// point index (see [`se_engine::derive_seed`]), so
/// a seeded sweep is reproducible and independent of thread scheduling;
/// an unseeded sweep (`options.seed == None`) draws a fresh sweep seed from
/// the operating system, keeping repeated runs statistically independent.
///
/// # Errors
///
/// Returns [`MonteCarloError::InvalidArgument`] if the electrode or junction
/// does not exist or `events_per_point == 0`, and propagates engine errors.
pub fn gate_sweep_kmc(
    system: &TunnelSystem,
    electrode: &str,
    values: &[f64],
    junction: &str,
    options: SimulationOptions,
    events_per_point: usize,
) -> Result<Vec<SweepPoint>, MonteCarloError> {
    if events_per_point == 0 {
        return Err(MonteCarloError::InvalidArgument(
            "events_per_point must be at least 1".into(),
        ));
    }
    let seed = options.seed.unwrap_or_else(|| {
        use rand::{RngCore, SeedableRng};
        rand::rngs::StdRng::from_entropy().next_u64()
    });
    let simulator = MonteCarloSimulator::new(
        system.clone(),
        options.with_events_per_solve(events_per_point),
    )?;
    SweepRunner::new()
        .with_seed(seed)
        .run(&simulator, electrode, values, junction)
}

/// Computes a stability (Coulomb-diamond) map: the junction current on a
/// `gate × drain` voltage grid, using the master-equation solver. The result
/// is row-major with gate as the outer loop. Every grid point — not just
/// every row — is an independent parallel task.
///
/// # Errors
///
/// See [`gate_sweep_master`].
pub fn stability_map_master(
    system: &TunnelSystem,
    gate_electrode: &str,
    gate_values: &[f64],
    drain_electrode: &str,
    drain_values: &[f64],
    junction: &str,
    temperature: f64,
) -> Result<Vec<Vec<f64>>, MonteCarloError> {
    let solver = MasterEquation::new(system.clone(), temperature)?;
    let map = SweepRunner::new().stability_map(
        &solver,
        gate_electrode,
        gate_values,
        drain_electrode,
        drain_values,
        junction,
    )?;
    Ok(map.into_rows())
}

/// Validates sweep probe names against a system without running anything —
/// kept for callers that want early, cheap validation. Returns the typed
/// `(electrode, junction)` indices.
///
/// # Errors
///
/// Returns [`MonteCarloError::InvalidArgument`] for unknown names.
pub fn resolve_probe(
    system: &TunnelSystem,
    electrode: &str,
    junction: &str,
) -> Result<(se_engine::ControlId, se_engine::ObservableId), MonteCarloError> {
    Ok((
        resolve_electrode(system, electrode)?,
        resolve_junction(system, junction)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_orthodox::TunnelSystemBuilder;
    use se_units::constants::E;

    fn set_system() -> TunnelSystem {
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", 1e-3);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", 0.0);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        b.capacitor("CG", gate, island, 1e-18);
        b.build().unwrap()
    }

    #[test]
    fn linspace_validates_and_covers_range() {
        assert!(linspace(0.0, 1.0, 1).is_err());
        assert!(linspace(1.0, 1.0, 5).is_err());
        let xs = linspace(0.0, 1.0, 5).unwrap();
        assert_eq!(xs.len(), 5);
        assert_eq!(xs[0], 0.0);
        assert_eq!(xs[4], 1.0);
        // Descending ranges drive reverse-bias sweeps.
        let down = linspace(1.0, 0.0, 5).unwrap();
        assert_eq!(down[0], 1.0);
        assert_eq!(down[4], 0.0);
        assert!(down.windows(2).all(|p| p[1] < p[0]));
    }

    #[test]
    fn unknown_names_are_rejected() {
        let system = set_system();
        let values = [0.0, 0.1];
        assert!(gate_sweep_master(&system, "nope", &values, "JD", 1.0).is_err());
        assert!(gate_sweep_master(&system, "gate", &values, "nope", 1.0).is_err());
        assert!(resolve_probe(&system, "gate", "JD").is_ok());
        assert!(resolve_probe(&system, "gate", "nope").is_err());
        assert!(gate_sweep_kmc(
            &system,
            "gate",
            &values,
            "JD",
            SimulationOptions::new(1.0).with_seed(1),
            0
        )
        .is_err());
    }

    #[test]
    fn master_gate_sweep_shows_coulomb_oscillations() {
        let system = set_system();
        let period = E / 1e-18;
        let values = linspace(0.0, 2.0 * period, 81).unwrap();
        let sweep = gate_sweep_master(&system, "gate", &values, "JD", 1.0).unwrap();
        // Two full periods: the current at 0.5 and 1.5 periods (peaks) is
        // large, at 0 and 1 periods (valleys) it is blockaded.
        let current_at = |frac: f64| {
            let target = frac * period;
            sweep
                .iter()
                .min_by(|a, b| {
                    (a.control - target)
                        .abs()
                        .partial_cmp(&(b.control - target).abs())
                        .unwrap()
                })
                .unwrap()
                .current
        };
        assert!(current_at(0.5) > 100.0 * current_at(0.0).abs().max(1e-18));
        assert!(current_at(1.5) > 100.0 * current_at(1.0).abs().max(1e-18));
        // Periodicity of the two peaks.
        let p1 = current_at(0.5);
        let p2 = current_at(1.5);
        assert!((p1 - p2).abs() < 0.05 * p1);
    }

    #[test]
    fn kmc_sweep_tracks_master_sweep() {
        let system = set_system();
        let period = E / 1e-18;
        let values = [0.25 * period, 0.5 * period];
        let master = gate_sweep_master(&system, "gate", &values, "JD", 1.0).unwrap();
        let kmc = gate_sweep_kmc(
            &system,
            "gate",
            &values,
            "JD",
            SimulationOptions::new(1.0).with_seed(7),
            40_000,
        )
        .unwrap();
        for (m, k) in master.iter().zip(&kmc) {
            let scale = m.current.abs().max(1e-15);
            assert!(
                (m.current - k.current).abs() < 0.15 * scale,
                "master {} vs kmc {}",
                m.current,
                k.current
            );
        }
    }

    #[test]
    fn kmc_sweep_is_reproducible_for_a_fixed_seed() {
        let system = set_system();
        let period = E / 1e-18;
        let values = [0.4 * period, 0.5 * period, 0.6 * period];
        let options = SimulationOptions::new(1.0).with_seed(21);
        let a = gate_sweep_kmc(&system, "gate", &values, "JD", options, 5_000).unwrap();
        let b = gate_sweep_kmc(&system, "gate", &values, "JD", options, 5_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stability_map_shows_diamond_structure() {
        let system = set_system();
        let period = E / 1e-18;
        // The blockade threshold of this SET is e/CΣ = 80 mV at the gate
        // valley, so sweep the drain well beyond it.
        let gate_values = [0.0, 0.5 * period];
        let drain_values = linspace(-0.15, 0.15, 11).unwrap();
        let map = stability_map_master(
            &system,
            "gate",
            &gate_values,
            "drain",
            &drain_values,
            "JD",
            1.0,
        )
        .unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map[0].len(), 11);
        // At the gate valley (row 0) the small-bias current is blockaded; at
        // the degeneracy point (row 1) it is not.
        let mid = 5; // Vds = 0 neighbourhood
        assert!(map[0][mid].abs() < 1e-15);
        // At larger bias both conduct.
        assert!(map[0][0].abs() > 1e-12);
        assert!(map[1][0].abs() > 1e-12);
    }
}
