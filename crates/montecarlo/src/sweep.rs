//! Bias sweeps driven by either simulation engine.
//!
//! These helpers regenerate the classic SET characteristics: the periodic
//! Id–Vg Coulomb oscillations, the Id–Vds blockade/staircase curve and the
//! stability (Coulomb-diamond) map, using the exact master-equation solver
//! or the stochastic kinetic Monte-Carlo engine over the same physics.

use crate::error::MonteCarloError;
use crate::kmc::{MonteCarloSimulator, SimulationOptions};
use crate::master::MasterEquation;
use se_orthodox::TunnelSystem;

/// One point of a bias sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept control value (a gate or drain voltage, in volt).
    pub control: f64,
    /// The measured junction current in ampere.
    pub current: f64,
}

/// Generates `points` evenly spaced values covering `[start, stop]`.
///
/// # Errors
///
/// Returns [`MonteCarloError::InvalidArgument`] if `points < 2` or the range
/// is degenerate.
pub fn linspace(start: f64, stop: f64, points: usize) -> Result<Vec<f64>, MonteCarloError> {
    if points < 2 {
        return Err(MonteCarloError::InvalidArgument(
            "a sweep needs at least two points".into(),
        ));
    }
    if !(stop > start) {
        return Err(MonteCarloError::InvalidArgument(format!(
            "sweep range must satisfy start < stop, got [{start}, {stop}]"
        )));
    }
    Ok((0..points)
        .map(|i| start + (stop - start) * i as f64 / (points - 1) as f64)
        .collect())
}

/// Sweeps the named external electrode with the master-equation solver and
/// measures the current through the named junction.
///
/// # Errors
///
/// Returns [`MonteCarloError::InvalidArgument`] if the electrode or junction
/// does not exist, and propagates solver errors.
pub fn gate_sweep_master(
    system: &TunnelSystem,
    electrode: &str,
    values: &[f64],
    junction: &str,
    temperature: f64,
) -> Result<Vec<SweepPoint>, MonteCarloError> {
    let electrode_idx = system
        .external_index(electrode)
        .ok_or_else(|| MonteCarloError::InvalidArgument(format!("no electrode named `{electrode}`")))?;
    if !system.junctions().iter().any(|j| j.name == junction) {
        return Err(MonteCarloError::InvalidArgument(format!(
            "no junction named `{junction}`"
        )));
    }
    let mut solver = MasterEquation::new(system.clone(), temperature)?;
    let mut points = Vec::with_capacity(values.len());
    for &value in values {
        solver.system_mut().set_external_voltage(electrode_idx, value)?;
        let solution = solver.solve()?;
        let current = solution
            .junction_current(junction)
            .expect("junction existence checked above");
        points.push(SweepPoint {
            control: value,
            current,
        });
    }
    Ok(points)
}

/// Alias of [`gate_sweep_master`] for drain sweeps — the mechanics are
/// identical, only the swept electrode differs. Provided for readability of
/// the experiment harnesses.
///
/// # Errors
///
/// See [`gate_sweep_master`].
pub fn drain_sweep_master(
    system: &TunnelSystem,
    electrode: &str,
    values: &[f64],
    junction: &str,
    temperature: f64,
) -> Result<Vec<SweepPoint>, MonteCarloError> {
    gate_sweep_master(system, electrode, values, junction, temperature)
}

/// Sweeps the named electrode with the kinetic Monte-Carlo engine, running
/// `events_per_point` measurement events at every bias value.
///
/// # Errors
///
/// Returns [`MonteCarloError::InvalidArgument`] if the electrode or junction
/// does not exist or `events_per_point == 0`, and propagates engine errors.
pub fn gate_sweep_kmc(
    system: &TunnelSystem,
    electrode: &str,
    values: &[f64],
    junction: &str,
    options: SimulationOptions,
    events_per_point: usize,
) -> Result<Vec<SweepPoint>, MonteCarloError> {
    let electrode_idx = system
        .external_index(electrode)
        .ok_or_else(|| MonteCarloError::InvalidArgument(format!("no electrode named `{electrode}`")))?;
    if !system.junctions().iter().any(|j| j.name == junction) {
        return Err(MonteCarloError::InvalidArgument(format!(
            "no junction named `{junction}`"
        )));
    }
    if events_per_point == 0 {
        return Err(MonteCarloError::InvalidArgument(
            "events_per_point must be at least 1".into(),
        ));
    }
    let mut simulator = MonteCarloSimulator::new(system.clone(), options)?;
    let mut points = Vec::with_capacity(values.len());
    for &value in values {
        simulator
            .system_mut()
            .set_external_voltage(electrode_idx, value)?;
        simulator.reset_counters();
        let result = simulator.run_events(events_per_point)?;
        let current = result
            .junction_current(junction)
            .expect("junction existence checked above");
        points.push(SweepPoint {
            control: value,
            current,
        });
    }
    Ok(points)
}

/// Computes a stability (Coulomb-diamond) map: the junction current on a
/// `gate × drain` voltage grid, using the master-equation solver. The result
/// is row-major with gate as the outer loop.
///
/// # Errors
///
/// See [`gate_sweep_master`].
pub fn stability_map_master(
    system: &TunnelSystem,
    gate_electrode: &str,
    gate_values: &[f64],
    drain_electrode: &str,
    drain_values: &[f64],
    junction: &str,
    temperature: f64,
) -> Result<Vec<Vec<f64>>, MonteCarloError> {
    let gate_idx = system.external_index(gate_electrode).ok_or_else(|| {
        MonteCarloError::InvalidArgument(format!("no electrode named `{gate_electrode}`"))
    })?;
    let mut map = Vec::with_capacity(gate_values.len());
    let mut working = system.clone();
    for &vg in gate_values {
        working.set_external_voltage(gate_idx, vg)?;
        let row = drain_sweep_master(&working, drain_electrode, drain_values, junction, temperature)?;
        map.push(row.into_iter().map(|p| p.current).collect());
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_orthodox::TunnelSystemBuilder;
    use se_units::constants::E;

    fn set_system() -> TunnelSystem {
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", 1e-3);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", 0.0);
        b.junction("JD", drain, island, 0.5e-18, 100e3);
        b.junction("JS", island, source, 0.5e-18, 100e3);
        b.capacitor("CG", gate, island, 1e-18);
        b.build().unwrap()
    }

    #[test]
    fn linspace_validates_and_covers_range() {
        assert!(linspace(0.0, 1.0, 1).is_err());
        assert!(linspace(1.0, 0.0, 5).is_err());
        let xs = linspace(0.0, 1.0, 5).unwrap();
        assert_eq!(xs.len(), 5);
        assert_eq!(xs[0], 0.0);
        assert_eq!(xs[4], 1.0);
    }

    #[test]
    fn unknown_names_are_rejected() {
        let system = set_system();
        let values = [0.0, 0.1];
        assert!(gate_sweep_master(&system, "nope", &values, "JD", 1.0).is_err());
        assert!(gate_sweep_master(&system, "gate", &values, "nope", 1.0).is_err());
        assert!(gate_sweep_kmc(
            &system,
            "gate",
            &values,
            "JD",
            SimulationOptions::new(1.0).with_seed(1),
            0
        )
        .is_err());
    }

    #[test]
    fn master_gate_sweep_shows_coulomb_oscillations() {
        let system = set_system();
        let period = E / 1e-18;
        let values = linspace(0.0, 2.0 * period, 81).unwrap();
        let sweep = gate_sweep_master(&system, "gate", &values, "JD", 1.0).unwrap();
        // Two full periods: the current at 0.5 and 1.5 periods (peaks) is
        // large, at 0 and 1 periods (valleys) it is blockaded.
        let current_at = |frac: f64| {
            let target = frac * period;
            sweep
                .iter()
                .min_by(|a, b| {
                    (a.control - target)
                        .abs()
                        .partial_cmp(&(b.control - target).abs())
                        .unwrap()
                })
                .unwrap()
                .current
        };
        assert!(current_at(0.5) > 100.0 * current_at(0.0).abs().max(1e-18));
        assert!(current_at(1.5) > 100.0 * current_at(1.0).abs().max(1e-18));
        // Periodicity of the two peaks.
        let p1 = current_at(0.5);
        let p2 = current_at(1.5);
        assert!((p1 - p2).abs() < 0.05 * p1);
    }

    #[test]
    fn kmc_sweep_tracks_master_sweep() {
        let system = set_system();
        let period = E / 1e-18;
        let values = [0.25 * period, 0.5 * period];
        let master = gate_sweep_master(&system, "gate", &values, "JD", 1.0).unwrap();
        let kmc = gate_sweep_kmc(
            &system,
            "gate",
            &values,
            "JD",
            SimulationOptions::new(1.0).with_seed(7),
            40_000,
        )
        .unwrap();
        for (m, k) in master.iter().zip(&kmc) {
            let scale = m.current.abs().max(1e-15);
            assert!(
                (m.current - k.current).abs() < 0.15 * scale,
                "master {} vs kmc {}",
                m.current,
                k.current
            );
        }
    }

    #[test]
    fn stability_map_shows_diamond_structure() {
        let system = set_system();
        let period = E / 1e-18;
        // The blockade threshold of this SET is e/CΣ = 80 mV at the gate
        // valley, so sweep the drain well beyond it.
        let gate_values = [0.0, 0.5 * period];
        let drain_values = linspace(-0.15, 0.15, 11).unwrap();
        let map = stability_map_master(
            &system,
            "gate",
            &gate_values,
            "drain",
            &drain_values,
            "JD",
            1.0,
        )
        .unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map[0].len(), 11);
        // At the gate valley (row 0) the small-bias current is blockaded; at
        // the degeneracy point (row 1) it is not.
        let mid = 5; // Vds = 0 neighbourhood
        assert!(map[0][mid].abs() < 1e-15);
        // At larger bias both conduct.
        assert!(map[0][0].abs() > 1e-12);
        assert!(map[1][0].abs() > 1e-12);
    }
}
