//! Analysis directives: the `.`-card AST of a simulation deck.
//!
//! A SPICE-style deck is more than a circuit: it carries *analysis
//! commands* — "sweep this source", "integrate until 1 µs", "print that
//! junction current". This module is the typed form of those commands. The
//! parser ([`crate::parser`]) produces a [`Deck`] — the netlist plus every
//! directive it understood and a [`ParseDiagnostic`] for every card it did
//! not — and the `se-sim` compiler lowers the deck onto the engine layer.
//!
//! Supported directives:
//!
//! ```text
//! .dc SRC start stop step [SRC2 start2 stop2 step2]   1-D sweep / 2-D map
//! .tran tstep tstop                                   transient analysis
//! .options KEY=VALUE ...                              simulation options
//! .print [dc|tran] i(NAME) ...                        observables
//! .probe i(NAME) ...                                  alias of .print
//! .end                                                end of deck
//! ```
//!
//! In the two-source `.dc` form the *first* source is the fast (inner) axis
//! and the second the slow (outer) axis, following SPICE convention.
//! `.options` keys (all case-insensitive): `TEMP` (kelvin), `SEED`,
//! `ENGINE` (`auto`, `analytic`, `master`, `kmc`, `spice`, `hybrid`),
//! `WINDOW` and `MAXSTATES` (master-equation caps), `EVENTS` (kinetic
//! Monte-Carlo measurement events per stationary solve), `REPEATS` (seed
//! ensemble size per bias point / trace — kinetic Monte-Carlo only).

use crate::netlist::Netlist;
use se_engine::Waveform;
use std::fmt;

/// One analysis directive of a deck, in deck order.
#[derive(Debug, Clone, PartialEq)]
pub enum Analysis {
    /// A 1-D `.dc` sweep of one source.
    DcSweep {
        /// The swept source and its grid.
        sweep: SweepSpec,
    },
    /// A 2-D `.dc` sweep: a stability map over `outer × inner` grids.
    DcMap {
        /// The slow axis (the second source named on the card).
        outer: SweepSpec,
        /// The fast axis (the first source named on the card).
        inner: SweepSpec,
    },
    /// A `.tran tstep tstop` transient analysis.
    Transient {
        /// Sample interval, seconds.
        step: f64,
        /// Stop time, seconds.
        stop: f64,
    },
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Analysis::DcSweep { sweep } => write!(f, "dc {sweep}"),
            Analysis::DcMap { outer, inner } => write!(f, "dc {inner} x {outer}"),
            Analysis::Transient { step, stop } => write!(f, "tran {step:?} {stop:?}"),
        }
    }
}

/// The grid of one swept source: `points` values evenly spaced over
/// `[start, stop]` (descending when `stop < start`).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Name of the swept voltage source, as written in the deck.
    pub source: String,
    /// First grid value, volt.
    pub start: f64,
    /// Last grid value, volt.
    pub stop: f64,
    /// Number of grid points (at least 1).
    pub points: usize,
}

impl SweepSpec {
    /// The step between consecutive grid values (0 for a 1-point grid).
    #[must_use]
    pub fn step(&self) -> f64 {
        if self.points < 2 {
            0.0
        } else {
            (self.stop - self.start) / (self.points - 1) as f64
        }
    }
}

impl fmt::Display for SweepSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:?}..{:?} ({} points)",
            self.source, self.start, self.stop, self.points
        )
    }
}

/// Which engine the deck asks for (the `.options ENGINE=` key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnginePreference {
    /// Pick automatically from the partition (the default).
    #[default]
    Auto,
    /// The closed-form analytic SET model (single-SET decks only).
    Analytic,
    /// The deterministic master-equation solver.
    Master,
    /// The kinetic Monte-Carlo event sampler.
    Kmc,
    /// The SPICE Newton / backward-Euler engine.
    Spice,
    /// The SPICE ↔ single-electron co-simulator.
    Hybrid,
}

impl EnginePreference {
    /// Parses an `ENGINE=` value (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns the unrecognised text.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.to_ascii_lowercase().as_str() {
            "auto" => Ok(EnginePreference::Auto),
            "analytic" | "set" => Ok(EnginePreference::Analytic),
            "master" | "master-equation" => Ok(EnginePreference::Master),
            "kmc" | "montecarlo" | "monte-carlo" => Ok(EnginePreference::Kmc),
            "spice" => Ok(EnginePreference::Spice),
            "hybrid" | "cosim" => Ok(EnginePreference::Hybrid),
            other => Err(format!(
                "unknown engine `{other}` (use auto, analytic, master, kmc, spice or hybrid)"
            )),
        }
    }

    /// The canonical deck spelling of this preference.
    #[must_use]
    pub fn as_deck_str(&self) -> &'static str {
        match self {
            EnginePreference::Auto => "auto",
            EnginePreference::Analytic => "analytic",
            EnginePreference::Master => "master",
            EnginePreference::Kmc => "kmc",
            EnginePreference::Spice => "spice",
            EnginePreference::Hybrid => "hybrid",
        }
    }
}

/// Which stationary solver the master-equation path should use (the
/// `.options SOLVER=` key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverPreference {
    /// Preconditioned BiCGSTAB with an ILU(0) factorisation (the default
    /// when no `solver=` is given).
    #[default]
    KrylovIlu0,
    /// Preconditioned BiCGSTAB with Jacobi (diagonal) scaling only.
    KrylovJacobi,
    /// The anchored Gauss–Seidel sweep (the pre-Krylov reference path).
    GaussSeidel,
}

impl SolverPreference {
    /// Parses a `SOLVER=` value (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns the unrecognised text.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.to_ascii_lowercase().as_str() {
            "krylov" | "krylov-ilu0" | "bicgstab" => Ok(SolverPreference::KrylovIlu0),
            "krylov-jacobi" | "bicgstab-jacobi" => Ok(SolverPreference::KrylovJacobi),
            "gs" | "gauss-seidel" | "gaussseidel" => Ok(SolverPreference::GaussSeidel),
            other => Err(format!(
                "unknown solver `{other}` (use krylov, krylov-jacobi or gauss-seidel)"
            )),
        }
    }

    /// The canonical deck spelling of this preference.
    #[must_use]
    pub fn as_deck_str(&self) -> &'static str {
        match self {
            SolverPreference::KrylovIlu0 => "krylov",
            SolverPreference::KrylovJacobi => "krylov-jacobi",
            SolverPreference::GaussSeidel => "gauss-seidel",
        }
    }
}

/// Simulation options accumulated from every `.options` card of a deck.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisOptions {
    /// Temperature of the single-electron domain, kelvin (default 1 K).
    pub temperature: f64,
    /// Master seed of the deterministic seeding discipline (default 0).
    pub seed: u64,
    /// Requested engine (default [`EnginePreference::Auto`]).
    pub engine: EnginePreference,
    /// Master-equation per-island charge-window half-width override.
    pub master_window: Option<i64>,
    /// Master-equation state-enumeration cap override.
    pub master_max_states: Option<usize>,
    /// Master-equation stationary solver override (`None` means the
    /// built-in default, currently Krylov + ILU(0)).
    pub solver: Option<SolverPreference>,
    /// Kinetic Monte-Carlo measurement events per stationary solve.
    pub kmc_events: Option<usize>,
    /// Seed-ensemble size: every bias point (or the whole trace) is solved
    /// this many times with per-repeat derived seeds, and the result table
    /// reports mean and standard-error columns. Kinetic Monte-Carlo only.
    pub repeats: Option<usize>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            temperature: 1.0,
            seed: 0,
            engine: EnginePreference::Auto,
            master_window: None,
            master_max_states: None,
            solver: None,
            kmc_events: None,
            repeats: None,
        }
    }
}

/// A card the parser accepted but did not act on, with the reason — the
/// structured replacement for silently dropping unknown input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDiagnostic {
    /// 1-based line number of the card in the deck.
    pub line: usize,
    /// What the parser saw and why it was ignored.
    pub message: String,
}

impl fmt::Display for ParseDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// A parsed simulation deck: the circuit plus everything the `.`-cards
/// asked for.
///
/// Produced by [`crate::parser::parse_full_deck`]; consumed by the `se-sim`
/// compiler. All fields are public so decks can equally be built
/// programmatically and serialized with [`Deck::to_deck_string`] — the
/// round-trip (`build → serialize → parse → compile`) is pinned by the
/// integration tests.
#[derive(Debug, Clone, Default)]
pub struct Deck {
    /// The circuit.
    pub netlist: Netlist,
    /// Analyses, in deck order.
    pub analyses: Vec<Analysis>,
    /// Merged `.options` values.
    pub options: AnalysisOptions,
    /// Observable names requested by `.print` / `.probe` cards (the `NAME`
    /// of each `i(NAME)`), in deck order. Empty means "use the engine's
    /// default observables".
    pub probes: Vec<String>,
    /// Time-dependent sources: `(source name, waveform)` for every source
    /// card that carried a `PULSE(...)`, `SIN(...)` or `PWL(...)` spec.
    pub waveforms: Vec<(String, Waveform)>,
    /// Cards that were accepted but ignored, with reasons.
    pub diagnostics: Vec<ParseDiagnostic>,
}

impl Deck {
    /// Looks up the waveform attached to a source (case-insensitive).
    #[must_use]
    pub fn waveform_of(&self, source: &str) -> Option<&Waveform> {
        self.waveforms
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(source))
            .map(|(_, w)| w)
    }

    /// Serializes the deck back to `.cir` text the parser accepts.
    ///
    /// Numeric values are written with Rust's shortest round-trip `f64`
    /// formatting, so `parse(to_deck_string(deck))` reproduces every value
    /// bit-exactly. Diagnostics are not serialized (they describe input the
    /// parser ignored, not deck state).
    #[must_use]
    pub fn to_deck_string(&self) -> String {
        let mut out = String::new();
        let title = if self.netlist.title().is_empty() {
            "untitled deck"
        } else {
            self.netlist.title()
        };
        out.push_str(title);
        out.push('\n');
        for element in self.netlist.elements() {
            out.push_str(&element_card(
                &self.netlist,
                element,
                self.waveform_of(element.name()),
            ));
            out.push('\n');
        }
        let defaults = AnalysisOptions::default();
        if self.options != defaults {
            out.push_str(&options_card(&self.options, &defaults));
            out.push('\n');
        }
        for analysis in &self.analyses {
            out.push_str(&analysis_card(analysis));
            out.push('\n');
        }
        if !self.probes.is_empty() {
            out.push_str(".print");
            for probe in &self.probes {
                out.push_str(&format!(" i({probe})"));
            }
            out.push('\n');
        }
        out.push_str(".end\n");
        out
    }
}

/// Serializes one element as a deck card.
fn element_card(
    netlist: &Netlist,
    element: &crate::element::Element,
    waveform: Option<&Waveform>,
) -> String {
    use crate::element::ElementKind;
    let node = |n: crate::node::Node| -> String {
        if n.is_ground() {
            "0".to_string()
        } else {
            netlist.node_name(n).unwrap_or("?").to_string()
        }
    };
    let nodes: Vec<String> = element.nodes().iter().map(|&n| node(n)).collect();
    let name = element.name();
    match element.kind() {
        ElementKind::Resistor { resistance } => {
            format!("{name} {} {} {resistance:?}", nodes[0], nodes[1])
        }
        ElementKind::Capacitor { capacitance } => {
            format!("{name} {} {} {capacitance:?}", nodes[0], nodes[1])
        }
        ElementKind::TunnelJunction {
            capacitance,
            resistance,
        } => format!(
            "{name} {} {} C={capacitance:?} R={resistance:?}",
            nodes[0], nodes[1]
        ),
        ElementKind::VoltageSource { voltage } => match waveform {
            Some(w) => format!(
                "{name} {} {} DC {voltage:?} {}",
                nodes[0],
                nodes[1],
                waveform_spec(w)
            ),
            None => format!("{name} {} {} {voltage:?}", nodes[0], nodes[1]),
        },
        ElementKind::CurrentSource { current } => {
            format!("{name} {} {} {current:?}", nodes[0], nodes[1])
        }
        ElementKind::Diode {
            saturation_current,
            ideality,
        } => format!(
            "{name} {} {} IS={saturation_current:?} N={ideality:?}",
            nodes[0], nodes[1]
        ),
        ElementKind::Mosfet { params } => {
            let polarity = match params.polarity {
                crate::element::MosfetType::Nmos => "NMOS",
                crate::element::MosfetType::Pmos => "PMOS",
            };
            format!(
                "{name} {} {} {} {polarity} VTH={:?} KP={:?} LAMBDA={:?}",
                nodes[0], nodes[1], nodes[2], params.vth, params.kp, params.lambda
            )
        }
        ElementKind::SetTransistor { params } => format!(
            "{name} {} {} {} SET CG={:?} CS={:?} CD={:?} RS={:?} RD={:?} Q0={:?}",
            nodes[0],
            nodes[1],
            nodes[2],
            params.c_gate,
            params.c_source,
            params.c_drain,
            params.r_source,
            params.r_drain,
            params.background_charge
        ),
    }
}

/// Serializes a waveform as the functional source spec the parser accepts.
fn waveform_spec(waveform: &Waveform) -> String {
    match waveform {
        Waveform::Dc { level } => format!("{level:?}"),
        Waveform::Pulse {
            low,
            high,
            delay,
            width,
            period,
        } => format!("PULSE({low:?} {high:?} {delay:?} {width:?} {period:?})"),
        Waveform::Sine {
            offset,
            amplitude,
            frequency,
            phase,
        } => format!("SIN({offset:?} {amplitude:?} {frequency:?} {phase:?})"),
        Waveform::Pwl { points } => {
            let pairs: Vec<String> = points.iter().map(|(t, v)| format!("{t:?} {v:?}")).collect();
            format!("PWL({})", pairs.join(" "))
        }
        Waveform::Step { before, after, at } => {
            // A step is PWL-representable exactly only in the limit; emit
            // the same ideal step the parser reconstructs from two PWL
            // points one ulp apart is lossy, so use the dedicated spelling.
            format!("STEP({before:?} {after:?} {at:?})")
        }
        Waveform::Ramp {
            start,
            stop,
            t_start,
            t_stop,
        } => format!("PWL({t_start:?} {start:?} {t_stop:?} {stop:?})"),
    }
}

/// Serializes the non-default options as one `.options` card.
fn options_card(options: &AnalysisOptions, defaults: &AnalysisOptions) -> String {
    let mut card = String::from(".options");
    if options.temperature != defaults.temperature {
        card.push_str(&format!(" temp={:?}", options.temperature));
    }
    if options.seed != defaults.seed {
        card.push_str(&format!(" seed={}", options.seed));
    }
    if options.engine != defaults.engine {
        card.push_str(&format!(" engine={}", options.engine.as_deck_str()));
    }
    if let Some(window) = options.master_window {
        card.push_str(&format!(" window={window}"));
    }
    if let Some(max_states) = options.master_max_states {
        card.push_str(&format!(" maxstates={max_states}"));
    }
    if let Some(solver) = options.solver {
        card.push_str(&format!(" solver={}", solver.as_deck_str()));
    }
    if let Some(events) = options.kmc_events {
        card.push_str(&format!(" events={events}"));
    }
    if let Some(repeats) = options.repeats {
        card.push_str(&format!(" repeats={repeats}"));
    }
    card
}

/// Serializes one analysis as a deck card.
fn analysis_card(analysis: &Analysis) -> String {
    let sweep = |s: &SweepSpec| {
        // `.dc` carries start/stop/step; emit the exact step of the spec so
        // re-parsing recovers the same point count (see Deck::to_deck_string
        // round-trip guarantee).
        format!("{} {:?} {:?} {:?}", s.source, s.start, s.stop, s.step())
    };
    match analysis {
        Analysis::DcSweep { sweep: s } => format!(".dc {}", sweep(s)),
        Analysis::DcMap { outer, inner } => {
            format!(".dc {} {}", sweep(inner), sweep(outer))
        }
        Analysis::Transient { step, stop } => format!(".tran {step:?} {stop:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_spec_reports_its_step() {
        let sweep = SweepSpec {
            source: "VD".into(),
            start: 0.0,
            stop: 0.1,
            points: 11,
        };
        assert!((sweep.step() - 0.01).abs() < 1e-15);
        let single = SweepSpec {
            source: "VD".into(),
            start: 0.5,
            stop: 0.5,
            points: 1,
        };
        assert_eq!(single.step(), 0.0);
    }

    #[test]
    fn engine_preference_parses_aliases() {
        assert_eq!(
            EnginePreference::parse("KMC").unwrap(),
            EnginePreference::Kmc
        );
        assert_eq!(
            EnginePreference::parse("Master-Equation").unwrap(),
            EnginePreference::Master
        );
        assert!(EnginePreference::parse("verilog").is_err());
        for pref in [
            EnginePreference::Auto,
            EnginePreference::Analytic,
            EnginePreference::Master,
            EnginePreference::Kmc,
            EnginePreference::Spice,
            EnginePreference::Hybrid,
        ] {
            assert_eq!(EnginePreference::parse(pref.as_deck_str()).unwrap(), pref);
        }
    }

    #[test]
    fn default_options_match_the_documented_defaults() {
        let options = AnalysisOptions::default();
        assert_eq!(options.temperature, 1.0);
        assert_eq!(options.seed, 0);
        assert_eq!(options.engine, EnginePreference::Auto);
        assert!(options.master_window.is_none());
    }

    #[test]
    fn diagnostics_display_their_line() {
        let diag = ParseDiagnostic {
            line: 7,
            message: "unknown directive `.ac`".into(),
        };
        assert_eq!(diag.to_string(), "line 7: unknown directive `.ac`");
    }
}
