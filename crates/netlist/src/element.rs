//! The circuit-element zoo.
//!
//! Every device the toolkit simulates is represented by an [`Element`]: a
//! name, a set of terminal nodes and an [`ElementKind`] carrying the physical
//! parameters (all in SI units). Constructors validate the physically
//! required sign constraints so a malformed device is rejected at build time
//! rather than producing silently wrong physics.

use crate::error::NetlistError;
use crate::node::Node;

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosfetType {
    /// n-channel device.
    Nmos,
    /// p-channel device.
    Pmos,
}

/// Level-1 (Shichman–Hodges) MOSFET parameters.
///
/// These defaults are representative of the 0.18 µm-class CMOS used by the
/// hybrid SET/CMOS circuits cited in the paper (Inokawa et al., Uchida et
/// al.); they are not a calibrated foundry model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetParams {
    /// Device polarity.
    pub polarity: MosfetType,
    /// Threshold voltage in volt (positive for NMOS, negative for PMOS).
    pub vth: f64,
    /// Transconductance factor `k' · W/L` in A/V².
    pub kp: f64,
    /// Channel-length modulation parameter λ in 1/V.
    pub lambda: f64,
}

impl MosfetParams {
    /// Representative 0.18 µm-class NMOS parameters.
    #[must_use]
    pub fn nmos_180nm() -> Self {
        MosfetParams {
            polarity: MosfetType::Nmos,
            vth: 0.45,
            kp: 300e-6,
            lambda: 0.06,
        }
    }

    /// Representative 0.18 µm-class PMOS parameters.
    #[must_use]
    pub fn pmos_180nm() -> Self {
        MosfetParams {
            polarity: MosfetType::Pmos,
            vth: -0.45,
            kp: 120e-6,
            lambda: 0.08,
        }
    }
}

impl Default for MosfetParams {
    fn default() -> Self {
        MosfetParams::nmos_180nm()
    }
}

/// Parameters of a metallic single-electron transistor used by the analytic
/// compact model (two tunnel junctions plus a gate capacitor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetParams {
    /// Gate capacitance in farad. Sets the Id–Vg oscillation period `e/Cg`.
    pub c_gate: f64,
    /// Source-junction capacitance in farad.
    pub c_source: f64,
    /// Drain-junction capacitance in farad.
    pub c_drain: f64,
    /// Source-junction tunnel resistance in ohm.
    pub r_source: f64,
    /// Drain-junction tunnel resistance in ohm.
    pub r_drain: f64,
    /// Static background (offset) charge on the island in units of `e`.
    pub background_charge: f64,
}

impl SetParams {
    /// A symmetric SET with the capacitances and resistances typical of the
    /// devices discussed in the paper (aF-scale junctions, 100 kΩ-scale
    /// tunnel resistances).
    #[must_use]
    pub fn symmetric(c_gate: f64, c_junction: f64, r_junction: f64) -> Self {
        SetParams {
            c_gate,
            c_source: c_junction,
            c_drain: c_junction,
            r_source: r_junction,
            r_drain: r_junction,
            background_charge: 0.0,
        }
    }

    /// Total island capacitance `CΣ = Cg + Cs + Cd`.
    #[must_use]
    pub fn total_capacitance(&self) -> f64 {
        self.c_gate + self.c_source + self.c_drain
    }

    /// Gate-voltage period of the Coulomb oscillations, `e / Cg`.
    #[must_use]
    pub fn gate_period(&self) -> f64 {
        se_units::constants::E / self.c_gate
    }

    /// Returns a copy with the given background charge (in units of `e`).
    #[must_use]
    pub fn with_background_charge(mut self, q0: f64) -> Self {
        self.background_charge = q0;
        self
    }
}

impl Default for SetParams {
    fn default() -> Self {
        SetParams::symmetric(1e-18, 0.5e-18, 100e3)
    }
}

/// The kind of a circuit element together with its physical parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementKind {
    /// Linear resistor (ohm).
    Resistor {
        /// Resistance in ohm.
        resistance: f64,
    },
    /// Linear capacitor (farad).
    Capacitor {
        /// Capacitance in farad.
        capacitance: f64,
    },
    /// Tunnel junction: a capacitor in parallel with a stochastic tunnel
    /// resistance, the elementary device of single-electronics.
    TunnelJunction {
        /// Junction capacitance in farad.
        capacitance: f64,
        /// Tunnel resistance in ohm.
        resistance: f64,
    },
    /// Ideal DC voltage source (volt).
    VoltageSource {
        /// Source voltage in volt.
        voltage: f64,
    },
    /// Ideal DC current source (ampere).
    CurrentSource {
        /// Source current in ampere.
        current: f64,
    },
    /// Junction diode with the Shockley equation.
    Diode {
        /// Saturation current in ampere.
        saturation_current: f64,
        /// Ideality factor (dimensionless).
        ideality: f64,
    },
    /// Level-1 MOSFET.
    Mosfet {
        /// Device parameters.
        params: MosfetParams,
    },
    /// Analytic compact model of a complete SET (drain, gate, source).
    SetTransistor {
        /// Device parameters.
        params: SetParams,
    },
}

impl ElementKind {
    /// Short SPICE-style prefix letter for this element kind.
    #[must_use]
    pub fn prefix(&self) -> char {
        match self {
            ElementKind::Resistor { .. } => 'R',
            ElementKind::Capacitor { .. } => 'C',
            ElementKind::TunnelJunction { .. } => 'J',
            ElementKind::VoltageSource { .. } => 'V',
            ElementKind::CurrentSource { .. } => 'I',
            ElementKind::Diode { .. } => 'D',
            ElementKind::Mosfet { .. } => 'M',
            ElementKind::SetTransistor { .. } => 'X',
        }
    }
}

/// A named circuit element with its terminal nodes.
///
/// Two-terminal devices use `nodes[0]` (positive / anode / drain-side) and
/// `nodes[1]` (negative / cathode / source-side). MOSFETs use
/// `[drain, gate, source]`; SET compact models use `[drain, gate, source]`
/// as well.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    name: String,
    nodes: Vec<Node>,
    kind: ElementKind,
}

impl Element {
    /// Creates an element from parts, validating parameter signs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] when a physically required
    /// constraint is violated (non-positive resistance or capacitance,
    /// non-positive saturation current, wrong terminal count, …).
    pub fn new(
        name: impl Into<String>,
        nodes: Vec<Node>,
        kind: ElementKind,
    ) -> Result<Self, NetlistError> {
        let name = name.into();
        let invalid = |message: &str| NetlistError::InvalidParameter {
            element: name.clone(),
            message: message.to_string(),
        };
        let expect_terminals = |n: usize| {
            if nodes.len() != n {
                Err(invalid(&format!(
                    "expected {n} terminals, got {}",
                    nodes.len()
                )))
            } else {
                Ok(())
            }
        };
        match &kind {
            ElementKind::Resistor { resistance } => {
                expect_terminals(2)?;
                if *resistance <= 0.0 || !resistance.is_finite() {
                    return Err(invalid("resistance must be positive and finite"));
                }
            }
            ElementKind::Capacitor { capacitance } => {
                expect_terminals(2)?;
                if *capacitance <= 0.0 || !capacitance.is_finite() {
                    return Err(invalid("capacitance must be positive and finite"));
                }
            }
            ElementKind::TunnelJunction {
                capacitance,
                resistance,
            } => {
                expect_terminals(2)?;
                if *capacitance <= 0.0 || !capacitance.is_finite() {
                    return Err(invalid("junction capacitance must be positive and finite"));
                }
                if *resistance <= 0.0 || !resistance.is_finite() {
                    return Err(invalid("tunnel resistance must be positive and finite"));
                }
            }
            ElementKind::VoltageSource { voltage } => {
                expect_terminals(2)?;
                if !voltage.is_finite() {
                    return Err(invalid("source voltage must be finite"));
                }
            }
            ElementKind::CurrentSource { current } => {
                expect_terminals(2)?;
                if !current.is_finite() {
                    return Err(invalid("source current must be finite"));
                }
            }
            ElementKind::Diode {
                saturation_current,
                ideality,
            } => {
                expect_terminals(2)?;
                if *saturation_current <= 0.0 || !saturation_current.is_finite() {
                    return Err(invalid("saturation current must be positive and finite"));
                }
                if *ideality < 1.0 || *ideality > 5.0 {
                    return Err(invalid("ideality factor must lie in [1, 5]"));
                }
            }
            ElementKind::Mosfet { params } => {
                expect_terminals(3)?;
                if params.kp <= 0.0 || !params.kp.is_finite() {
                    return Err(invalid("transconductance factor must be positive"));
                }
                if params.lambda < 0.0 {
                    return Err(invalid("channel-length modulation must be non-negative"));
                }
            }
            ElementKind::SetTransistor { params } => {
                expect_terminals(3)?;
                if params.c_gate <= 0.0 || params.c_source <= 0.0 || params.c_drain <= 0.0 {
                    return Err(invalid("all SET capacitances must be positive"));
                }
                if params.r_source <= 0.0 || params.r_drain <= 0.0 {
                    return Err(invalid("all SET tunnel resistances must be positive"));
                }
            }
        }
        if name.trim().is_empty() {
            return Err(NetlistError::InvalidParameter {
                element: "<unnamed>".into(),
                message: "element name must not be empty".into(),
            });
        }
        Ok(Element { name, nodes, kind })
    }

    /// Convenience constructor for a resistor.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] if `resistance <= 0`.
    pub fn resistor(
        name: impl Into<String>,
        a: Node,
        b: Node,
        resistance: f64,
    ) -> Result<Self, NetlistError> {
        Element::new(name, vec![a, b], ElementKind::Resistor { resistance })
    }

    /// Convenience constructor for a capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] if `capacitance <= 0`.
    pub fn capacitor(
        name: impl Into<String>,
        a: Node,
        b: Node,
        capacitance: f64,
    ) -> Result<Self, NetlistError> {
        Element::new(name, vec![a, b], ElementKind::Capacitor { capacitance })
    }

    /// Convenience constructor for a tunnel junction.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] if the capacitance or
    /// resistance is not strictly positive.
    pub fn tunnel_junction(
        name: impl Into<String>,
        a: Node,
        b: Node,
        capacitance: f64,
        resistance: f64,
    ) -> Result<Self, NetlistError> {
        Element::new(
            name,
            vec![a, b],
            ElementKind::TunnelJunction {
                capacitance,
                resistance,
            },
        )
    }

    /// Convenience constructor for a DC voltage source (positive terminal
    /// first).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] if the voltage is not
    /// finite.
    pub fn voltage_source(
        name: impl Into<String>,
        plus: Node,
        minus: Node,
        voltage: f64,
    ) -> Result<Self, NetlistError> {
        Element::new(
            name,
            vec![plus, minus],
            ElementKind::VoltageSource { voltage },
        )
    }

    /// Convenience constructor for a DC current source (current flows from
    /// the first node, through the source, into the second node).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] if the current is not
    /// finite.
    pub fn current_source(
        name: impl Into<String>,
        from: Node,
        to: Node,
        current: f64,
    ) -> Result<Self, NetlistError> {
        Element::new(name, vec![from, to], ElementKind::CurrentSource { current })
    }

    /// Convenience constructor for a diode (anode first).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] for a non-positive
    /// saturation current or an ideality factor outside `[1, 5]`.
    pub fn diode(
        name: impl Into<String>,
        anode: Node,
        cathode: Node,
        saturation_current: f64,
        ideality: f64,
    ) -> Result<Self, NetlistError> {
        Element::new(
            name,
            vec![anode, cathode],
            ElementKind::Diode {
                saturation_current,
                ideality,
            },
        )
    }

    /// Convenience constructor for a level-1 MOSFET with terminals
    /// `[drain, gate, source]`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] for a non-positive
    /// transconductance factor or negative channel-length modulation.
    pub fn mosfet(
        name: impl Into<String>,
        drain: Node,
        gate: Node,
        source: Node,
        params: MosfetParams,
    ) -> Result<Self, NetlistError> {
        Element::new(
            name,
            vec![drain, gate, source],
            ElementKind::Mosfet { params },
        )
    }

    /// Convenience constructor for an analytic SET compact model with
    /// terminals `[drain, gate, source]`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] if any capacitance or
    /// tunnel resistance is not strictly positive.
    pub fn set_transistor(
        name: impl Into<String>,
        drain: Node,
        gate: Node,
        source: Node,
        params: SetParams,
    ) -> Result<Self, NetlistError> {
        Element::new(
            name,
            vec![drain, gate, source],
            ElementKind::SetTransistor { params },
        )
    }

    /// Element name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Terminal nodes in declaration order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Element kind and parameters.
    #[must_use]
    pub fn kind(&self) -> &ElementKind {
        &self.kind
    }

    /// Returns `true` if this element only stores charge (capacitor or
    /// tunnel junction), i.e. contributes to the island electrostatics.
    #[must_use]
    pub fn is_capacitive(&self) -> bool {
        matches!(
            self.kind,
            ElementKind::Capacitor { .. } | ElementKind::TunnelJunction { .. }
        )
    }

    /// Returns `true` if this element is a tunnel junction.
    #[must_use]
    pub fn is_tunnel_junction(&self) -> bool {
        matches!(self.kind, ElementKind::TunnelJunction { .. })
    }

    /// Returns `true` if this element fixes a node voltage (voltage source).
    #[must_use]
    pub fn is_voltage_source(&self) -> bool {
        matches!(self.kind, ElementKind::VoltageSource { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_accept_valid_devices() {
        let a = Node::from_index(1);
        let b = Node::GROUND;
        assert!(Element::resistor("R1", a, b, 1e3).is_ok());
        assert!(Element::capacitor("C1", a, b, 1e-15).is_ok());
        assert!(Element::tunnel_junction("J1", a, b, 1e-18, 1e5).is_ok());
        assert!(Element::voltage_source("V1", a, b, 1.0).is_ok());
        assert!(Element::current_source("I1", a, b, 1e-9).is_ok());
        assert!(Element::diode("D1", a, b, 1e-14, 1.0).is_ok());
        assert!(Element::mosfet("M1", a, b, Node::GROUND, MosfetParams::default()).is_ok());
        assert!(Element::set_transistor("X1", a, b, Node::GROUND, SetParams::default()).is_ok());
    }

    #[test]
    fn constructors_reject_nonphysical_parameters() {
        let a = Node::from_index(1);
        let b = Node::GROUND;
        assert!(Element::resistor("R1", a, b, 0.0).is_err());
        assert!(Element::resistor("R1", a, b, -5.0).is_err());
        assert!(Element::capacitor("C1", a, b, 0.0).is_err());
        assert!(Element::tunnel_junction("J1", a, b, 1e-18, 0.0).is_err());
        assert!(Element::tunnel_junction("J1", a, b, -1e-18, 1e5).is_err());
        assert!(Element::voltage_source("V1", a, b, f64::NAN).is_err());
        assert!(Element::diode("D1", a, b, -1e-14, 1.0).is_err());
        assert!(Element::diode("D1", a, b, 1e-14, 0.5).is_err());
    }

    #[test]
    fn empty_name_is_rejected() {
        let a = Node::from_index(1);
        assert!(Element::resistor("  ", a, Node::GROUND, 1.0).is_err());
    }

    #[test]
    fn wrong_terminal_count_is_rejected() {
        let err = Element::new(
            "M1",
            vec![Node::from_index(1), Node::GROUND],
            ElementKind::Mosfet {
                params: MosfetParams::default(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, NetlistError::InvalidParameter { .. }));
    }

    #[test]
    fn set_params_periods_and_totals() {
        let p = SetParams::symmetric(2e-18, 0.5e-18, 1e5);
        assert!((p.total_capacitance() - 3e-18).abs() < 1e-30);
        let period = p.gate_period();
        assert!((period - se_units::constants::E / 2e-18).abs() < 1e-6 * period);
        let shifted = p.with_background_charge(0.3);
        assert_eq!(shifted.background_charge, 0.3);
    }

    #[test]
    fn classification_helpers() {
        let a = Node::from_index(1);
        let j = Element::tunnel_junction("J1", a, Node::GROUND, 1e-18, 1e5).unwrap();
        assert!(j.is_capacitive());
        assert!(j.is_tunnel_junction());
        assert!(!j.is_voltage_source());
        let v = Element::voltage_source("V1", a, Node::GROUND, 1.0).unwrap();
        assert!(v.is_voltage_source());
        assert!(!v.is_capacitive());
    }

    #[test]
    fn prefixes_are_spice_like() {
        assert_eq!(ElementKind::Resistor { resistance: 1.0 }.prefix(), 'R');
        assert_eq!(
            ElementKind::TunnelJunction {
                capacitance: 1e-18,
                resistance: 1e5
            }
            .prefix(),
            'J'
        );
    }

    #[test]
    fn default_mosfet_parameters_are_sane() {
        let n = MosfetParams::nmos_180nm();
        assert!(n.vth > 0.0);
        let p = MosfetParams::pmos_180nm();
        assert!(p.vth < 0.0);
    }
}
