//! Error type for netlist construction, parsing and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing or validating a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// Two elements were given the same name.
    DuplicateElement {
        /// The offending element name.
        name: String,
    },
    /// An element parameter was physically invalid (e.g. negative
    /// capacitance, zero tunnel resistance).
    InvalidParameter {
        /// The element whose parameter is invalid.
        element: String,
        /// Explanation of the problem.
        message: String,
    },
    /// A deck line could not be parsed.
    Parse {
        /// 1-based line number in the deck.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// Structural validation failed (dangling node, floating subcircuit, …).
    Validation {
        /// Explanation of the problem.
        message: String,
    },
    /// The netlist is empty where at least one element was required.
    Empty,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateElement { name } => {
                write!(f, "duplicate element name `{name}`")
            }
            NetlistError::InvalidParameter { element, message } => {
                write!(f, "invalid parameter on `{element}`: {message}")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            NetlistError::Validation { message } => write!(f, "validation error: {message}"),
            NetlistError::Empty => write!(f, "netlist contains no elements"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_cite_the_offender() {
        let err = NetlistError::DuplicateElement { name: "J1".into() };
        assert!(err.to_string().contains("J1"));

        let err = NetlistError::Parse {
            line: 12,
            message: "unknown device".into(),
        };
        assert!(err.to_string().contains("line 12"));

        let err = NetlistError::InvalidParameter {
            element: "C3".into(),
            message: "capacitance must be positive".into(),
        };
        assert!(err.to_string().contains("C3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
