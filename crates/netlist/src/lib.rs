//! Circuit netlist representation shared by every simulator in the
//! single-electronics toolkit.
//!
//! A [`Netlist`] is a flat list of circuit elements connected between named
//! nodes. It is deliberately simulator-agnostic: the Monte-Carlo engine
//! (`se-montecarlo`) consumes the tunnel junctions, capacitors and sources;
//! the SPICE engine (`se-spice`) consumes resistors, capacitors, sources,
//! diodes, MOSFETs and compact SET models; and the co-simulator
//! (`se-hybrid`) partitions one netlist between the two.
//!
//! The crate provides:
//!
//! * [`node`] — interned node identifiers with a distinguished ground node;
//! * [`element`] — the device zoo ([`Element`]) with physical parameters;
//! * [`netlist`] — the [`Netlist`] container and its builder API;
//! * [`parser`] — a SPICE-flavoured text-deck parser (`.cir` style);
//! * [`directive`] — the typed analysis AST (`.dc`, `.tran`, `.options`,
//!   `.print`) the parser attaches to a [`Deck`];
//! * [`validate`] — structural checks (dangling nodes, floating islands,
//!   non-positive element values);
//! * [`partition`] — connected-component analysis that finds
//!   single-electron islands (nodes reachable only through tunnel junctions
//!   and capacitors) for the Monte-Carlo and hybrid engines.
//!
//! # Example
//!
//! ```
//! use se_netlist::prelude::*;
//!
//! # fn main() -> Result<(), se_netlist::NetlistError> {
//! let mut netlist = Netlist::new("single SET");
//! let drain = netlist.node("drain");
//! let island = netlist.node("island");
//! let gate = netlist.node("gate");
//!
//! netlist.add(Element::voltage_source("VD", drain, Node::GROUND, 1e-3))?;
//! netlist.add(Element::voltage_source("VG", gate, Node::GROUND, 0.0))?;
//! netlist.add(Element::tunnel_junction("J1", drain, island, 1e-18, 100e3))?;
//! netlist.add(Element::tunnel_junction("J2", island, Node::GROUND, 1e-18, 100e3))?;
//! netlist.add(Element::capacitor("CG", gate, island, 0.5e-18))?;
//!
//! netlist.validate()?;
//! let islands = netlist.find_islands();
//! assert_eq!(islands.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(a > b)` is the idiom this workspace uses to reject NaN alongside
// ordinary range violations.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod directive;
pub mod element;
pub mod error;
pub mod netlist;
pub mod node;
pub mod parser;
pub mod partition;
pub mod validate;

pub use directive::{
    Analysis, AnalysisOptions, Deck, EnginePreference, ParseDiagnostic, SolverPreference, SweepSpec,
};
pub use element::{Element, ElementKind, MosfetParams, MosfetType, SetParams};
pub use error::NetlistError;
pub use netlist::{IntoElement, Netlist};
pub use node::{Node, NodeMap};
pub use parser::{parse_deck, parse_full_deck};
pub use partition::{partition_report, PartitionReport};

/// Convenient glob-import of the most commonly used netlist types.
pub mod prelude {
    pub use crate::directive::{
        Analysis, AnalysisOptions, Deck, EnginePreference, SolverPreference, SweepSpec,
    };
    pub use crate::element::{Element, ElementKind, MosfetParams, MosfetType, SetParams};
    pub use crate::error::NetlistError;
    pub use crate::netlist::Netlist;
    pub use crate::node::Node;
    pub use crate::parser::{parse_deck, parse_full_deck};
}
