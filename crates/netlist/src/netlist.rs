//! The [`Netlist`] container.

use crate::element::{Element, ElementKind};
use crate::error::NetlistError;
use crate::node::{Node, NodeMap};
use crate::partition::{self, Island};
use std::collections::HashSet;

/// Conversion accepted by [`Netlist::add`]: either a ready-made [`Element`]
/// or the `Result` returned by the element convenience constructors.
pub trait IntoElement {
    /// Converts `self` into an element, propagating construction errors.
    ///
    /// # Errors
    ///
    /// Returns the wrapped construction error when `self` is an `Err`.
    fn into_element(self) -> Result<Element, NetlistError>;
}

impl IntoElement for Element {
    fn into_element(self) -> Result<Element, NetlistError> {
        Ok(self)
    }
}

impl IntoElement for Result<Element, NetlistError> {
    fn into_element(self) -> Result<Element, NetlistError> {
        self
    }
}

/// A flat circuit netlist: a set of named nodes and the elements connecting
/// them.
///
/// Construction is incremental: call [`Netlist::node`] to intern node names
/// and [`Netlist::add`] to append elements. Structural checks are performed
/// by [`Netlist::validate`], and Monte-Carlo island extraction by
/// [`Netlist::find_islands`].
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    title: String,
    nodes: NodeMap,
    elements: Vec<Element>,
}

impl Netlist {
    /// Creates an empty netlist with the given title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Netlist {
            title: title.into(),
            nodes: NodeMap::new(),
            elements: Vec::new(),
        }
    }

    /// Netlist title (free-form, taken from the first deck line when parsed).
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Interns a node name, returning its handle.
    pub fn node(&mut self, name: &str) -> Node {
        self.nodes.intern(name)
    }

    /// Looks up an existing node by name.
    #[must_use]
    pub fn find_node(&self, name: &str) -> Option<Node> {
        self.nodes.get(name)
    }

    /// Returns the user-facing name of a node.
    #[must_use]
    pub fn node_name(&self, node: Node) -> Option<&str> {
        self.nodes.name(node)
    }

    /// Total number of nodes including ground.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node map (for simulators that need to build their own vectors).
    #[must_use]
    pub fn nodes(&self) -> &NodeMap {
        &self.nodes
    }

    /// Appends an element.
    ///
    /// Accepts either an [`Element`] or the `Result` returned by the
    /// element convenience constructors, so circuits can be built without a
    /// separate `?` per constructor call.
    ///
    /// # Errors
    ///
    /// Returns the element construction error if one was passed through, or
    /// [`NetlistError::DuplicateElement`] if an element with the same
    /// (case-insensitive) name already exists.
    pub fn add(&mut self, element: impl IntoElement) -> Result<&mut Self, NetlistError> {
        let element = element.into_element()?;
        if self
            .elements
            .iter()
            .any(|e| e.name().eq_ignore_ascii_case(element.name()))
        {
            return Err(NetlistError::DuplicateElement {
                name: element.name().to_string(),
            });
        }
        self.elements.push(element);
        Ok(self)
    }

    /// All elements in insertion order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if the netlist has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Finds an element by (case-insensitive) name.
    #[must_use]
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.elements
            .iter()
            .find(|e| e.name().eq_ignore_ascii_case(name))
    }

    /// Returns the elements of a given kind predicate, e.g. all tunnel
    /// junctions.
    pub fn elements_where<'a, P>(&'a self, predicate: P) -> impl Iterator<Item = &'a Element>
    where
        P: Fn(&ElementKind) -> bool + 'a,
    {
        self.elements.iter().filter(move |e| predicate(e.kind()))
    }

    /// All tunnel junctions.
    pub fn tunnel_junctions(&self) -> impl Iterator<Item = &Element> {
        self.elements.iter().filter(|e| e.is_tunnel_junction())
    }

    /// All voltage sources.
    pub fn voltage_sources(&self) -> impl Iterator<Item = &Element> {
        self.elements.iter().filter(|e| e.is_voltage_source())
    }

    /// Set of nodes that are fixed by a voltage source (directly connected to
    /// one of its terminals, including ground).
    #[must_use]
    pub fn source_driven_nodes(&self) -> HashSet<Node> {
        let mut driven = HashSet::new();
        driven.insert(Node::GROUND);
        for vs in self.voltage_sources() {
            for &n in vs.nodes() {
                driven.insert(n);
            }
        }
        driven
    }

    /// Replaces the DC value of the named voltage source.
    ///
    /// This is how sweeps and the co-simulator update boundary conditions
    /// without rebuilding the whole netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Validation`] if there is no voltage source
    /// with that name.
    pub fn set_source_voltage(&mut self, name: &str, voltage: f64) -> Result<(), NetlistError> {
        for element in &mut self.elements {
            if element.name().eq_ignore_ascii_case(name) {
                if let ElementKind::VoltageSource { .. } = element.kind() {
                    let nodes = element.nodes().to_vec();
                    *element = Element::voltage_source(
                        element.name().to_string(),
                        nodes[0],
                        nodes[1],
                        voltage,
                    )?;
                    return Ok(());
                }
            }
        }
        Err(NetlistError::Validation {
            message: format!("no voltage source named `{name}`"),
        })
    }

    /// Runs the structural validation checks (see [`crate::validate`]).
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        crate::validate::validate(self)
    }

    /// Finds the single-electron islands: maximal groups of non-source nodes
    /// connected purely through capacitive elements, at least one of which is
    /// a tunnel junction (see [`crate::partition`]).
    #[must_use]
    pub fn find_islands(&self) -> Vec<Island> {
        partition::find_islands(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    fn single_set() -> Netlist {
        let mut n = Netlist::new("set");
        let d = n.node("d");
        let i = n.node("i");
        let g = n.node("g");
        n.add(Element::voltage_source("VD", d, Node::GROUND, 1e-3))
            .unwrap();
        n.add(Element::voltage_source("VG", g, Node::GROUND, 0.0))
            .unwrap();
        n.add(Element::tunnel_junction("J1", d, i, 1e-18, 1e5))
            .unwrap();
        n.add(Element::tunnel_junction("J2", i, Node::GROUND, 1e-18, 1e5))
            .unwrap();
        n.add(Element::capacitor("CG", g, i, 0.5e-18)).unwrap();
        n
    }

    #[test]
    fn add_and_lookup_elements() {
        let n = single_set();
        assert_eq!(n.len(), 5);
        assert!(n.element("j1").is_some());
        assert!(n.element("nope").is_none());
        assert_eq!(n.tunnel_junctions().count(), 2);
        assert_eq!(n.voltage_sources().count(), 2);
    }

    #[test]
    fn duplicate_names_rejected_case_insensitively() {
        let mut n = single_set();
        let d = n.node("d");
        let err = n
            .add(Element::resistor("j1", d, Node::GROUND, 1e3))
            .unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateElement { .. }));
    }

    #[test]
    fn source_driven_nodes_include_ground_and_source_terminals() {
        let n = single_set();
        let driven = n.source_driven_nodes();
        assert!(driven.contains(&Node::GROUND));
        assert!(driven.contains(&n.find_node("d").unwrap()));
        assert!(driven.contains(&n.find_node("g").unwrap()));
        assert!(!driven.contains(&n.find_node("i").unwrap()));
    }

    #[test]
    fn set_source_voltage_updates_value() {
        let mut n = single_set();
        n.set_source_voltage("VG", 0.25).unwrap();
        match n.element("VG").unwrap().kind() {
            ElementKind::VoltageSource { voltage } => assert_eq!(*voltage, 0.25),
            other => panic!("unexpected kind {other:?}"),
        }
        assert!(n.set_source_voltage("VX", 1.0).is_err());
        assert!(n.set_source_voltage("J1", 1.0).is_err());
    }

    #[test]
    fn node_names_round_trip() {
        let mut n = Netlist::new("t");
        let a = n.node("alpha");
        assert_eq!(n.node_name(a), Some("alpha"));
        assert_eq!(n.find_node("ALPHA"), Some(a));
        assert_eq!(n.node_count(), 2);
    }

    #[test]
    fn empty_netlist_reports_empty() {
        let n = Netlist::new("x");
        assert!(n.is_empty());
        assert_eq!(n.elements().len(), 0);
    }

    #[test]
    fn elements_where_filters_by_kind() {
        let n = single_set();
        let caps: Vec<_> = n
            .elements_where(|k| matches!(k, ElementKind::Capacitor { .. }))
            .collect();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].name(), "CG");
    }
}
