//! Interned circuit node identifiers.
//!
//! Nodes are referred to by small integer handles ([`Node`]); the mapping
//! between user-facing names (`"drain"`, `"n7"`, `"0"`) and handles is kept
//! in a [`NodeMap`]. Node `0` is always ground, matching SPICE convention.

use std::collections::HashMap;
use std::fmt;

/// Handle for a circuit node.
///
/// `Node::GROUND` (index 0) is the global reference node, as in SPICE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub(crate) u32);

impl Node {
    /// The global ground / reference node.
    pub const GROUND: Node = Node(0);

    /// Returns the raw index of this node. Ground is index 0.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the ground node.
    #[must_use]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// Creates a node handle from a raw index.
    ///
    /// Intended for simulators that build their own node vectors; prefer
    /// [`NodeMap::intern`] when constructing circuits by name.
    #[must_use]
    pub fn from_index(index: usize) -> Node {
        Node(index as u32)
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ground() {
            write!(f, "0")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Bidirectional map between node names and [`Node`] handles.
#[derive(Debug, Clone, Default)]
pub struct NodeMap {
    names: Vec<String>,
    by_name: HashMap<String, Node>,
}

impl NodeMap {
    /// Creates a node map containing only the ground node (named `"0"`).
    #[must_use]
    pub fn new() -> Self {
        let mut map = NodeMap {
            names: Vec::new(),
            by_name: HashMap::new(),
        };
        map.names.push("0".to_string());
        map.by_name.insert("0".to_string(), Node::GROUND);
        map.by_name.insert("gnd".to_string(), Node::GROUND);
        map
    }

    /// Returns the handle for `name`, creating a new node if necessary.
    ///
    /// The names `"0"`, `"gnd"` and `"GND"` all resolve to ground.
    pub fn intern(&mut self, name: &str) -> Node {
        let key = name.to_ascii_lowercase();
        if let Some(&node) = self.by_name.get(&key) {
            return node;
        }
        let node = Node(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(key, node);
        node
    }

    /// Looks up an existing node by name without creating it.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Node> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Returns the user-facing name of a node, if it exists.
    #[must_use]
    pub fn name(&self, node: Node) -> Option<&str> {
        self.names.get(node.index()).map(String::as_str)
    }

    /// Total number of nodes including ground.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if only the ground node exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterates over all non-ground nodes.
    pub fn iter(&self) -> impl Iterator<Item = Node> + '_ {
        (1..self.names.len()).map(|i| Node(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_node_zero() {
        assert_eq!(Node::GROUND.index(), 0);
        assert!(Node::GROUND.is_ground());
        assert!(!Node(3).is_ground());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut map = NodeMap::new();
        let a = map.intern("drain");
        let b = map.intern("drain");
        assert_eq!(a, b);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn intern_is_case_insensitive_but_preserves_first_spelling() {
        let mut map = NodeMap::new();
        let a = map.intern("Drain");
        let b = map.intern("dRaIn");
        assert_eq!(a, b);
        assert_eq!(map.name(a), Some("Drain"));
    }

    #[test]
    fn ground_aliases_resolve_to_ground() {
        let mut map = NodeMap::new();
        assert_eq!(map.intern("0"), Node::GROUND);
        assert_eq!(map.intern("gnd"), Node::GROUND);
        assert_eq!(map.intern("GND"), Node::GROUND);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn get_does_not_create() {
        let mut map = NodeMap::new();
        assert_eq!(map.get("x"), None);
        let x = map.intern("x");
        assert_eq!(map.get("X"), Some(x));
    }

    #[test]
    fn iter_skips_ground() {
        let mut map = NodeMap::new();
        map.intern("a");
        map.intern("b");
        let nodes: Vec<Node> = map.iter().collect();
        assert_eq!(nodes.len(), 2);
        assert!(nodes.iter().all(|n| !n.is_ground()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Node::GROUND.to_string(), "0");
        assert_eq!(Node(5).to_string(), "n5");
    }

    #[test]
    fn empty_map_reports_empty() {
        let map = NodeMap::new();
        assert!(map.is_empty());
        assert_eq!(map.len(), 1);
    }
}
