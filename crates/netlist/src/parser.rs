//! SPICE-flavoured text-deck parser.
//!
//! The dialect is the least-common-denominator of the decks used by the
//! SET-aware SPICE extensions cited in the paper: a title line, one element
//! per line, `*` comments, continuation lines starting with `+`, analysis
//! directives, and an optional `.end`. Device cards:
//!
//! ```text
//! * single SET biased by a gate
//! Rname  n+ n-  value            resistor
//! Cname  n+ n-  value            capacitor
//! Jname  n+ n-  C=value R=value  tunnel junction
//! Vname  n+ n-  [DC] value       DC voltage source
//! Vname  n+ n-  [DC v] PULSE(low high delay width period)
//! Vname  n+ n-  [DC v] SIN(offset amplitude freq [phase])
//! Vname  n+ n-  [DC v] PWL(t1 v1 t2 v2 ...)
//! Vname  n+ n-  [DC v] STEP(before after at)
//! Iname  n+ n-  value            DC current source
//! Dname  n+ n-  [IS=v] [N=v]     diode
//! Mname  d g s  [NMOS|PMOS] [VTH=v] [KP=v] [LAMBDA=v]
//! Xname  d g s  SET [CG=v] [CS=v] [CD=v] [RS=v] [RD=v] [Q0=v]
//! .end
//! ```
//!
//! Analysis directives (`.dc`, `.tran`, `.options`, `.print`/`.probe`) are
//! parsed into the typed [`Analysis`] AST of [`crate::directive`];
//! directives the parser does not understand become [`ParseDiagnostic`]s on
//! the returned [`Deck`] instead of being silently dropped, and malformed
//! known directives are hard errors.
//!
//! Values accept SPICE magnitude suffixes (`1a`, `100k`, `2.5meg`, …) via
//! [`se_units::parse_value`].

use crate::directive::{
    Analysis, Deck, EnginePreference, ParseDiagnostic, SolverPreference, SweepSpec,
};
use crate::element::{Element, ElementKind, MosfetParams, MosfetType, SetParams};
use crate::error::NetlistError;
use crate::netlist::Netlist;
use se_engine::Waveform;
use se_units::parse_value;
use std::collections::HashMap;

/// Parses a SPICE-flavoured deck into a [`Netlist`], discarding analysis
/// directives.
///
/// This is the circuit-only view of [`parse_full_deck`]: directives are
/// still *validated* (a malformed `.dc` card is an error), but the parsed
/// analyses, options, probes, waveforms and diagnostics are dropped. Use
/// [`parse_full_deck`] when the analysis commands matter — e.g. to compile
/// and run the deck through `se-sim`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] describing the first malformed card, or
/// the underlying construction error for invalid parameters and duplicate
/// names.
pub fn parse_deck(deck: &str) -> Result<Netlist, NetlistError> {
    parse_full_deck(deck).map(|deck| deck.netlist)
}

/// Parses a SPICE-flavoured deck into a full [`Deck`]: the netlist plus the
/// typed analysis directives, options, probes and source waveforms.
///
/// The first non-empty line is taken as the title. Lines starting with `*`
/// are comments; lines starting with `+` continue the previous card;
/// `.end` terminates parsing. Recognised directives become typed values on
/// the deck; unknown directives and unsupported probe kinds are recorded as
/// [`ParseDiagnostic`]s (with line numbers) instead of being dropped.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] describing the first malformed card —
/// including malformed *known* directives such as a `.dc` with the wrong
/// argument count — or the underlying construction error for invalid
/// parameters and duplicate names.
pub fn parse_full_deck(text: &str) -> Result<Deck, NetlistError> {
    // Join continuation lines first, remembering original line numbers.
    let mut cards: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.trim_start().strip_prefix('+') {
            match cards.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(rest);
                }
                None => {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        message: "continuation line with nothing to continue".into(),
                    })
                }
            }
        } else {
            cards.push((line_no, line.trim().to_string()));
        }
    }

    if cards.is_empty() {
        return Err(NetlistError::Parse {
            line: 0,
            message: "deck is empty".into(),
        });
    }

    let (_, title) = cards.remove(0);
    let mut deck = Deck {
        netlist: Netlist::new(title),
        ..Deck::default()
    };

    for (line_no, card) in cards {
        let lower = card.to_ascii_lowercase();
        if lower.starts_with(".end") {
            break;
        }
        if lower.starts_with('.') {
            parse_directive(&card, line_no, &mut deck)?;
            continue;
        }
        let element = parse_card(&card, line_no, &mut deck)?;
        deck.netlist.add(element)?;
    }
    Ok(deck)
}

fn strip_comment(line: &str) -> &str {
    // Full-line comments start with '*'; inline comments with ';'.
    let trimmed = line.trim_start();
    if trimmed.starts_with('*') {
        return "";
    }
    match line.find(';') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Parses one `.`-directive card into the deck.
fn parse_directive(card: &str, line: usize, deck: &mut Deck) -> Result<(), NetlistError> {
    let err = |message: String| NetlistError::Parse { line, message };
    let tokens: Vec<&str> = card.split_whitespace().collect();
    let directive = tokens[0].to_ascii_lowercase();
    match directive.as_str() {
        ".dc" => {
            let args = &tokens[1..];
            match args.len() {
                4 => {
                    let sweep = parse_sweep_spec(&args[0..4], line, &mut deck.diagnostics)?;
                    deck.analyses.push(Analysis::DcSweep { sweep });
                }
                8 => {
                    // SPICE convention: the first source is the fast (inner)
                    // axis, the second the slow (outer) axis.
                    let inner = parse_sweep_spec(&args[0..4], line, &mut deck.diagnostics)?;
                    let outer = parse_sweep_spec(&args[4..8], line, &mut deck.diagnostics)?;
                    deck.analyses.push(Analysis::DcMap { outer, inner });
                }
                n => {
                    return Err(err(format!(
                        ".dc needs `SRC start stop step` (4 arguments) or two such groups \
                         (8 arguments), got {n}"
                    )))
                }
            }
        }
        ".tran" => {
            if tokens.len() != 3 {
                return Err(err(format!(".tran needs `tstep tstop`, got `{card}`")));
            }
            let step = parse_value(tokens[1]).map_err(|e| err(e.to_string()))?;
            let stop = parse_value(tokens[2]).map_err(|e| err(e.to_string()))?;
            if !(step > 0.0) || !step.is_finite() {
                return Err(err(format!(
                    ".tran step must be positive and finite, got {step}"
                )));
            }
            if !(stop >= step) || !stop.is_finite() {
                return Err(err(format!(
                    ".tran stop must be at least one step, got {stop} with step {step}"
                )));
            }
            deck.analyses.push(Analysis::Transient { step, stop });
        }
        ".options" | ".option" => {
            parse_options(&tokens[1..], line, deck)?;
        }
        ".print" | ".probe" => {
            parse_print(&tokens[1..], line, deck);
        }
        other => {
            deck.diagnostics.push(ParseDiagnostic {
                line,
                message: format!("unknown directive `{other}` ignored"),
            });
        }
    }
    Ok(())
}

/// Parses one `SRC start stop step` group of a `.dc` card.
fn parse_sweep_spec(
    args: &[&str],
    line: usize,
    diagnostics: &mut Vec<ParseDiagnostic>,
) -> Result<SweepSpec, NetlistError> {
    let err = |message: String| NetlistError::Parse { line, message };
    let source = args[0].to_string();
    if source.starts_with(|c: char| c.is_ascii_digit()) {
        return Err(err(format!(
            ".dc expects a source name, got the number `{source}` (wrong argument count?)"
        )));
    }
    let start = parse_value(args[1]).map_err(|e| err(e.to_string()))?;
    let stop = parse_value(args[2]).map_err(|e| err(e.to_string()))?;
    let step = parse_value(args[3]).map_err(|e| err(e.to_string()))?;
    if !(start.is_finite() && stop.is_finite() && step.is_finite()) {
        return Err(err(format!(
            ".dc bounds must be finite, got {start} {stop} {step}"
        )));
    }
    let points = if start == stop {
        1
    } else {
        if step == 0.0 {
            return Err(err(format!(
                ".dc step must be non-zero for a {start} → {stop} sweep"
            )));
        }
        if (stop - start).signum() != step.signum() {
            return Err(err(format!(
                ".dc step {step} points away from the sweep direction {start} → {stop}"
            )));
        }
        let count = (stop - start) / step;
        const MAX_POINTS: f64 = 2_000_000.0;
        if count > MAX_POINTS {
            return Err(err(format!(
                ".dc grid would have {} points (more than {MAX_POINTS})",
                count as u64
            )));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let steps = count.round() as usize;
        // The grid always covers [start, stop] with evenly spaced points;
        // a step that does not divide the span is adjusted, and silently
        // substituting bias points would violate the no-silent-drop
        // contract, so say so.
        let rounding = (count - steps as f64).abs();
        if rounding > 1e-9 * count.abs().max(1.0) {
            let actual = (stop - start) / steps as f64;
            diagnostics.push(ParseDiagnostic {
                line,
                message: format!(
                    ".dc step {step} does not evenly divide {start} → {stop}; using {} points \
                     evenly spaced over the full range (step {actual:.6e})",
                    steps + 1
                ),
            });
        }
        steps + 1
    };
    Ok(SweepSpec {
        source,
        start,
        stop,
        points,
    })
}

/// Parses the `KEY=VALUE` pairs of an `.options` card.
fn parse_options(args: &[&str], line: usize, deck: &mut Deck) -> Result<(), NetlistError> {
    let err = |message: String| NetlistError::Parse { line, message };
    for token in args {
        let Some((key, value)) = token.split_once('=') else {
            deck.diagnostics.push(ParseDiagnostic {
                line,
                message: format!(".options entry `{token}` is not KEY=VALUE, ignored"),
            });
            continue;
        };
        match key.to_ascii_lowercase().as_str() {
            "temp" | "temperature" => {
                let temperature = parse_value(value).map_err(|e| err(e.to_string()))?;
                if temperature < 0.0 || !temperature.is_finite() {
                    return Err(err(format!(
                        "temperature must be non-negative kelvin, got {temperature}"
                    )));
                }
                deck.options.temperature = temperature;
            }
            "seed" => {
                deck.options.seed = value
                    .parse::<u64>()
                    .map_err(|_| err(format!("seed must be an unsigned integer, got `{value}`")))?;
            }
            "engine" => {
                deck.options.engine = EnginePreference::parse(value).map_err(err)?;
            }
            "window" => {
                let window = value
                    .parse::<i64>()
                    .map_err(|_| err(format!("window must be an integer, got `{value}`")))?;
                if window < 1 {
                    return Err(err(format!("window must be at least 1, got {window}")));
                }
                deck.options.master_window = Some(window);
            }
            "maxstates" => {
                let max_states = value.parse::<usize>().map_err(|_| {
                    err(format!(
                        "maxstates must be an unsigned integer, got `{value}`"
                    ))
                })?;
                if max_states == 0 {
                    return Err(err("maxstates must be at least 1".into()));
                }
                deck.options.master_max_states = Some(max_states);
            }
            "solver" => {
                deck.options.solver = Some(SolverPreference::parse(value).map_err(err)?);
            }
            "events" => {
                let events = value.parse::<usize>().map_err(|_| {
                    err(format!("events must be an unsigned integer, got `{value}`"))
                })?;
                if events == 0 {
                    return Err(err("events must be at least 1".into()));
                }
                deck.options.kmc_events = Some(events);
            }
            "repeats" => {
                let repeats = value.parse::<usize>().map_err(|_| {
                    err(format!(
                        "repeats must be an unsigned integer, got `{value}`"
                    ))
                })?;
                if repeats == 0 {
                    return Err(err("repeats must be at least 1".into()));
                }
                deck.options.repeats = Some(repeats);
            }
            other => {
                deck.diagnostics.push(ParseDiagnostic {
                    line,
                    message: format!(".options key `{other}` is not recognised, ignored"),
                });
            }
        }
    }
    Ok(())
}

/// Parses the signal list of a `.print` / `.probe` card.
fn parse_print(args: &[&str], line: usize, deck: &mut Deck) {
    let mut signals = args;
    // An optional leading analysis-mode token (".print dc i(J1)").
    if let Some(first) = signals.first() {
        if first.eq_ignore_ascii_case("dc") || first.eq_ignore_ascii_case("tran") {
            signals = &signals[1..];
        }
    }
    if signals.is_empty() {
        deck.diagnostics.push(ParseDiagnostic {
            line,
            message: ".print without signals ignored".into(),
        });
        return;
    }
    for signal in signals {
        let lower = signal.to_ascii_lowercase();
        if let Some(name) = lower.strip_prefix("i(").and_then(|s| s.strip_suffix(')')) {
            // Preserve the user's spelling of the name inside i(...).
            let inner = &signal[2..signal.len() - 1];
            if name.is_empty() {
                deck.diagnostics.push(ParseDiagnostic {
                    line,
                    message: "empty probe `i()` ignored".into(),
                });
            } else {
                deck.probes.push(inner.to_string());
            }
        } else if lower.starts_with("v(") {
            deck.diagnostics.push(ParseDiagnostic {
                line,
                message: format!(
                    "voltage probe `{signal}` is not supported (only current probes `i(NAME)`), \
                     ignored"
                ),
            });
        } else {
            // A bare name is taken as a current observable.
            deck.probes.push((*signal).to_string());
        }
    }
}

/// Parses the value/waveform spec of a voltage-source card (everything
/// after the two node tokens): `[DC] value`, or an optional `DC value`
/// followed by a `PULSE(...)`, `SIN(...)`, `PWL(...)` or `STEP(...)` spec.
///
/// Returns the DC operating value (defaulting to the waveform evaluated at
/// `t = 0`) and the waveform, if any.
fn parse_source_spec(
    spec: &str,
    name: &str,
    line: usize,
    diagnostics: &mut Vec<ParseDiagnostic>,
) -> Result<(f64, Option<Waveform>), NetlistError> {
    let err = |message: String| NetlistError::Parse { line, message };
    let (prefix, function) = match spec.find('(') {
        None => (spec.trim(), None),
        Some(open) => {
            let close = spec
                .rfind(')')
                .ok_or_else(|| err(format!("`{name}`: unterminated waveform spec `{spec}`")))?;
            if close < open {
                return Err(err(format!("`{name}`: malformed waveform spec `{spec}`")));
            }
            if !spec[close + 1..].trim().is_empty() {
                return Err(err(format!(
                    "`{name}`: unexpected text after waveform spec: `{}`",
                    spec[close + 1..].trim()
                )));
            }
            let head = spec[..open].trim_end();
            let func_start = head.rfind(char::is_whitespace).map_or(0, |pos| pos + 1);
            let func_name = &head[func_start..];
            if func_name.is_empty() {
                return Err(err(format!(
                    "`{name}`: waveform spec needs a function name before `(`"
                )));
            }
            let args: Vec<f64> = spec[open + 1..close]
                .replace(',', " ")
                .split_whitespace()
                .map(|token| parse_value(token).map_err(|e| err(e.to_string())))
                .collect::<Result<_, _>>()?;
            let waveform = build_waveform(func_name, &args, name, line, diagnostics)?;
            (head[..func_start].trim(), Some(waveform))
        }
    };

    // The prefix is empty, `value`, `DC`, or `DC value`.
    let prefix_tokens: Vec<&str> = prefix.split_whitespace().collect();
    let dc_value = match prefix_tokens.as_slice() {
        [] => None,
        [value] if !value.eq_ignore_ascii_case("dc") => {
            Some(parse_value(value).map_err(|e| err(e.to_string()))?)
        }
        [dc, value] if dc.eq_ignore_ascii_case("dc") => {
            Some(parse_value(value).map_err(|e| err(e.to_string()))?)
        }
        _ => {
            return Err(err(format!(
                "`{name}`: expected `[DC] value` before the waveform, got `{prefix}`"
            )))
        }
    };

    match (dc_value, function) {
        (Some(value), waveform) => Ok((value, waveform)),
        (None, Some(waveform)) => Ok((waveform.value_at(0.0), Some(waveform))),
        (None, None) => Err(err(format!("`{name}` needs a DC value or a waveform spec"))),
    }
}

/// Builds a [`Waveform`] from a parsed `NAME(args...)` spec.
fn build_waveform(
    func: &str,
    args: &[f64],
    name: &str,
    line: usize,
    diagnostics: &mut Vec<ParseDiagnostic>,
) -> Result<Waveform, NetlistError> {
    let err = |message: String| NetlistError::Parse { line, message };
    let wave_err = |e: se_engine::WaveformError| err(format!("`{name}`: {e}"));
    match func.to_ascii_uppercase().as_str() {
        "PULSE" => match args {
            [low, high, delay, width, period] => {
                Waveform::pulse(*low, *high, *delay, *width, *period).map_err(wave_err)
            }
            // The 7-argument SPICE form PULSE(v1 v2 td tr tf pw per): the
            // integrators of this toolkit use ideal edges, so rise/fall
            // times are dropped — loudly, via a diagnostic.
            [low, high, delay, rise, fall, width, period] => {
                diagnostics.push(ParseDiagnostic {
                    line,
                    message: format!(
                        "`{name}`: PULSE rise/fall times ({rise}, {fall}) ignored (ideal edges)"
                    ),
                });
                Waveform::pulse(*low, *high, *delay, *width, *period).map_err(wave_err)
            }
            _ => Err(err(format!(
                "`{name}`: PULSE needs (low high delay width period), got {} arguments",
                args.len()
            ))),
        },
        "SIN" | "SINE" => match args {
            [offset, amplitude, frequency] => {
                Waveform::sine(*offset, *amplitude, *frequency, 0.0).map_err(wave_err)
            }
            [offset, amplitude, frequency, phase] => {
                Waveform::sine(*offset, *amplitude, *frequency, *phase).map_err(wave_err)
            }
            _ => Err(err(format!(
                "`{name}`: SIN needs (offset amplitude frequency [phase]), got {} arguments",
                args.len()
            ))),
        },
        "PWL" => {
            if args.is_empty() || !args.len().is_multiple_of(2) {
                return Err(err(format!(
                    "`{name}`: PWL needs an even number of (time value) arguments, got {}",
                    args.len()
                )));
            }
            let points: Vec<(f64, f64)> = args.chunks(2).map(|pair| (pair[0], pair[1])).collect();
            Waveform::pwl(points).map_err(wave_err)
        }
        "STEP" => match args {
            [before, after, at] => Waveform::step(*before, *after, *at).map_err(wave_err),
            _ => Err(err(format!(
                "`{name}`: STEP needs (before after at), got {} arguments",
                args.len()
            ))),
        },
        other => Err(err(format!(
            "`{name}`: unknown waveform function `{other}` (use PULSE, SIN, PWL or STEP)"
        ))),
    }
}

fn parse_card(card: &str, line: usize, deck: &mut Deck) -> Result<Element, NetlistError> {
    let tokens: Vec<&str> = card.split_whitespace().collect();
    let err = |message: String| NetlistError::Parse { line, message };
    let name = tokens[0];
    let prefix = name
        .chars()
        .next()
        .ok_or_else(|| err("empty element name".into()))?
        .to_ascii_uppercase();

    let value_of = |token: &str| -> Result<f64, NetlistError> {
        parse_value(token).map_err(|e| err(e.to_string()))
    };

    // Split tokens after the nodes into positional values and KEY=VALUE pairs.
    let parse_kv = |tokens: &[&str]| -> Result<(Vec<f64>, HashMap<String, f64>), NetlistError> {
        let mut positional = Vec::new();
        let mut named = HashMap::new();
        for t in tokens {
            if let Some((k, v)) = t.split_once('=') {
                named.insert(k.to_ascii_uppercase(), value_of(v)?);
            } else if t.eq_ignore_ascii_case("set")
                || t.eq_ignore_ascii_case("nmos")
                || t.eq_ignore_ascii_case("pmos")
            {
                // Model keywords handled by the caller.
                named.insert(t.to_ascii_uppercase(), 1.0);
            } else {
                positional.push(value_of(t)?);
            }
        }
        Ok((positional, named))
    };

    let netlist = &mut deck.netlist;
    match prefix {
        'V' => {
            if tokens.len() < 4 {
                return Err(err(format!(
                    "`{name}` needs two nodes and a value or waveform, got `{card}`"
                )));
            }
            let a = netlist.node(tokens[1]);
            let b = netlist.node(tokens[2]);
            // Re-join the spec so functional forms like `PULSE(0 1m ...)`
            // survive whitespace tokenization.
            let spec = tokens[3..].join(" ");
            let (voltage, waveform) = parse_source_spec(&spec, name, line, &mut deck.diagnostics)?;
            if let Some(waveform) = waveform {
                deck.waveforms.push((name.to_string(), waveform));
            }
            Element::new(name, vec![a, b], ElementKind::VoltageSource { voltage })
        }
        'R' | 'C' | 'I' => {
            if tokens.len() < 4 {
                return Err(err(format!(
                    "`{name}` needs two nodes and a value, got `{card}`"
                )));
            }
            let a = netlist.node(tokens[1]);
            let b = netlist.node(tokens[2]);
            let value = value_of(tokens[3])?;
            let kind = match prefix {
                'R' => ElementKind::Resistor { resistance: value },
                'C' => ElementKind::Capacitor { capacitance: value },
                _ => ElementKind::CurrentSource { current: value },
            };
            Element::new(name, vec![a, b], kind)
        }
        'J' => {
            if tokens.len() < 4 {
                return Err(err(format!(
                    "`{name}` needs two nodes and C=/R= parameters, got `{card}`"
                )));
            }
            let a = netlist.node(tokens[1]);
            let b = netlist.node(tokens[2]);
            let (positional, named) = parse_kv(&tokens[3..])?;
            let capacitance = named
                .get("C")
                .copied()
                .or_else(|| positional.first().copied())
                .ok_or_else(|| err(format!("`{name}` is missing its capacitance (C=)")))?;
            let resistance = named
                .get("R")
                .copied()
                .or_else(|| positional.get(1).copied())
                .ok_or_else(|| err(format!("`{name}` is missing its tunnel resistance (R=)")))?;
            Element::new(
                name,
                vec![a, b],
                ElementKind::TunnelJunction {
                    capacitance,
                    resistance,
                },
            )
        }
        'D' => {
            if tokens.len() < 3 {
                return Err(err(format!("`{name}` needs two nodes, got `{card}`")));
            }
            let a = netlist.node(tokens[1]);
            let b = netlist.node(tokens[2]);
            let (_, named) = parse_kv(&tokens[3..])?;
            Element::new(
                name,
                vec![a, b],
                ElementKind::Diode {
                    saturation_current: named.get("IS").copied().unwrap_or(1e-14),
                    ideality: named.get("N").copied().unwrap_or(1.0),
                },
            )
        }
        'M' => {
            if tokens.len() < 4 {
                return Err(err(format!(
                    "`{name}` needs drain, gate and source nodes, got `{card}`"
                )));
            }
            let d = netlist.node(tokens[1]);
            let g = netlist.node(tokens[2]);
            let s = netlist.node(tokens[3]);
            let (_, named) = parse_kv(&tokens[4..])?;
            let mut params = if named.contains_key("PMOS") {
                MosfetParams::pmos_180nm()
            } else {
                MosfetParams::nmos_180nm()
            };
            if let Some(&vth) = named.get("VTH") {
                params.vth = vth;
            }
            if let Some(&kp) = named.get("KP") {
                params.kp = kp;
            }
            if let Some(&lambda) = named.get("LAMBDA") {
                params.lambda = lambda;
            }
            if named.contains_key("PMOS") {
                params.polarity = MosfetType::Pmos;
            }
            Element::new(name, vec![d, g, s], ElementKind::Mosfet { params })
        }
        'X' => {
            if tokens.len() < 5 {
                return Err(err(format!(
                    "`{name}` needs drain, gate, source nodes and the SET keyword, got `{card}`"
                )));
            }
            let d = netlist.node(tokens[1]);
            let g = netlist.node(tokens[2]);
            let s = netlist.node(tokens[3]);
            let (_, named) = parse_kv(&tokens[4..])?;
            if !named.contains_key("SET") {
                return Err(err(format!(
                    "`{name}`: only the SET subcircuit model is supported"
                )));
            }
            let mut params = SetParams::default();
            if let Some(&v) = named.get("CG") {
                params.c_gate = v;
            }
            if let Some(&v) = named.get("CS") {
                params.c_source = v;
            }
            if let Some(&v) = named.get("CD") {
                params.c_drain = v;
            }
            if let Some(&v) = named.get("RS") {
                params.r_source = v;
            }
            if let Some(&v) = named.get("RD") {
                params.r_drain = v;
            }
            if let Some(&v) = named.get("Q0") {
                params.background_charge = v;
            }
            Element::new(name, vec![d, g, s], ElementKind::SetTransistor { params })
        }
        other => Err(err(format!("unknown device prefix `{other}` in `{card}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    const SINGLE_SET_DECK: &str = r"single SET with gate bias
* drain and gate sources
VD drain 0 1m
VG gate 0 0
J1 drain island C=1a R=100k
J2 island 0 C=1a R=100k
CG gate island 0.5a
.end
";

    #[test]
    fn parses_the_single_set_deck() {
        let netlist = parse_deck(SINGLE_SET_DECK).unwrap();
        assert_eq!(netlist.title(), "single SET with gate bias");
        assert_eq!(netlist.len(), 5);
        assert!(netlist.validate().is_ok());
        let islands = netlist.find_islands();
        assert_eq!(islands.len(), 1);
        match netlist.element("J1").unwrap().kind() {
            ElementKind::TunnelJunction {
                capacitance,
                resistance,
            } => {
                assert!((capacitance - 1e-18).abs() < 1e-30);
                assert!((resistance - 1e5).abs() < 1e-6);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn continuation_lines_are_joined() {
        let deck = "title\nJ1 a 0\n+ C=1a\n+ R=50k\nV1 a 0 1m\n";
        let netlist = parse_deck(deck).unwrap();
        match netlist.element("J1").unwrap().kind() {
            ElementKind::TunnelJunction { resistance, .. } => {
                assert!((resistance - 5e4).abs() < 1e-6);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn directives_can_be_continued_too() {
        let deck = "title\nV1 a 0 1\nR1 a 0 1k\n.dc V1 0 1\n+ 0.5\n";
        let parsed = parse_full_deck(deck).unwrap();
        assert_eq!(
            parsed.analyses,
            vec![Analysis::DcSweep {
                sweep: SweepSpec {
                    source: "V1".into(),
                    start: 0.0,
                    stop: 1.0,
                    points: 3,
                }
            }]
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let deck = "title\n\n* a comment\nR1 a 0 1k ; trailing comment\nV1 a 0 1\n";
        let netlist = parse_deck(deck).unwrap();
        assert_eq!(netlist.len(), 2);
    }

    #[test]
    fn mosfet_and_set_cards_parse_parameters() {
        let deck = "hybrid cell\nVDD vdd 0 1.8\nM1 vdd in out NMOS VTH=0.4 KP=200u LAMBDA=0.05\nX1 out in 0 SET CG=2a CS=0.5a CD=0.5a RS=200k RD=200k Q0=0.1\nV2 in 0 0.9\nR1 out 0 1meg\n";
        let netlist = parse_deck(deck).unwrap();
        match netlist.element("M1").unwrap().kind() {
            ElementKind::Mosfet { params } => {
                assert!((params.vth - 0.4).abs() < 1e-12);
                assert!((params.kp - 200e-6).abs() < 1e-12);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        match netlist.element("X1").unwrap().kind() {
            ElementKind::SetTransistor { params } => {
                assert!((params.c_gate - 2e-18).abs() < 1e-30);
                assert!((params.background_charge - 0.1).abs() < 1e-12);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn diode_defaults_apply() {
        let deck = "d\nD1 a 0\nV1 a 0 0.7\n";
        let netlist = parse_deck(deck).unwrap();
        match netlist.element("D1").unwrap().kind() {
            ElementKind::Diode {
                saturation_current,
                ideality,
            } => {
                assert!((saturation_current - 1e-14).abs() < 1e-26);
                assert!((ideality - 1.0).abs() < 1e-12);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_is_reported_with_line_number() {
        let deck = "title\nQ1 a b c 1k\n";
        let err = parse_deck(deck).unwrap_err();
        match err {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("unknown device prefix"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_junction_parameters_are_reported() {
        let deck = "title\nJ1 a 0 C=1a\n";
        let err = parse_deck(deck).unwrap_err();
        assert!(err.to_string().contains("tunnel resistance"));
    }

    #[test]
    fn empty_deck_is_an_error() {
        assert!(parse_deck("").is_err());
        assert!(parse_deck("\n\n* only comments\n").is_err());
    }

    #[test]
    fn orphan_continuation_is_an_error() {
        let err = parse_deck("+ R=1k\n").unwrap_err();
        assert!(err.to_string().contains("continuation"));
    }

    #[test]
    fn end_stops_parsing() {
        let deck = "title\nV1 a 0 1\nR1 a 0 1k\n.tran 1n 1u\n.end\nR2 a 0 1k\n";
        let netlist = parse_deck(deck).unwrap();
        // .end stops parsing, so R2 is not included.
        assert_eq!(netlist.len(), 2);
    }

    #[test]
    fn ground_aliases_in_decks() {
        let deck = "title\nV1 a gnd 1\nR1 a GND 1k\n";
        let netlist = parse_deck(deck).unwrap();
        let ground_connected = netlist
            .elements()
            .iter()
            .all(|e| e.nodes().contains(&Node::GROUND));
        assert!(ground_connected);
    }

    // ---- directive parsing -------------------------------------------------

    #[test]
    fn dc_sweep_directive_parses_with_point_count() {
        let deck = "set\nVD d 0 0\nJ1 d i C=1a R=100k\nJ2 i 0 C=1a R=100k\n.dc VD 0 0.1 2m\n";
        let parsed = parse_full_deck(deck).unwrap();
        assert_eq!(parsed.analyses.len(), 1);
        match &parsed.analyses[0] {
            Analysis::DcSweep { sweep } => {
                assert_eq!(sweep.source, "VD");
                assert_eq!(sweep.points, 51);
                assert!((sweep.step() - 2e-3).abs() < 1e-12);
            }
            other => panic!("unexpected analysis {other:?}"),
        }
        assert!(parsed.diagnostics.is_empty());
    }

    #[test]
    fn descending_dc_sweeps_need_a_negative_step() {
        let good = "t\nV1 a 0 1\nR1 a 0 1k\n.dc V1 1 0 -0.25\n";
        let parsed = parse_full_deck(good).unwrap();
        match &parsed.analyses[0] {
            Analysis::DcSweep { sweep } => assert_eq!(sweep.points, 5),
            other => panic!("unexpected analysis {other:?}"),
        }
        let bad = "t\nV1 a 0 1\nR1 a 0 1k\n.dc V1 1 0 0.25\n";
        let err = parse_full_deck(bad).unwrap_err();
        assert!(err.to_string().contains("sweep direction"), "{err}");
    }

    #[test]
    fn non_dividing_dc_steps_are_flagged_not_silently_redistributed() {
        let deck = "t\nV1 a 0 1\nR1 a 0 1k\n.dc V1 0 1 0.3\n";
        let parsed = parse_full_deck(deck).unwrap();
        match &parsed.analyses[0] {
            Analysis::DcSweep { sweep } => assert_eq!(sweep.points, 4),
            other => panic!("unexpected analysis {other:?}"),
        }
        assert_eq!(parsed.diagnostics.len(), 1, "{:?}", parsed.diagnostics);
        assert!(
            parsed.diagnostics[0].message.contains("evenly divide"),
            "{:?}",
            parsed.diagnostics
        );
        // An exactly dividing step stays silent.
        let exact = parse_full_deck("t\nV1 a 0 1\nR1 a 0 1k\n.dc V1 0 1 0.25\n").unwrap();
        assert!(exact.diagnostics.is_empty(), "{:?}", exact.diagnostics);
    }

    #[test]
    fn two_source_dc_builds_a_map_with_spice_axis_order() {
        let deck = "t\nVD a 0 1\nVG b 0 0\nR1 a 0 1k\nR2 b 0 1k\n.dc VD -1 1 1 VG 0 4 2\n";
        let parsed = parse_full_deck(deck).unwrap();
        match &parsed.analyses[0] {
            Analysis::DcMap { outer, inner } => {
                // First source on the card = fast/inner axis.
                assert_eq!(inner.source, "VD");
                assert_eq!(inner.points, 3);
                assert_eq!(outer.source, "VG");
                assert_eq!(outer.points, 3);
            }
            other => panic!("unexpected analysis {other:?}"),
        }
    }

    #[test]
    fn malformed_dc_directives_are_hard_errors() {
        for bad in [
            ".dc",
            ".dc VD 0 1",
            ".dc VD 0 1 0",
            ".dc VD 0 1 nope",
            ".dc VD 0 1 0.5 VG 0 1",
            ".dc 0 1 0.5 VG",
        ] {
            let deck = format!("t\nVD a 0 1\nR1 a 0 1k\n{bad}\n");
            let err = parse_full_deck(&deck).unwrap_err();
            assert!(
                matches!(err, NetlistError::Parse { line: 4, .. }),
                "`{bad}` should fail on line 4, got {err:?}"
            );
        }
    }

    #[test]
    fn tran_directive_parses_and_validates() {
        let deck = "t\nV1 a 0 1\nR1 a 0 1k\n.tran 1n 1u\n";
        let parsed = parse_full_deck(deck).unwrap();
        assert_eq!(
            parsed.analyses,
            vec![Analysis::Transient {
                step: 1e-9,
                stop: 1e-6,
            }]
        );
        for bad in [
            ".tran",
            ".tran 1n",
            ".tran 0 1u",
            ".tran 1u 1n",
            ".tran 1n 1u 2",
        ] {
            let deck = format!("t\nV1 a 0 1\nR1 a 0 1k\n{bad}\n");
            assert!(parse_full_deck(&deck).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn options_merge_and_validate() {
        let deck = "t\nV1 a 0 1\nR1 a 0 1k\n.options temp=4.2 seed=42\n.options engine=kmc events=2000 window=4 maxstates=10000 repeats=16 solver=gauss-seidel\n";
        let parsed = parse_full_deck(deck).unwrap();
        assert!((parsed.options.temperature - 4.2).abs() < 1e-12);
        assert_eq!(parsed.options.seed, 42);
        assert_eq!(parsed.options.engine, EnginePreference::Kmc);
        assert_eq!(parsed.options.kmc_events, Some(2000));
        assert_eq!(parsed.options.master_window, Some(4));
        assert_eq!(parsed.options.master_max_states, Some(10_000));
        assert_eq!(parsed.options.repeats, Some(16));
        assert_eq!(parsed.options.solver, Some(SolverPreference::GaussSeidel));

        for bad in [
            ".options temp=-1",
            ".options seed=abc",
            ".options engine=verilog",
            ".options window=0",
            ".options maxstates=0",
            ".options events=0",
            ".options repeats=0",
            ".options repeats=many",
            ".options solver=multigrid",
        ] {
            let deck = format!("t\nV1 a 0 1\nR1 a 0 1k\n{bad}\n");
            assert!(parse_full_deck(&deck).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn zero_repeats_is_a_line_numbered_error_not_a_silent_no_op() {
        // `repeats=0` would make every ensemble point an empty average; it
        // must be refused *at the card*, citing the deck line.
        let deck = "t\nV1 a 0 1\nR1 a 0 1k\n.options engine=kmc\n.options repeats=0\n";
        let err = parse_full_deck(deck).unwrap_err();
        match err {
            NetlistError::Parse { line, ref message } => {
                assert_eq!(line, 5, "{err}");
                assert!(message.contains("repeats"), "{err}");
            }
            ref other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn unknown_directives_and_options_become_diagnostics() {
        let deck =
            "t\nV1 a 0 1\nR1 a 0 1k\n.ac dec 10 1 1g\n.options gmin=1e-12\n.print v(a) i(V1)\n";
        let parsed = parse_full_deck(deck).unwrap();
        assert_eq!(parsed.probes, vec!["V1".to_string()]);
        let messages: Vec<String> = parsed
            .diagnostics
            .iter()
            .map(ParseDiagnostic::to_string)
            .collect();
        assert_eq!(parsed.diagnostics.len(), 3, "{messages:?}");
        assert!(messages[0].contains(".ac"), "{messages:?}");
        assert!(messages[1].contains("gmin"), "{messages:?}");
        assert!(messages[2].contains("voltage probe"), "{messages:?}");
        assert_eq!(parsed.diagnostics[0].line, 4);
    }

    #[test]
    fn print_accepts_mode_tokens_and_bare_names() {
        let deck = "t\nV1 a 0 1\nR1 a 0 1k\n.print dc i(J1) J2\n.probe tran i(V1)\n";
        let parsed = parse_full_deck(deck).unwrap();
        assert_eq!(
            parsed.probes,
            vec!["J1".to_string(), "J2".to_string(), "V1".to_string()]
        );
    }

    // ---- source waveforms --------------------------------------------------

    #[test]
    fn pulse_source_parses_and_sets_the_dc_value() {
        let deck = "t\nVD a 0 PULSE(0 1m 20n 40n 1u)\nR1 a 0 1k\n";
        let parsed = parse_full_deck(deck).unwrap();
        let waveform = parsed.waveform_of("VD").unwrap();
        assert_eq!(
            *waveform,
            Waveform::pulse(0.0, 1e-3, 20e-9, 40e-9, 1e-6).unwrap()
        );
        match parsed.netlist.element("VD").unwrap().kind() {
            ElementKind::VoltageSource { voltage } => assert_eq!(*voltage, 0.0),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn seven_argument_pulse_drops_edges_with_a_diagnostic() {
        let deck = "t\nVD a 0 PULSE(0 1m 20n 1n 1n 40n 1u)\nR1 a 0 1k\n";
        let parsed = parse_full_deck(deck).unwrap();
        assert_eq!(
            *parsed.waveform_of("VD").unwrap(),
            Waveform::pulse(0.0, 1e-3, 20e-9, 40e-9, 1e-6).unwrap()
        );
        assert_eq!(parsed.diagnostics.len(), 1);
        assert!(parsed.diagnostics[0].message.contains("rise/fall"));
    }

    #[test]
    fn sin_pwl_and_step_sources_parse() {
        let deck = "t\nVA a 0 SIN(0 1m 1g)\nVB b 0 PWL(0 0 1n 1m 2n 0)\nVC c 0 STEP(0 1m 5n)\nR1 a 0 1k\nR2 b 0 1k\nR3 c 0 1k\n";
        let parsed = parse_full_deck(deck).unwrap();
        assert_eq!(
            *parsed.waveform_of("VA").unwrap(),
            Waveform::sine(0.0, 1e-3, 1e9, 0.0).unwrap()
        );
        assert_eq!(
            *parsed.waveform_of("VB").unwrap(),
            Waveform::pwl(vec![(0.0, 0.0), (1e-9, 1e-3), (2e-9, 0.0)]).unwrap()
        );
        assert_eq!(
            *parsed.waveform_of("VC").unwrap(),
            Waveform::step(0.0, 1e-3, 5e-9).unwrap()
        );
    }

    #[test]
    fn explicit_dc_value_overrides_the_waveform_origin() {
        let deck = "t\nVD a 0 DC 0.5m PULSE(0 1m 20n 40n 1u)\nR1 a 0 1k\n";
        let parsed = parse_full_deck(deck).unwrap();
        match parsed.netlist.element("VD").unwrap().kind() {
            ElementKind::VoltageSource { voltage } => assert_eq!(*voltage, 0.5e-3),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn commas_are_accepted_inside_waveform_args() {
        let deck = "t\nVD a 0 PULSE(0, 1m, 20n, 40n, 1u)\nR1 a 0 1k\n";
        let parsed = parse_full_deck(deck).unwrap();
        assert!(parsed.waveform_of("VD").is_some());
    }

    #[test]
    fn malformed_waveforms_are_reported() {
        for bad in [
            "VD a 0 PULSE(0 1m",
            "VD a 0 PULSE(0 1m 20n 40n 1u) extra",
            "VD a 0 PULSE(0 1m 20n)",
            "VD a 0 NOISE(1 2 3)",
            "VD a 0 PWL(0 0 1n)",
            "VD a 0 DC PULSE(0 1m 20n 40n 1u)",
            "VD a 0",
        ] {
            let deck = format!("t\n{bad}\nR1 a 0 1k\n");
            assert!(parse_full_deck(&deck).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn legacy_parse_deck_still_returns_the_bare_netlist() {
        let deck = "t\nVD a 0 PULSE(0 1m 20n 40n 1u)\nR1 a 0 1k\n.dc VD 0 1 0.5\n.print i(VD)\n";
        let netlist = parse_deck(deck).unwrap();
        assert_eq!(netlist.len(), 2);
    }
}
