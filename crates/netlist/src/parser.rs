//! SPICE-flavoured text-deck parser.
//!
//! The dialect is the least-common-denominator of the decks used by the
//! SET-aware SPICE extensions cited in the paper: a title line, one element
//! per line, `*` comments, continuation lines starting with `+`, and an
//! optional `.end`. Device cards:
//!
//! ```text
//! * single SET biased by a gate
//! Rname  n+ n-  value            resistor
//! Cname  n+ n-  value            capacitor
//! Jname  n+ n-  C=value R=value  tunnel junction
//! Vname  n+ n-  value            DC voltage source
//! Iname  n+ n-  value            DC current source
//! Dname  n+ n-  [IS=v] [N=v]     diode
//! Mname  d g s  [NMOS|PMOS] [VTH=v] [KP=v] [LAMBDA=v]
//! Xname  d g s  SET [CG=v] [CS=v] [CD=v] [RS=v] [RD=v] [Q0=v]
//! .end
//! ```
//!
//! Values accept SPICE magnitude suffixes (`1a`, `100k`, `2.5meg`, …) via
//! [`se_units::parse_value`].

use crate::element::{Element, ElementKind, MosfetParams, MosfetType, SetParams};
use crate::error::NetlistError;
use crate::netlist::Netlist;
use se_units::parse_value;
use std::collections::HashMap;

/// Parses a SPICE-flavoured deck into a [`Netlist`].
///
/// The first non-empty line is taken as the title. Lines starting with `*`
/// are comments; lines starting with `+` continue the previous card;
/// `.end` terminates parsing; other `.`-directives are ignored (the
/// simulators expose analyses through their APIs instead).
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] describing the first malformed card, or
/// the underlying construction error for invalid parameters and duplicate
/// names.
pub fn parse_deck(deck: &str) -> Result<Netlist, NetlistError> {
    // Join continuation lines first, remembering original line numbers.
    let mut cards: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in deck.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.trim_start().strip_prefix('+') {
            match cards.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(rest);
                }
                None => {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        message: "continuation line with nothing to continue".into(),
                    })
                }
            }
        } else {
            cards.push((line_no, line.trim().to_string()));
        }
    }

    if cards.is_empty() {
        return Err(NetlistError::Parse {
            line: 0,
            message: "deck is empty".into(),
        });
    }

    let (_, title) = cards.remove(0);
    let mut netlist = Netlist::new(title);

    for (line_no, card) in cards {
        let lower = card.to_ascii_lowercase();
        if lower.starts_with(".end") {
            break;
        }
        if lower.starts_with('.') {
            // Analysis/control cards are accepted and ignored.
            continue;
        }
        if lower.starts_with('*') {
            continue;
        }
        let element = parse_card(&card, line_no, &mut netlist)?;
        netlist.add(element)?;
    }
    Ok(netlist)
}

fn strip_comment(line: &str) -> &str {
    // Full-line comments start with '*'; inline comments with ';'.
    let trimmed = line.trim_start();
    if trimmed.starts_with('*') {
        return "";
    }
    match line.find(';') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_card(card: &str, line: usize, netlist: &mut Netlist) -> Result<Element, NetlistError> {
    let tokens: Vec<&str> = card.split_whitespace().collect();
    let err = |message: String| NetlistError::Parse { line, message };
    let name = tokens[0];
    let prefix = name
        .chars()
        .next()
        .ok_or_else(|| err("empty element name".into()))?
        .to_ascii_uppercase();

    let value_of = |token: &str| -> Result<f64, NetlistError> {
        parse_value(token).map_err(|e| err(e.to_string()))
    };

    // Split tokens after the nodes into positional values and KEY=VALUE pairs.
    let parse_kv = |tokens: &[&str]| -> Result<(Vec<f64>, HashMap<String, f64>), NetlistError> {
        let mut positional = Vec::new();
        let mut named = HashMap::new();
        for t in tokens {
            if let Some((k, v)) = t.split_once('=') {
                named.insert(k.to_ascii_uppercase(), value_of(v)?);
            } else if t.eq_ignore_ascii_case("set")
                || t.eq_ignore_ascii_case("nmos")
                || t.eq_ignore_ascii_case("pmos")
            {
                // Model keywords handled by the caller.
                named.insert(t.to_ascii_uppercase(), 1.0);
            } else {
                positional.push(value_of(t)?);
            }
        }
        Ok((positional, named))
    };

    match prefix {
        'R' | 'C' | 'V' | 'I' => {
            if tokens.len() < 4 {
                return Err(err(format!(
                    "`{name}` needs two nodes and a value, got `{card}`"
                )));
            }
            let a = netlist.node(tokens[1]);
            let b = netlist.node(tokens[2]);
            let value = value_of(tokens[3])?;
            let kind = match prefix {
                'R' => ElementKind::Resistor { resistance: value },
                'C' => ElementKind::Capacitor { capacitance: value },
                'V' => ElementKind::VoltageSource { voltage: value },
                _ => ElementKind::CurrentSource { current: value },
            };
            Element::new(name, vec![a, b], kind)
        }
        'J' => {
            if tokens.len() < 4 {
                return Err(err(format!(
                    "`{name}` needs two nodes and C=/R= parameters, got `{card}`"
                )));
            }
            let a = netlist.node(tokens[1]);
            let b = netlist.node(tokens[2]);
            let (positional, named) = parse_kv(&tokens[3..])?;
            let capacitance = named
                .get("C")
                .copied()
                .or_else(|| positional.first().copied())
                .ok_or_else(|| err(format!("`{name}` is missing its capacitance (C=)")))?;
            let resistance = named
                .get("R")
                .copied()
                .or_else(|| positional.get(1).copied())
                .ok_or_else(|| err(format!("`{name}` is missing its tunnel resistance (R=)")))?;
            Element::new(
                name,
                vec![a, b],
                ElementKind::TunnelJunction {
                    capacitance,
                    resistance,
                },
            )
        }
        'D' => {
            if tokens.len() < 3 {
                return Err(err(format!("`{name}` needs two nodes, got `{card}`")));
            }
            let a = netlist.node(tokens[1]);
            let b = netlist.node(tokens[2]);
            let (_, named) = parse_kv(&tokens[3..])?;
            Element::new(
                name,
                vec![a, b],
                ElementKind::Diode {
                    saturation_current: named.get("IS").copied().unwrap_or(1e-14),
                    ideality: named.get("N").copied().unwrap_or(1.0),
                },
            )
        }
        'M' => {
            if tokens.len() < 4 {
                return Err(err(format!(
                    "`{name}` needs drain, gate and source nodes, got `{card}`"
                )));
            }
            let d = netlist.node(tokens[1]);
            let g = netlist.node(tokens[2]);
            let s = netlist.node(tokens[3]);
            let (_, named) = parse_kv(&tokens[4..])?;
            let mut params = if named.contains_key("PMOS") {
                MosfetParams::pmos_180nm()
            } else {
                MosfetParams::nmos_180nm()
            };
            if let Some(&vth) = named.get("VTH") {
                params.vth = vth;
            }
            if let Some(&kp) = named.get("KP") {
                params.kp = kp;
            }
            if let Some(&lambda) = named.get("LAMBDA") {
                params.lambda = lambda;
            }
            if named.contains_key("PMOS") {
                params.polarity = MosfetType::Pmos;
            }
            Element::new(name, vec![d, g, s], ElementKind::Mosfet { params })
        }
        'X' => {
            if tokens.len() < 5 {
                return Err(err(format!(
                    "`{name}` needs drain, gate, source nodes and the SET keyword, got `{card}`"
                )));
            }
            let d = netlist.node(tokens[1]);
            let g = netlist.node(tokens[2]);
            let s = netlist.node(tokens[3]);
            let (_, named) = parse_kv(&tokens[4..])?;
            if !named.contains_key("SET") {
                return Err(err(format!(
                    "`{name}`: only the SET subcircuit model is supported"
                )));
            }
            let mut params = SetParams::default();
            if let Some(&v) = named.get("CG") {
                params.c_gate = v;
            }
            if let Some(&v) = named.get("CS") {
                params.c_source = v;
            }
            if let Some(&v) = named.get("CD") {
                params.c_drain = v;
            }
            if let Some(&v) = named.get("RS") {
                params.r_source = v;
            }
            if let Some(&v) = named.get("RD") {
                params.r_drain = v;
            }
            if let Some(&v) = named.get("Q0") {
                params.background_charge = v;
            }
            Element::new(name, vec![d, g, s], ElementKind::SetTransistor { params })
        }
        other => Err(err(format!("unknown device prefix `{other}` in `{card}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    const SINGLE_SET_DECK: &str = r"single SET with gate bias
* drain and gate sources
VD drain 0 1m
VG gate 0 0
J1 drain island C=1a R=100k
J2 island 0 C=1a R=100k
CG gate island 0.5a
.end
";

    #[test]
    fn parses_the_single_set_deck() {
        let netlist = parse_deck(SINGLE_SET_DECK).unwrap();
        assert_eq!(netlist.title(), "single SET with gate bias");
        assert_eq!(netlist.len(), 5);
        assert!(netlist.validate().is_ok());
        let islands = netlist.find_islands();
        assert_eq!(islands.len(), 1);
        match netlist.element("J1").unwrap().kind() {
            ElementKind::TunnelJunction {
                capacitance,
                resistance,
            } => {
                assert!((capacitance - 1e-18).abs() < 1e-30);
                assert!((resistance - 1e5).abs() < 1e-6);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn continuation_lines_are_joined() {
        let deck = "title\nJ1 a 0\n+ C=1a\n+ R=50k\nV1 a 0 1m\n";
        let netlist = parse_deck(deck).unwrap();
        match netlist.element("J1").unwrap().kind() {
            ElementKind::TunnelJunction { resistance, .. } => {
                assert!((resistance - 5e4).abs() < 1e-6);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let deck = "title\n\n* a comment\nR1 a 0 1k ; trailing comment\nV1 a 0 1\n";
        let netlist = parse_deck(deck).unwrap();
        assert_eq!(netlist.len(), 2);
    }

    #[test]
    fn mosfet_and_set_cards_parse_parameters() {
        let deck = "hybrid cell\nVDD vdd 0 1.8\nM1 vdd in out NMOS VTH=0.4 KP=200u LAMBDA=0.05\nX1 out in 0 SET CG=2a CS=0.5a CD=0.5a RS=200k RD=200k Q0=0.1\nV2 in 0 0.9\nR1 out 0 1meg\n";
        let netlist = parse_deck(deck).unwrap();
        match netlist.element("M1").unwrap().kind() {
            ElementKind::Mosfet { params } => {
                assert!((params.vth - 0.4).abs() < 1e-12);
                assert!((params.kp - 200e-6).abs() < 1e-12);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        match netlist.element("X1").unwrap().kind() {
            ElementKind::SetTransistor { params } => {
                assert!((params.c_gate - 2e-18).abs() < 1e-30);
                assert!((params.background_charge - 0.1).abs() < 1e-12);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn diode_defaults_apply() {
        let deck = "d\nD1 a 0\nV1 a 0 0.7\n";
        let netlist = parse_deck(deck).unwrap();
        match netlist.element("D1").unwrap().kind() {
            ElementKind::Diode {
                saturation_current,
                ideality,
            } => {
                assert!((saturation_current - 1e-14).abs() < 1e-26);
                assert!((ideality - 1.0).abs() < 1e-12);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_is_reported_with_line_number() {
        let deck = "title\nQ1 a b c 1k\n";
        let err = parse_deck(deck).unwrap_err();
        match err {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("unknown device prefix"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_junction_parameters_are_reported() {
        let deck = "title\nJ1 a 0 C=1a\n";
        let err = parse_deck(deck).unwrap_err();
        assert!(err.to_string().contains("tunnel resistance"));
    }

    #[test]
    fn empty_deck_is_an_error() {
        assert!(parse_deck("").is_err());
        assert!(parse_deck("\n\n* only comments\n").is_err());
    }

    #[test]
    fn orphan_continuation_is_an_error() {
        let err = parse_deck("+ R=1k\n").unwrap_err();
        assert!(err.to_string().contains("continuation"));
    }

    #[test]
    fn dot_directives_are_ignored() {
        let deck = "title\nV1 a 0 1\nR1 a 0 1k\n.tran 1n 1u\n.end\nR2 a 0 1k\n";
        let netlist = parse_deck(deck).unwrap();
        // .end stops parsing, so R2 is not included.
        assert_eq!(netlist.len(), 2);
    }

    #[test]
    fn ground_aliases_in_decks() {
        let deck = "title\nV1 a gnd 1\nR1 a GND 1k\n";
        let netlist = parse_deck(deck).unwrap();
        let ground_connected = netlist
            .elements()
            .iter()
            .all(|e| e.nodes().contains(&Node::GROUND));
        assert!(ground_connected);
    }
}
