//! Island extraction: finding the single-electron domain of a netlist.
//!
//! The Monte-Carlo engine only needs to track charge on nodes whose potential
//! is *not* fixed by a voltage source and which are coupled to the rest of
//! the circuit purely capacitively (through capacitors and tunnel junctions).
//! Those nodes are the *islands* of orthodox theory. The co-simulator in
//! `se-hybrid` additionally needs to know which source-driven or
//! resistively-driven nodes each island group touches — its *boundary* —
//! because those are the nodes whose voltages the SPICE half of the
//! co-simulation supplies.

use crate::netlist::Netlist;
use crate::node::Node;
use std::collections::{HashMap, HashSet};

/// A group of charge-storing island nodes together with the boundary nodes
/// (source-driven or non-capacitively connected nodes) they couple to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Island {
    /// Island nodes: free nodes connected only through capacitive elements.
    pub nodes: Vec<Node>,
    /// Boundary nodes: driven nodes this island couples to capacitively.
    pub boundary: Vec<Node>,
    /// Names of the tunnel junctions belonging to this island group.
    pub junctions: Vec<String>,
}

impl Island {
    /// Returns `true` if `node` belongs to this island group.
    #[must_use]
    pub fn contains(&self, node: Node) -> bool {
        self.nodes.contains(&node)
    }
}

/// Finds all islands in the netlist.
///
/// A node is an *island candidate* if it is not ground, not a terminal of a
/// voltage source, and every element touching it is capacitive (capacitor or
/// tunnel junction). Candidates are grouped into islands by connectivity
/// through capacitive elements; groups that contain at least one tunnel
/// junction are returned (a purely capacitive floating node is not a
/// single-electron island — it cannot change its charge).
#[must_use]
pub fn find_islands(netlist: &Netlist) -> Vec<Island> {
    let driven = netlist.source_driven_nodes();

    // Which nodes touch a non-capacitive element?
    let mut touches_conductive: HashSet<Node> = HashSet::new();
    for element in netlist.elements() {
        let conductive = !element.is_capacitive();
        if conductive {
            for &n in element.nodes() {
                touches_conductive.insert(n);
            }
        }
    }

    // Island candidates.
    let candidates: HashSet<Node> = netlist
        .nodes()
        .iter()
        .filter(|n| !driven.contains(n) && !touches_conductive.contains(n))
        .collect();

    // Union-find over candidates, connected through capacitive elements.
    let mut parent: HashMap<Node, Node> = candidates.iter().map(|&n| (n, n)).collect();

    fn find(parent: &mut HashMap<Node, Node>, mut x: Node) -> Node {
        while parent[&x] != x {
            let grand = parent[&parent[&x]];
            parent.insert(x, grand);
            x = grand;
        }
        x
    }

    for element in netlist.elements() {
        if !element.is_capacitive() {
            continue;
        }
        let ns = element.nodes();
        if ns.len() == 2 && candidates.contains(&ns[0]) && candidates.contains(&ns[1]) {
            let ra = find(&mut parent, ns[0]);
            let rb = find(&mut parent, ns[1]);
            if ra != rb {
                parent.insert(ra, rb);
            }
        }
    }

    // Group nodes by root.
    let mut groups: HashMap<Node, Vec<Node>> = HashMap::new();
    let roots: Vec<(Node, Node)> = candidates
        .iter()
        .map(|&n| (n, find(&mut parent, n)))
        .collect();
    for (node, root) in roots {
        groups.entry(root).or_default().push(node);
    }

    // Attach boundaries and junctions.
    let mut islands = Vec::new();
    for (_, mut nodes) in groups {
        nodes.sort();
        let node_set: HashSet<Node> = nodes.iter().copied().collect();
        let mut boundary: HashSet<Node> = HashSet::new();
        let mut junctions = Vec::new();
        let mut has_junction = false;
        for element in netlist.elements() {
            if !element.is_capacitive() {
                continue;
            }
            let ns = element.nodes();
            let touches_island = ns.iter().any(|n| node_set.contains(n));
            if !touches_island {
                continue;
            }
            if element.is_tunnel_junction() {
                has_junction = true;
                junctions.push(element.name().to_string());
            }
            for &n in ns {
                if !node_set.contains(&n) {
                    boundary.insert(n);
                }
            }
        }
        if !has_junction {
            continue;
        }
        let mut boundary: Vec<Node> = boundary.into_iter().collect();
        boundary.sort();
        junctions.sort();
        islands.push(Island {
            nodes,
            boundary,
            junctions,
        });
    }
    islands.sort_by(|a, b| a.nodes.cmp(&b.nodes));
    islands
}

/// Classifies every element of the netlist as belonging to the
/// single-electron (Monte-Carlo) domain or the conventional (SPICE) domain.
///
/// An element belongs to the Monte-Carlo domain if it is capacitive and at
/// least one of its terminals is an island node. Everything else — sources,
/// resistors, MOSFETs, diodes, compact SET models and capacitors strictly
/// between driven nodes — belongs to the SPICE domain.
#[must_use]
pub fn classify_elements(netlist: &Netlist) -> DomainSplit {
    let islands = find_islands(netlist);
    let island_nodes: HashSet<Node> = islands
        .iter()
        .flat_map(|island| island.nodes.iter().copied())
        .collect();

    let mut monte_carlo = Vec::new();
    let mut spice = Vec::new();
    for element in netlist.elements() {
        let touches_island = element.nodes().iter().any(|n| island_nodes.contains(n));
        if element.is_capacitive() && touches_island {
            monte_carlo.push(element.name().to_string());
        } else {
            spice.push(element.name().to_string());
        }
    }
    DomainSplit {
        islands,
        monte_carlo,
        spice,
    }
}

/// Result of [`classify_elements`]: the island list plus element names per
/// simulation domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSplit {
    /// Island groups found in the netlist.
    pub islands: Vec<Island>,
    /// Elements to be simulated by the Monte-Carlo engine.
    pub monte_carlo: Vec<String>,
    /// Elements to be simulated by the SPICE engine.
    pub spice: Vec<String>,
}

/// One conventional element bridging the single-electron domain at a named
/// boundary node — the structural reason a deck needs the hybrid
/// co-simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridBridge {
    /// Name of the boundary node.
    pub node: String,
    /// Conventional (non-source, non-capacitive) elements touching it.
    pub elements: Vec<String>,
}

/// A named, human-readable view of [`classify_elements`]: which engine
/// family a netlist belongs to, and — for mixed netlists — exactly which
/// nodes and elements force the hybrid path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionReport {
    /// The underlying element classification.
    pub split: DomainSplit,
    /// Names of all island nodes.
    pub island_nodes: Vec<String>,
    /// Conventional elements: SPICE-domain elements that are neither
    /// voltage sources nor purely capacitive. Empty for a pure
    /// single-electron netlist.
    pub conventional_elements: Vec<String>,
    /// Boundary nodes where conventional elements meet the single-electron
    /// domain, with the elements that touch each.
    pub bridges: Vec<HybridBridge>,
}

impl PartitionReport {
    /// Returns `true` if the netlist has at least one single-electron
    /// island.
    #[must_use]
    pub fn has_islands(&self) -> bool {
        !self.split.islands.is_empty()
    }

    /// Returns `true` if the netlist is purely single-electron: islands
    /// exist and every other element is a voltage source or a capacitor —
    /// i.e. the whole netlist lowers onto one `TunnelSystem`.
    #[must_use]
    pub fn is_pure_single_electron(&self) -> bool {
        self.has_islands() && self.conventional_elements.is_empty()
    }

    /// Returns `true` if the netlist is purely conventional (no islands).
    #[must_use]
    pub fn is_pure_conventional(&self) -> bool {
        !self.has_islands()
    }

    /// Returns `true` if the netlist mixes both domains and therefore needs
    /// the hybrid co-simulator.
    #[must_use]
    pub fn is_mixed(&self) -> bool {
        self.has_islands() && !self.conventional_elements.is_empty()
    }

    /// Human-readable reasons a mixed netlist needs the hybrid path, naming
    /// the boundary nodes and the conventional elements behind each. Empty
    /// unless [`PartitionReport::is_mixed`].
    #[must_use]
    pub fn hybrid_reasons(&self) -> Vec<String> {
        if !self.is_mixed() {
            return Vec::new();
        }
        let mut reasons: Vec<String> = self
            .bridges
            .iter()
            .map(|bridge| {
                format!(
                    "boundary node `{}` couples the island domain to conventional element{} {}",
                    bridge.node,
                    if bridge.elements.len() == 1 { "" } else { "s" },
                    bridge
                        .elements
                        .iter()
                        .map(|e| format!("`{e}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
            .collect();
        let bridged: HashSet<&String> = self
            .bridges
            .iter()
            .flat_map(|b| b.elements.iter())
            .collect();
        for element in &self.conventional_elements {
            if !bridged.contains(element) {
                reasons.push(format!(
                    "conventional element `{element}` requires the SPICE domain"
                ));
            }
        }
        reasons
    }
}

/// Builds the [`PartitionReport`] of a netlist: the domain split plus the
/// named nodes and elements that determine engine selection.
#[must_use]
pub fn partition_report(netlist: &Netlist) -> PartitionReport {
    let split = classify_elements(netlist);
    let name_of = |node: Node| -> String {
        if node.is_ground() {
            "0".to_string()
        } else {
            netlist.node_name(node).unwrap_or("?").to_string()
        }
    };
    let mut island_nodes: Vec<String> = split
        .islands
        .iter()
        .flat_map(|island| island.nodes.iter().map(|&n| name_of(n)))
        .collect();
    island_nodes.sort();

    let conventional_elements: Vec<String> = split
        .spice
        .iter()
        .filter(|name| {
            netlist
                .element(name)
                .is_some_and(|element| !element.is_voltage_source() && !element.is_capacitive())
        })
        .cloned()
        .collect();
    let conventional_set: HashSet<&str> =
        conventional_elements.iter().map(String::as_str).collect();

    let mut bridges = Vec::new();
    let mut seen_nodes: HashSet<Node> = HashSet::new();
    for island in &split.islands {
        for &node in &island.boundary {
            if node.is_ground() || !seen_nodes.insert(node) {
                continue;
            }
            let mut elements: Vec<String> = netlist
                .elements()
                .iter()
                .filter(|e| conventional_set.contains(e.name()) && e.nodes().contains(&node))
                .map(|e| e.name().to_string())
                .collect();
            if elements.is_empty() {
                continue;
            }
            elements.sort();
            bridges.push(HybridBridge {
                node: name_of(node),
                elements,
            });
        }
    }
    bridges.sort_by(|a, b| a.node.cmp(&b.node));

    PartitionReport {
        split,
        island_nodes,
        conventional_elements,
        bridges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    fn double_dot() -> Netlist {
        // source - J1 - island1 - J2 - island2 - J3 - ground, gates on both.
        let mut n = Netlist::new("double dot");
        let s = n.node("s");
        let i1 = n.node("i1");
        let i2 = n.node("i2");
        let g1 = n.node("g1");
        let g2 = n.node("g2");
        n.add(Element::voltage_source("VS", s, Node::GROUND, 1e-3))
            .unwrap();
        n.add(Element::voltage_source("VG1", g1, Node::GROUND, 0.1))
            .unwrap();
        n.add(Element::voltage_source("VG2", g2, Node::GROUND, 0.2))
            .unwrap();
        n.add(Element::tunnel_junction("J1", s, i1, 1e-18, 1e5))
            .unwrap();
        n.add(Element::tunnel_junction("J2", i1, i2, 1e-18, 1e5))
            .unwrap();
        n.add(Element::tunnel_junction("J3", i2, Node::GROUND, 1e-18, 1e5))
            .unwrap();
        n.add(Element::capacitor("CG1", g1, i1, 0.5e-18)).unwrap();
        n.add(Element::capacitor("CG2", g2, i2, 0.5e-18)).unwrap();
        n
    }

    #[test]
    fn single_set_has_one_island_with_one_node() {
        let mut n = Netlist::new("set");
        let d = n.node("d");
        let i = n.node("i");
        let g = n.node("g");
        n.add(Element::voltage_source("VD", d, Node::GROUND, 1e-3))
            .unwrap();
        n.add(Element::voltage_source("VG", g, Node::GROUND, 0.0))
            .unwrap();
        n.add(Element::tunnel_junction("J1", d, i, 1e-18, 1e5))
            .unwrap();
        n.add(Element::tunnel_junction("J2", i, Node::GROUND, 1e-18, 1e5))
            .unwrap();
        n.add(Element::capacitor("CG", g, i, 0.5e-18)).unwrap();

        let islands = find_islands(&n);
        assert_eq!(islands.len(), 1);
        assert_eq!(islands[0].nodes, vec![i]);
        assert_eq!(
            islands[0].junctions,
            vec!["J1".to_string(), "J2".to_string()]
        );
        assert!(islands[0].boundary.contains(&d));
        assert!(islands[0].boundary.contains(&g));
        assert!(islands[0].boundary.contains(&Node::GROUND));
    }

    #[test]
    fn coupled_islands_group_together() {
        let n = double_dot();
        let islands = find_islands(&n);
        assert_eq!(islands.len(), 1, "J2 couples the two dots into one group");
        assert_eq!(islands[0].nodes.len(), 2);
        assert_eq!(islands[0].junctions.len(), 3);
    }

    #[test]
    fn nodes_touching_resistors_are_not_islands() {
        let mut n = Netlist::new("leaky");
        let a = n.node("a");
        n.add(Element::voltage_source(
            "V1",
            n.find_node("a").unwrap(),
            Node::GROUND,
            1.0,
        ))
        .ok();
        let b = n.node("b");
        n.add(Element::tunnel_junction("J1", a, b, 1e-18, 1e5))
            .unwrap();
        // The resistor makes `b` a conventional node.
        n.add(Element::resistor("R1", b, Node::GROUND, 1e6))
            .unwrap();
        assert!(find_islands(&n).is_empty());
    }

    #[test]
    fn purely_capacitive_floating_node_is_not_an_island() {
        let mut n = Netlist::new("float");
        let a = n.node("a");
        let f = n.node("f");
        n.add(Element::voltage_source("V1", a, Node::GROUND, 1.0))
            .unwrap();
        n.add(Element::capacitor("C1", a, f, 1e-18)).unwrap();
        n.add(Element::capacitor("C2", f, Node::GROUND, 1e-18))
            .unwrap();
        assert!(find_islands(&n).is_empty());
    }

    #[test]
    fn classification_splits_domains() {
        let mut n = double_dot();
        // Add a MOSFET load on the source side: it belongs to the SPICE domain.
        let s = n.find_node("s").unwrap();
        let vdd = n.node("vdd");
        n.add(Element::voltage_source("VDD", vdd, Node::GROUND, 1.8))
            .unwrap();
        n.add(Element::mosfet(
            "M1",
            vdd,
            s,
            Node::GROUND,
            crate::element::MosfetParams::default(),
        ))
        .unwrap();

        let split = classify_elements(&n);
        assert_eq!(split.islands.len(), 1);
        assert!(split.monte_carlo.contains(&"J1".to_string()));
        assert!(split.monte_carlo.contains(&"CG1".to_string()));
        assert!(split.spice.contains(&"M1".to_string()));
        assert!(split.spice.contains(&"VS".to_string()));
        // Every element lands in exactly one domain.
        assert_eq!(split.monte_carlo.len() + split.spice.len(), n.len());
    }

    #[test]
    fn empty_netlist_has_no_islands() {
        let n = Netlist::new("empty");
        assert!(find_islands(&n).is_empty());
    }

    #[test]
    fn pure_single_electron_netlists_are_reported_as_such() {
        let report = partition_report(&double_dot());
        assert!(report.is_pure_single_electron());
        assert!(!report.is_mixed());
        assert!(!report.is_pure_conventional());
        assert_eq!(
            report.island_nodes,
            vec!["i1".to_string(), "i2".to_string()]
        );
        assert!(report.conventional_elements.is_empty());
        assert!(report.hybrid_reasons().is_empty());
    }

    #[test]
    fn pure_conventional_netlists_have_no_islands() {
        let mut n = Netlist::new("rc");
        let a = n.node("a");
        let b = n.node("b");
        n.add(Element::voltage_source("V1", a, Node::GROUND, 1.0))
            .unwrap();
        n.add(Element::resistor("R1", a, b, 1e3)).unwrap();
        n.add(Element::resistor("R2", b, Node::GROUND, 1e3))
            .unwrap();
        let report = partition_report(&n);
        assert!(report.is_pure_conventional());
        assert!(!report.has_islands());
        assert!(report.hybrid_reasons().is_empty());
    }

    #[test]
    fn mixed_netlists_name_the_bridge_nodes_and_elements() {
        // A SET whose drain is fed through a load resistor: `drain` is the
        // bridge node, `RL` the conventional element behind it.
        let mut n = Netlist::new("hybrid");
        let vdd = n.node("vdd");
        let drain = n.node("drain");
        let island = n.node("island");
        let gate = n.node("gate");
        n.add(Element::voltage_source("VDD", vdd, Node::GROUND, 5e-3))
            .unwrap();
        n.add(Element::voltage_source("VG", gate, Node::GROUND, 0.08))
            .unwrap();
        n.add(Element::resistor("RL", vdd, drain, 10e6)).unwrap();
        n.add(Element::tunnel_junction("J1", drain, island, 0.5e-18, 1e5))
            .unwrap();
        n.add(Element::tunnel_junction(
            "J2",
            island,
            Node::GROUND,
            0.5e-18,
            1e5,
        ))
        .unwrap();
        n.add(Element::capacitor("CG", gate, island, 1e-18))
            .unwrap();

        let report = partition_report(&n);
        assert!(report.is_mixed());
        assert_eq!(report.conventional_elements, vec!["RL".to_string()]);
        assert_eq!(report.bridges.len(), 1);
        assert_eq!(report.bridges[0].node, "drain");
        assert_eq!(report.bridges[0].elements, vec!["RL".to_string()]);
        let reasons = report.hybrid_reasons();
        assert_eq!(reasons.len(), 1);
        assert!(reasons[0].contains("`drain`"), "{reasons:?}");
        assert!(reasons[0].contains("`RL`"), "{reasons:?}");
    }

    #[test]
    fn off_boundary_conventional_elements_are_still_reported() {
        // The MOSFET hangs off the source side, not directly on an island
        // boundary — the report must still name it as a hybrid reason.
        let mut n = double_dot();
        let vdd = n.node("vdd");
        let mid = n.node("mid");
        n.add(Element::voltage_source("VDD", vdd, Node::GROUND, 1.8))
            .unwrap();
        n.add(Element::mosfet(
            "M1",
            vdd,
            mid,
            Node::GROUND,
            crate::element::MosfetParams::default(),
        ))
        .unwrap();
        n.add(Element::resistor("RB", mid, Node::GROUND, 1e6))
            .unwrap();
        let report = partition_report(&n);
        assert!(report.is_mixed());
        let reasons = report.hybrid_reasons();
        assert!(
            reasons.iter().any(|r| r.contains("`M1`")),
            "off-boundary element must be named: {reasons:?}"
        );
    }
}
