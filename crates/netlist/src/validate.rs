//! Structural validation of netlists.
//!
//! These checks catch the classic deck mistakes before a simulator produces
//! a singular matrix or silently wrong physics: empty netlists, elements
//! shorted onto a single node, nodes with only one connection, voltage-source
//! loops, and island nodes with no gate coupling (which would make the
//! Monte-Carlo electrostatics singular).

use crate::element::ElementKind;
use crate::error::NetlistError;
use crate::netlist::Netlist;
use crate::node::Node;
use std::collections::HashMap;

/// Runs all structural checks on the netlist.
///
/// # Errors
///
/// Returns [`NetlistError::Empty`] for an element-free netlist and
/// [`NetlistError::Validation`] describing the first structural problem
/// found otherwise.
pub fn validate(netlist: &Netlist) -> Result<(), NetlistError> {
    if netlist.is_empty() {
        return Err(NetlistError::Empty);
    }
    check_self_loops(netlist)?;
    check_connection_counts(netlist)?;
    check_ground_reference(netlist)?;
    check_voltage_source_loops(netlist)?;
    Ok(())
}

fn check_self_loops(netlist: &Netlist) -> Result<(), NetlistError> {
    for element in netlist.elements() {
        let nodes = element.nodes();
        if nodes.len() == 2 && nodes[0] == nodes[1] {
            return Err(NetlistError::Validation {
                message: format!(
                    "element `{}` connects node {} to itself",
                    element.name(),
                    nodes[0]
                ),
            });
        }
    }
    Ok(())
}

fn check_connection_counts(netlist: &Netlist) -> Result<(), NetlistError> {
    let mut degree: HashMap<Node, usize> = HashMap::new();
    for element in netlist.elements() {
        for &n in element.nodes() {
            *degree.entry(n).or_insert(0) += 1;
        }
    }
    for node in netlist.nodes().iter() {
        match degree.get(&node) {
            None => {
                return Err(NetlistError::Validation {
                    message: format!(
                        "node `{}` is declared but not connected to any element",
                        netlist.node_name(node).unwrap_or("?")
                    ),
                });
            }
            Some(1) => {
                // A single connection is fine only for a source terminal
                // (open-circuited probe sources are common); anything else is
                // a dangling element.
                let lonely_ok = netlist.elements().iter().any(|e| {
                    e.nodes().contains(&node)
                        && matches!(
                            e.kind(),
                            ElementKind::VoltageSource { .. } | ElementKind::CurrentSource { .. }
                        )
                });
                if !lonely_ok {
                    return Err(NetlistError::Validation {
                        message: format!(
                            "node `{}` has only one connection; the circuit is dangling there",
                            netlist.node_name(node).unwrap_or("?")
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn check_ground_reference(netlist: &Netlist) -> Result<(), NetlistError> {
    let touches_ground = netlist
        .elements()
        .iter()
        .any(|e| e.nodes().contains(&Node::GROUND));
    if !touches_ground {
        return Err(NetlistError::Validation {
            message: "no element is connected to ground (node 0); the circuit has no reference"
                .into(),
        });
    }
    Ok(())
}

fn check_voltage_source_loops(netlist: &Netlist) -> Result<(), NetlistError> {
    // A loop consisting purely of voltage sources over-determines the node
    // voltages. Detect it with a union-find over source terminals: adding a
    // source whose terminals are already connected through sources closes a
    // loop.
    let mut parent: HashMap<Node, Node> = HashMap::new();
    fn find(parent: &mut HashMap<Node, Node>, x: Node) -> Node {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }
    for element in netlist.voltage_sources() {
        let nodes = element.nodes();
        let (a, b) = (nodes[0], nodes[1]);
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra == rb {
            return Err(NetlistError::Validation {
                message: format!(
                    "voltage source `{}` closes a loop of voltage sources",
                    element.name()
                ),
            });
        }
        parent.insert(ra, rb);
    }
    Ok(())
}

/// Returns the set of nodes that belong to a single-electron island but have
/// no capacitive coupling to any driven node — these make the island
/// electrostatics ill-conditioned and usually indicate a missing gate
/// capacitor. This is a *warning-level* check exposed separately because
/// some textbook circuits (e.g. a bare double junction) are legitimately
/// driven only through their junctions.
#[must_use]
pub fn islands_without_gate(netlist: &Netlist) -> Vec<Node> {
    let islands = netlist.find_islands();
    let driven = netlist.source_driven_nodes();
    let mut lonely = Vec::new();
    for island in &islands {
        for &node in &island.nodes {
            let has_gate = netlist.elements().iter().any(|e| {
                matches!(e.kind(), ElementKind::Capacitor { .. })
                    && e.nodes().contains(&node)
                    && e.nodes().iter().any(|n| driven.contains(n))
            });
            if !has_gate {
                lonely.push(node);
            }
        }
    }
    lonely.sort();
    lonely
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    #[test]
    fn empty_netlist_is_rejected() {
        let n = Netlist::new("empty");
        assert!(matches!(n.validate(), Err(NetlistError::Empty)));
    }

    #[test]
    fn valid_set_circuit_passes() {
        let mut n = Netlist::new("set");
        let d = n.node("d");
        let i = n.node("i");
        let g = n.node("g");
        n.add(Element::voltage_source("VD", d, Node::GROUND, 1e-3))
            .unwrap();
        n.add(Element::voltage_source("VG", g, Node::GROUND, 0.0))
            .unwrap();
        n.add(Element::tunnel_junction("J1", d, i, 1e-18, 1e5))
            .unwrap();
        n.add(Element::tunnel_junction("J2", i, Node::GROUND, 1e-18, 1e5))
            .unwrap();
        n.add(Element::capacitor("CG", g, i, 0.5e-18)).unwrap();
        assert!(n.validate().is_ok());
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut n = Netlist::new("loop");
        let a = n.node("a");
        n.add(Element::resistor("R1", a, a, 1e3)).unwrap();
        n.add(Element::voltage_source("V1", a, Node::GROUND, 1.0))
            .unwrap();
        let err = n.validate().unwrap_err();
        assert!(err.to_string().contains("itself"));
    }

    #[test]
    fn dangling_node_is_rejected() {
        let mut n = Netlist::new("dangling");
        let a = n.node("a");
        let b = n.node("b");
        n.add(Element::voltage_source("V1", a, Node::GROUND, 1.0))
            .unwrap();
        n.add(Element::resistor("R1", a, b, 1e3)).unwrap();
        // `b` has a single connection through a resistor: dangling.
        let err = n.validate().unwrap_err();
        assert!(err.to_string().contains("one connection"));
    }

    #[test]
    fn missing_ground_is_rejected() {
        let mut n = Netlist::new("no ground");
        let a = n.node("a");
        let b = n.node("b");
        n.add(Element::voltage_source("V1", a, b, 1.0)).unwrap();
        n.add(Element::resistor("R1", a, b, 1e3)).unwrap();
        let err = n.validate().unwrap_err();
        assert!(err.to_string().contains("ground"));
    }

    #[test]
    fn voltage_source_loop_is_rejected() {
        let mut n = Netlist::new("vloop");
        let a = n.node("a");
        n.add(Element::voltage_source("V1", a, Node::GROUND, 1.0))
            .unwrap();
        n.add(Element::voltage_source("V2", a, Node::GROUND, 2.0))
            .unwrap();
        n.add(Element::resistor("R1", a, Node::GROUND, 1e3))
            .unwrap();
        let err = n.validate().unwrap_err();
        assert!(err.to_string().contains("loop of voltage sources"));
    }

    #[test]
    fn island_without_gate_is_flagged_but_not_fatal() {
        // Bare double junction: island driven only through its junctions.
        let mut n = Netlist::new("double junction");
        let top = n.node("top");
        let mid = n.node("mid");
        n.add(Element::voltage_source("V1", top, Node::GROUND, 1e-3))
            .unwrap();
        n.add(Element::tunnel_junction("J1", top, mid, 1e-18, 1e5))
            .unwrap();
        n.add(Element::tunnel_junction(
            "J2",
            mid,
            Node::GROUND,
            1e-18,
            1e5,
        ))
        .unwrap();
        assert!(n.validate().is_ok());
        let lonely = islands_without_gate(&n);
        assert_eq!(lonely, vec![mid]);
    }
}
