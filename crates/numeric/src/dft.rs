//! Discrete Fourier transform and single-frequency (Goertzel-style) power
//! estimation.
//!
//! The FM-coded, background-charge-independent logic in `se-logic` decides a
//! logic state by looking at the *frequency content* of a SET output signal
//! over several oscillation periods. A plain `O(n²)` DFT (and an `O(n)`
//! single-bin Goertzel evaluation) is entirely sufficient for the record
//! lengths involved (hundreds to a few thousand samples).

use crate::error::NumericError;

/// One complex DFT coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Magnitude `sqrt(re² + im²)`.
    #[must_use]
    pub fn magnitude(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[must_use]
    pub fn power(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians.
    #[must_use]
    pub fn phase(self) -> f64 {
        self.im.atan2(self.re)
    }
}

/// Computes the full DFT of a real signal.
///
/// Coefficient `k` corresponds to frequency `k / (n·dt)` when the samples are
/// spaced `dt` apart.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] for an empty signal.
pub fn dft(signal: &[f64]) -> Result<Vec<Complex>, NumericError> {
    if signal.is_empty() {
        return Err(NumericError::InvalidArgument(
            "cannot transform an empty signal".into(),
        ));
    }
    let n = signal.len();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::default();
        for (j, &x) in signal.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc.re += x * angle.cos();
            acc.im += x * angle.sin();
        }
        out.push(acc);
    }
    Ok(out)
}

/// Evaluates a single DFT bin at (possibly fractional) normalised frequency
/// `cycles_per_record` using direct correlation — a Goertzel-style
/// single-frequency estimator.
///
/// `cycles_per_record` is the number of full periods of the probe frequency
/// contained in the record; it does not have to be an integer.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] for an empty signal.
pub fn single_bin(signal: &[f64], cycles_per_record: f64) -> Result<Complex, NumericError> {
    if signal.is_empty() {
        return Err(NumericError::InvalidArgument(
            "cannot transform an empty signal".into(),
        ));
    }
    let n = signal.len() as f64;
    let mut acc = Complex::default();
    for (j, &x) in signal.iter().enumerate() {
        let angle = -2.0 * std::f64::consts::PI * cycles_per_record * j as f64 / n;
        acc.re += x * angle.cos();
        acc.im += x * angle.sin();
    }
    Ok(acc)
}

/// Returns the index (excluding DC) of the strongest DFT coefficient of the
/// signal, i.e. the dominant oscillation frequency in cycles per record.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if the signal has fewer than
/// four samples.
pub fn dominant_frequency(signal: &[f64]) -> Result<usize, NumericError> {
    if signal.len() < 4 {
        return Err(NumericError::InvalidArgument(
            "need at least four samples to identify a dominant frequency".into(),
        ));
    }
    let spectrum = dft(signal)?;
    let half = spectrum.len() / 2;
    let mut best = 1;
    let mut best_power = 0.0;
    for (k, c) in spectrum.iter().enumerate().take(half).skip(1) {
        let p = c.power();
        if p > best_power {
            best_power = p;
            best = k;
        }
    }
    Ok(best)
}

/// Total power of a signal computed in the time domain (mean square).
#[must_use]
pub fn signal_power(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    signal.iter().map(|v| v * v).sum::<f64>() / signal.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sine(n: usize, cycles: f64, amplitude: f64, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                amplitude
                    * (2.0 * std::f64::consts::PI * cycles * i as f64 / n as f64 + phase).sin()
            })
            .collect()
    }

    #[test]
    fn dft_of_empty_signal_is_error() {
        assert!(dft(&[]).is_err());
        assert!(single_bin(&[], 1.0).is_err());
    }

    #[test]
    fn dft_of_constant_signal_has_only_dc() {
        let signal = vec![2.0; 32];
        let spectrum = dft(&signal).unwrap();
        assert!((spectrum[0].magnitude() - 64.0).abs() < 1e-9);
        for c in &spectrum[1..] {
            assert!(c.magnitude() < 1e-9);
        }
    }

    #[test]
    fn dft_finds_pure_tone() {
        let signal = sine(64, 5.0, 1.0, 0.0);
        assert_eq!(dominant_frequency(&signal).unwrap(), 5);
    }

    #[test]
    fn single_bin_matches_full_dft_for_integer_bins() {
        let signal = sine(48, 3.0, 0.7, 0.3);
        let full = dft(&signal).unwrap();
        let single = single_bin(&signal, 3.0).unwrap();
        assert!((full[3].re - single.re).abs() < 1e-9);
        assert!((full[3].im - single.im).abs() < 1e-9);
    }

    #[test]
    fn tone_amplitude_recovered_from_bin_magnitude() {
        let n = 128;
        let amp = 0.42;
        let signal = sine(n, 8.0, amp, 0.0);
        let c = single_bin(&signal, 8.0).unwrap();
        // For a real sine, |X_k| = N*A/2.
        let recovered = 2.0 * c.magnitude() / n as f64;
        assert!((recovered - amp).abs() < 1e-9);
    }

    #[test]
    fn phase_shift_moves_coefficient_phase_not_magnitude() {
        let n = 128;
        let a = sine(n, 4.0, 1.0, 0.0);
        let b = sine(n, 4.0, 1.0, 1.1);
        let ca = single_bin(&a, 4.0).unwrap();
        let cb = single_bin(&b, 4.0).unwrap();
        assert!((ca.magnitude() - cb.magnitude()).abs() < 1e-9);
        let mut dphase = (cb.phase() - ca.phase()).abs();
        if dphase > std::f64::consts::PI {
            dphase = 2.0 * std::f64::consts::PI - dphase;
        }
        assert!((dphase - 1.1).abs() < 1e-6);
    }

    #[test]
    fn dominant_frequency_needs_enough_samples() {
        assert!(dominant_frequency(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn signal_power_of_unit_sine_is_half() {
        let signal = sine(1000, 10.0, 1.0, 0.0);
        assert!((signal_power(&signal) - 0.5).abs() < 1e-3);
    }

    proptest! {
        /// Parseval's theorem: time-domain power equals frequency-domain
        /// power (scaled by N²) for any signal.
        #[test]
        fn prop_parseval(signal in proptest::collection::vec(-1.0_f64..1.0, 4..48)) {
            let n = signal.len() as f64;
            let spectrum = dft(&signal).unwrap();
            let freq_power: f64 = spectrum.iter().map(|c| c.power()).sum::<f64>() / (n * n);
            let time_power = signal_power(&signal);
            prop_assert!((freq_power - time_power).abs() < 1e-9);
        }
    }
}
