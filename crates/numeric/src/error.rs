//! Error type shared by the numerical routines.

use std::error::Error;
use std::fmt;

/// Error produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// A matrix had inconsistent or empty dimensions.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was provided.
        found: String,
    },
    /// A matrix was singular (or numerically singular) during factorisation.
    SingularMatrix {
        /// Pivot column at which factorisation broke down.
        pivot: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual or interval width at the point of giving up.
        residual: f64,
    },
    /// An argument was outside of its mathematically valid domain.
    InvalidArgument(String),
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NumericError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumericError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = NumericError::SingularMatrix { pivot: 3 };
        assert!(err.to_string().contains("pivot column 3"));

        let err = NumericError::NoConvergence {
            iterations: 50,
            residual: 1e-3,
        };
        assert!(err.to_string().contains("50 iterations"));

        let err = NumericError::DimensionMismatch {
            expected: "3x3".into(),
            found: "3x2".into(),
        };
        assert!(err.to_string().contains("3x2"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
