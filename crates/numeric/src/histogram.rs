//! Fixed-bin histogram used for charge-state occupation statistics and the
//! randomness analysis of generated bitstreams.

use crate::error::NumericError;

/// A histogram over a fixed range with uniformly sized bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total_weight: f64,
    weights: Vec<f64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `bins == 0` or
    /// `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, NumericError> {
        if bins == 0 {
            return Err(NumericError::InvalidArgument(
                "histogram needs at least one bin".into(),
            ));
        }
        if !(lo < hi) {
            return Err(NumericError::InvalidArgument(format!(
                "histogram range must satisfy lo < hi, got [{lo}, {hi})"
            )));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total_weight: 0.0,
            weights: vec![0.0; bins],
        })
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    #[must_use]
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Adds a sample with unit weight.
    pub fn add(&mut self, value: f64) {
        self.add_weighted(value, 1.0);
    }

    /// Adds a sample with the given weight (e.g. a dwell time).
    pub fn add_weighted(&mut self, value: f64, weight: f64) {
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        if value >= self.hi {
            self.overflow += 1;
            return;
        }
        let idx = ((value - self.lo) / self.bin_width()) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.weights[idx] += weight;
        self.total_weight += weight;
    }

    /// Raw count in bin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.bins()`.
    #[must_use]
    pub fn count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Accumulated weight in bin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.bins()`.
    #[must_use]
    pub fn weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    /// Total number of in-range samples.
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Samples that fell below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or above the upper edge.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Centre of bin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.bins()`.
    #[must_use]
    pub fn bin_center(&self, index: usize) -> f64 {
        assert!(index < self.counts.len(), "bin index out of bounds");
        self.lo + (index as f64 + 0.5) * self.bin_width()
    }

    /// Normalised weight fraction per bin (sums to 1 over in-range weight).
    #[must_use]
    pub fn normalized(&self) -> Vec<f64> {
        if self.total_weight == 0.0 {
            return vec![0.0; self.counts.len()];
        }
        self.weights.iter().map(|w| w / self.total_weight).collect()
    }

    /// Index of the most populated bin, by weight, or `None` if empty.
    #[must_use]
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total_weight == 0.0 {
            return None;
        }
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Chi-squared statistic against a uniform expectation over the bins.
    ///
    /// Used by the randomness battery: for a fair random bitstream split into
    /// value bins the statistic follows a χ² distribution with
    /// `bins - 1` degrees of freedom.
    #[must_use]
    pub fn chi_squared_uniform(&self) -> f64 {
        let total = self.total_count();
        if total == 0 {
            return 0.0;
        }
        let expected = total as f64 / self.counts.len() as f64;
        self.counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn samples_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.5);
        h.add(9.5);
        h.add(5.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.total_count(), 3);
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-0.1);
        h.add(1.0);
        h.add(2.0);
        h.add(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total_count(), 1);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn normalization_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 5).unwrap();
        for i in 0..100 {
            h.add((i as f64) / 100.0);
        }
        let total: f64 = h.normalized().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        h.add(0.5);
        h.add(1.5);
        h.add(1.6);
        h.add(2.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn mode_bin_of_empty_histogram_is_none() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.mode_bin(), None);
    }

    #[test]
    fn chi_squared_of_perfectly_uniform_counts_is_zero() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        for i in 0..4 {
            for _ in 0..25 {
                h.add(i as f64 + 0.5);
            }
        }
        assert!(h.chi_squared_uniform().abs() < 1e-12);
    }

    #[test]
    fn weighted_samples_accumulate_weight() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add_weighted(0.25, 3.0);
        h.add_weighted(0.75, 1.0);
        assert!((h.weight(0) - 3.0).abs() < 1e-12);
        assert!((h.normalized()[0] - 0.75).abs() < 1e-12);
    }

    proptest! {
        /// Every in-range sample is counted exactly once.
        #[test]
        fn prop_no_samples_lost(
            samples in proptest::collection::vec(0.0_f64..1.0, 1..256),
        ) {
            let mut h = Histogram::new(0.0, 1.0, 16).unwrap();
            for &s in &samples {
                h.add(s);
            }
            prop_assert_eq!(
                h.total_count() + h.underflow() + h.overflow(),
                samples.len() as u64
            );
            prop_assert_eq!(h.underflow(), 0);
            prop_assert_eq!(h.overflow(), 0);
        }
    }
}
