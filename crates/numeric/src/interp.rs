//! Piecewise-linear interpolation over tabulated data.
//!
//! Compact-model lookups (tabulated SET characteristics exported from the
//! Monte-Carlo simulator and re-used inside the SPICE solver) go through this
//! module.

use crate::error::NumericError;

/// A monotone table of `(x, y)` samples with linear interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearTable {
    /// Builds a table from `(x, y)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if fewer than two points are
    /// given or the x values are not strictly increasing.
    pub fn new(points: &[(f64, f64)]) -> Result<Self, NumericError> {
        if points.len() < 2 {
            return Err(NumericError::InvalidArgument(
                "interpolation table needs at least two points".into(),
            ));
        }
        for window in points.windows(2) {
            if window[1].0 <= window[0].0 {
                return Err(NumericError::InvalidArgument(format!(
                    "x values must be strictly increasing, got {} then {}",
                    window[0].0, window[1].0
                )));
            }
        }
        Ok(LinearTable {
            xs: points.iter().map(|p| p.0).collect(),
            ys: points.iter().map(|p| p.1).collect(),
        })
    }

    /// Builds a table by sampling `f` at `n` evenly spaced points in
    /// `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `n < 2` or `lo >= hi`.
    pub fn from_function<F>(lo: f64, hi: f64, n: usize, f: F) -> Result<Self, NumericError>
    where
        F: Fn(f64) -> f64,
    {
        if n < 2 {
            return Err(NumericError::InvalidArgument(
                "need at least two sample points".into(),
            ));
        }
        if !(lo < hi) {
            return Err(NumericError::InvalidArgument(format!(
                "sampling range must satisfy lo < hi, got [{lo}, {hi}]"
            )));
        }
        let points: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, f(x))
            })
            .collect();
        LinearTable::new(&points)
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the table is empty (never true for a constructed
    /// table, provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Lower end of the tabulated range.
    #[must_use]
    pub fn x_min(&self) -> f64 {
        self.xs[0]
    }

    /// Upper end of the tabulated range.
    #[must_use]
    pub fn x_max(&self) -> f64 {
        *self.xs.last().expect("table is never empty")
    }

    /// Interpolates at `x`, clamping to the end values outside the range.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.x_min() {
            return self.ys[0];
        }
        if x >= self.x_max() {
            return *self.ys.last().expect("table is never empty");
        }
        // Binary search for the interval containing x.
        let idx = match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("no NaN in table"))
        {
            Ok(exact) => return self.ys[exact],
            Err(insertion) => insertion - 1,
        };
        let x0 = self.xs[idx];
        let x1 = self.xs[idx + 1];
        let t = (x - x0) / (x1 - x0);
        self.ys[idx] * (1.0 - t) + self.ys[idx + 1] * t
    }

    /// Numerical derivative at `x` using the slope of the containing segment.
    #[must_use]
    pub fn derivative(&self, x: f64) -> f64 {
        let idx = if x <= self.x_min() {
            0
        } else if x >= self.x_max() {
            self.xs.len() - 2
        } else {
            match self
                .xs
                .binary_search_by(|probe| probe.partial_cmp(&x).expect("no NaN in table"))
            {
                Ok(exact) => exact.min(self.xs.len() - 2),
                Err(insertion) => insertion - 1,
            }
        };
        (self.ys[idx + 1] - self.ys[idx]) / (self.xs[idx + 1] - self.xs[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_degenerate_tables() {
        assert!(LinearTable::new(&[(0.0, 1.0)]).is_err());
        assert!(LinearTable::new(&[(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(LinearTable::new(&[(1.0, 1.0), (0.0, 2.0)]).is_err());
    }

    #[test]
    fn interpolates_linearly_between_points() {
        let t = LinearTable::new(&[(0.0, 0.0), (1.0, 10.0)]).unwrap();
        assert!((t.eval(0.25) - 2.5).abs() < 1e-12);
        assert!((t.eval(0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_the_range() {
        let t = LinearTable::new(&[(0.0, 1.0), (1.0, 2.0)]).unwrap();
        assert_eq!(t.eval(-5.0), 1.0);
        assert_eq!(t.eval(5.0), 2.0);
    }

    #[test]
    fn hits_exact_sample_points() {
        let t = LinearTable::new(&[(0.0, 1.0), (1.0, 3.0), (2.0, -1.0)]).unwrap();
        assert_eq!(t.eval(1.0), 3.0);
        assert_eq!(t.eval(2.0), -1.0);
    }

    #[test]
    fn derivative_matches_segment_slope() {
        let t = LinearTable::new(&[(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)]).unwrap();
        assert!((t.derivative(0.5) - 2.0).abs() < 1e-12);
        assert!((t.derivative(1.5) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn from_function_samples_evenly() {
        let t = LinearTable::from_function(0.0, 2.0, 5, |x| x * x).unwrap();
        assert_eq!(t.len(), 5);
        assert!((t.eval(1.0) - 1.0).abs() < 1e-12);
        // Between samples the parabola is approximated by a chord.
        assert!(t.eval(0.25) > 0.0625);
    }

    #[test]
    fn from_function_rejects_bad_ranges() {
        assert!(LinearTable::from_function(0.0, 0.0, 5, |x| x).is_err());
        assert!(LinearTable::from_function(0.0, 1.0, 1, |x| x).is_err());
    }

    proptest! {
        /// Interpolating a linear function reproduces it exactly everywhere
        /// inside the table range.
        #[test]
        fn prop_linear_functions_are_exact(
            slope in -10.0_f64..10.0,
            intercept in -10.0_f64..10.0,
            x in 0.0_f64..1.0,
        ) {
            let t = LinearTable::from_function(0.0, 1.0, 17, |v| slope * v + intercept).unwrap();
            let expected = slope * x + intercept;
            prop_assert!((t.eval(x) - expected).abs() < 1e-9);
        }

        /// eval() output is always bounded by the min/max of the table's y
        /// values for inputs inside the range (linear interpolation cannot
        /// overshoot).
        #[test]
        fn prop_no_overshoot(
            ys in proptest::collection::vec(-100.0_f64..100.0, 2..32),
            x in 0.0_f64..1.0,
        ) {
            let points: Vec<(f64, f64)> = ys
                .iter()
                .enumerate()
                .map(|(i, &y)| (i as f64 / (ys.len() - 1) as f64, y))
                .collect();
            let t = LinearTable::new(&points).unwrap();
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let v = t.eval(x);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
