//! Preconditioned BiCGSTAB Krylov solver for anchored stationary systems.
//!
//! The Gauss–Seidel iteration in [`crate::sparse`] converges linearly, and
//! on large charge-state lattices (hundreds of thousands of states) its
//! sweep count grows with the diffusion length of probability across the
//! lattice. This module solves the same anchored balance as a linear
//! system with a Krylov method instead:
//!
//! * the generator is assembled into a row-scaled anchored matrix
//!   `A = D⁻¹·(diag(out_rate) − Q)` with the anchor row replaced by the
//!   identity row and right-hand side `b = e_anchor` — the exact algebraic
//!   statement of "pin the anchor at 1 and balance every other state";
//! * a BiCGSTAB iteration (deterministic: every reduction is a fixed-order
//!   sequential sum, so the same inputs produce bit-identical output on
//!   any machine or thread count) drives the residual below the requested
//!   tolerance;
//! * the preconditioner is selectable: [`Preconditioner::Jacobi`] is the
//!   diagonal scaling alone (already baked into the assembled system),
//!   [`Preconditioner::Ilu0`] adds a zero-fill incomplete LU factorisation
//!   of the scaled matrix, which typically cuts the iteration count by an
//!   order of magnitude on the master-equation lattices.
//!
//! All inner loops run over reusable [`KrylovWorkspace`] buffers — after
//! the workspace has grown to the problem size no further allocation
//! happens, so a warm-started bias sweep re-solves without touching the
//! allocator.
//!
//! The solver can fail (breakdown of the BiCGSTAB recurrence, stagnation
//! short of the tolerance); callers fall back to the unconditionally
//! convergent Gauss–Seidel sweep — see
//! [`crate::sparse::stationary_distribution_with`], which owns that
//! routing.

use crate::error::NumericError;
use crate::sparse::{CsrMatrix, SolveStats};

/// Preconditioner of the BiCGSTAB stationary solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preconditioner {
    /// Diagonal (Jacobi) scaling only: the anchored system is assembled
    /// with a unit diagonal, so this runs plain BiCGSTAB on the scaled
    /// matrix. No setup cost, weakest acceleration.
    Jacobi,
    /// Zero-fill incomplete LU factorisation of the scaled anchored
    /// matrix. One extra `nnz`-sized factor plus two triangular solves per
    /// iteration, typically an order of magnitude fewer iterations.
    #[default]
    Ilu0,
}

impl Preconditioner {
    /// The solver name reported in [`SolveStats`] for this preconditioner.
    #[must_use]
    pub fn solver_name(&self) -> &'static str {
        match self {
            Preconditioner::Jacobi => "bicgstab-jacobi",
            Preconditioner::Ilu0 => "bicgstab-ilu0",
        }
    }
}

/// Options of one BiCGSTAB solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KrylovOptions {
    /// Preconditioner choice.
    pub preconditioner: Preconditioner,
    /// Convergence threshold on the 2-norm of the scaled residual. The
    /// right-hand side is `e_anchor` (2-norm 1), so this is an absolute
    /// threshold comparable to the Gauss–Seidel per-state tolerance.
    pub tolerance: f64,
    /// Iteration budget before reporting [`NumericError::NoConvergence`].
    pub max_iterations: usize,
}

/// Reusable buffers of the BiCGSTAB solve: the assembled anchored system,
/// the optional ILU(0) factor and the eight iteration vectors. Reusing one
/// workspace across solves (a warm-started sweep) keeps the inner loops
/// allocation-free once the buffers have grown to the problem size.
#[derive(Debug, Default)]
pub struct KrylovWorkspace {
    // Assembled row-scaled anchored system (sorted, deduplicated columns).
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Position of the diagonal entry within each row.
    diag_ptr: Vec<usize>,
    /// ILU(0) factor values (same sparsity pattern as `values`).
    ilu: Vec<f64>,
    /// Row-assembly scratch: (column, value) pairs of the row under merge.
    row_scratch: Vec<(usize, f64)>,
    // BiCGSTAB vectors.
    x: Vec<f64>,
    r: Vec<f64>,
    rhat: Vec<f64>,
    p: Vec<f64>,
    v: Vec<f64>,
    s: Vec<f64>,
    t: Vec<f64>,
    phat: Vec<f64>,
    shat: Vec<f64>,
}

impl KrylovWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        KrylovWorkspace::default()
    }
}

/// Fixed-order sequential dot product — the deterministic reduction every
/// BiCGSTAB step uses.
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// 2-norm via the fixed-order dot product.
fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Assembles the row-scaled anchored system into the workspace:
/// `A = D⁻¹·(diag(out_rate) − Q)` with row `anchor` replaced by the
/// identity row (and rows with zero out-rate decoupled the same way, which
/// pins their probability at 0 exactly as the Gauss–Seidel sweep does).
/// Columns are sorted and duplicates merged, which the ILU(0) factorisation
/// requires.
fn assemble_anchored(
    ws: &mut KrylovWorkspace,
    inflow: &CsrMatrix,
    out_rate: &[f64],
    anchor: usize,
) -> Result<(), NumericError> {
    let n = inflow.rows();
    ws.row_ptr.clear();
    ws.col_idx.clear();
    ws.values.clear();
    ws.diag_ptr.clear();
    ws.row_ptr.reserve(n + 1);
    ws.col_idx.reserve(inflow.nnz() + n);
    ws.values.reserve(inflow.nnz() + n);
    ws.diag_ptr.reserve(n);
    ws.row_ptr.push(0);
    for i in 0..n {
        if i == anchor || out_rate[i] <= 0.0 {
            ws.diag_ptr.push(ws.col_idx.len());
            ws.col_idx.push(i);
            ws.values.push(1.0);
            ws.row_ptr.push(ws.col_idx.len());
            continue;
        }
        ws.row_scratch.clear();
        ws.row_scratch.push((i, out_rate[i]));
        let (cols, vals) = inflow.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            ws.row_scratch.push((c, -v));
        }
        ws.row_scratch.sort_unstable_by_key(|&(c, _)| c);
        // Merge duplicate columns (the CSR stamping semantics) in place.
        let mut diag = None;
        let mut cursor: Option<usize> = None;
        for k in 0..ws.row_scratch.len() {
            let (c, v) = ws.row_scratch[k];
            match cursor {
                Some(last) if ws.col_idx[last] == c => ws.values[last] += v,
                _ => {
                    if c == i {
                        diag = Some(ws.col_idx.len());
                    }
                    cursor = Some(ws.col_idx.len());
                    ws.col_idx.push(c);
                    ws.values.push(v);
                }
            }
        }
        let diag = diag.expect("the out-rate entry puts a diagonal in every balance row");
        let d = ws.values[diag];
        if !(d > 0.0) || !d.is_finite() {
            return Err(NumericError::InvalidArgument(format!(
                "state {i}: anchored diagonal must be positive and finite, got {d}"
            )));
        }
        let row_start = ws.row_ptr[i];
        for value in &mut ws.values[row_start..] {
            *value /= d;
        }
        ws.diag_ptr.push(diag);
        ws.row_ptr.push(ws.col_idx.len());
    }
    Ok(())
}

/// `out = A·x` over the assembled system (fixed-order row sums).
fn matvec(ws_row_ptr: &[usize], col_idx: &[usize], values: &[f64], x: &[f64], out: &mut [f64]) {
    for (i, out_i) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for k in ws_row_ptr[i]..ws_row_ptr[i + 1] {
            acc += values[k] * x[col_idx[k]];
        }
        *out_i = acc;
    }
}

/// Computes the ILU(0) factorisation of the assembled system into
/// `ws.ilu` (same sparsity pattern; `L` unit-lower, `U` upper with the
/// pivots on the stored diagonal). Row-wise IKJ elimination in fixed
/// order, so the factor is deterministic.
fn factor_ilu0(ws: &mut KrylovWorkspace, n: usize) -> Result<(), NumericError> {
    ws.ilu.clear();
    ws.ilu.extend_from_slice(&ws.values);
    for i in 0..n {
        let (start, end) = (ws.row_ptr[i], ws.row_ptr[i + 1]);
        let diag = ws.diag_ptr[i];
        for ptr in start..diag {
            let k = ws.col_idx[ptr];
            let pivot = ws.ilu[ws.diag_ptr[k]];
            if pivot == 0.0 || !pivot.is_finite() {
                return Err(NumericError::SingularMatrix { pivot: k });
            }
            let factor = ws.ilu[ptr] / pivot;
            ws.ilu[ptr] = factor;
            // Subtract factor × (U-part of row k) from the tail of row i,
            // keeping only positions already present (zero fill-in).
            let mut pi = ptr + 1;
            for pk in (ws.diag_ptr[k] + 1)..ws.row_ptr[k + 1] {
                let j = ws.col_idx[pk];
                while pi < end && ws.col_idx[pi] < j {
                    pi += 1;
                }
                if pi < end && ws.col_idx[pi] == j {
                    ws.ilu[pi] -= factor * ws.ilu[pk];
                }
            }
        }
        let pivot = ws.ilu[diag];
        if pivot == 0.0 || !pivot.is_finite() {
            return Err(NumericError::SingularMatrix { pivot: i });
        }
    }
    Ok(())
}

/// Applies the preconditioner: `out = M⁻¹·z`. Jacobi is the identity (the
/// system is assembled with a unit diagonal); ILU(0) is a forward solve
/// against unit-lower `L` followed by a back substitution against `U`.
/// Takes the workspace fields individually so callers can borrow the input
/// and output vectors from the same workspace without copying.
fn apply_preconditioner(
    row_ptr: &[usize],
    diag_ptr: &[usize],
    col_idx: &[usize],
    ilu: &[f64],
    kind: Preconditioner,
    z: &[f64],
    out: &mut [f64],
) {
    match kind {
        Preconditioner::Jacobi => out.copy_from_slice(z),
        Preconditioner::Ilu0 => {
            let n = z.len();
            // Forward: L y = z (unit diagonal, strictly-lower entries).
            for i in 0..n {
                let mut acc = z[i];
                for k in row_ptr[i]..diag_ptr[i] {
                    acc -= ilu[k] * out[col_idx[k]];
                }
                out[i] = acc;
            }
            // Backward: U x = y.
            for i in (0..n).rev() {
                let mut acc = out[i];
                for k in (diag_ptr[i] + 1)..row_ptr[i + 1] {
                    acc -= ilu[k] * out[col_idx[k]];
                }
                out[i] = acc / ilu[diag_ptr[i]];
            }
        }
    }
}

/// Resizes and zero-fills one iteration vector.
fn reset(buf: &mut Vec<f64>, n: usize) {
    buf.clear();
    buf.resize(n, 0.0);
}

/// Solves the anchored stationary balance with preconditioned BiCGSTAB and
/// returns the normalised distribution plus its [`SolveStats`].
///
/// The system solved is the same one the Gauss–Seidel sweep relaxes:
/// `out_rate[i]·p_i − Σ_j inflow[i][j]·p_j = 0` for every `i ≠ anchor`,
/// with the anchor pinned at 1; the result is clamped to non-negative
/// values (BiCGSTAB components may undershoot 0 by rounding) and
/// normalised to sum 1 — the identical anchoring/normalisation contract.
///
/// `warm_start` optionally seeds the iteration with a previous converged
/// distribution (any positive scaling; it is re-scaled so the anchor is 1).
/// A warm start from an adjacent bias point typically converges in a
/// handful of iterations. An unusable warm start (wrong length, no mass on
/// the anchor, non-finite entries) silently degrades to the cold start.
///
/// Every reduction is a fixed-order sequential sum, so the solve is
/// deterministic — bit-identical across runs, machines and thread counts.
///
/// # Errors
///
/// Returns [`NumericError::NoConvergence`] if the recurrence breaks down
/// or the tolerance is not reached within the iteration budget,
/// [`NumericError::SingularMatrix`] if the ILU(0) factorisation hits a
/// zero pivot, and [`NumericError::InvalidArgument`] for a non-positive
/// anchored diagonal. Callers are expected to fall back to Gauss–Seidel
/// (see [`crate::sparse::stationary_distribution_with`]); input shape and
/// sign validation lives there as well.
pub fn stationary_bicgstab(
    inflow: &CsrMatrix,
    out_rate: &[f64],
    anchor: usize,
    options: &KrylovOptions,
    warm_start: Option<&[f64]>,
    ws: &mut KrylovWorkspace,
) -> Result<(Vec<f64>, SolveStats), NumericError> {
    let n = inflow.rows();
    assemble_anchored(ws, inflow, out_rate, anchor)?;
    if options.preconditioner == Preconditioner::Ilu0 {
        factor_ilu0(ws, n)?;
    }
    let tol = options.tolerance.max(f64::MIN_POSITIVE);

    // Cold start: the anchor alone carries mass (the Gauss–Seidel initial
    // state). Warm start: a previous distribution re-scaled to anchor 1.
    reset(&mut ws.x, n);
    match warm_start {
        Some(w) if w.len() == n && w[anchor] > 0.0 && w.iter().all(|value| value.is_finite()) => {
            let scale = 1.0 / w[anchor];
            for (x, &wv) in ws.x.iter_mut().zip(w) {
                *x = wv * scale;
            }
        }
        _ => ws.x[anchor] = 1.0,
    }

    for buf in [
        &mut ws.r,
        &mut ws.rhat,
        &mut ws.p,
        &mut ws.v,
        &mut ws.s,
        &mut ws.t,
        &mut ws.phat,
        &mut ws.shat,
    ] {
        reset(buf, n);
    }

    // r = b − A x, with b = e_anchor.
    matvec(&ws.row_ptr, &ws.col_idx, &ws.values, &ws.x, &mut ws.r);
    for r in ws.r.iter_mut() {
        *r = -*r;
    }
    ws.r[anchor] += 1.0;

    let solver = options.preconditioner.solver_name();
    let mut residual = norm2(&ws.r);
    let mut iterations = 0usize;
    let mut converged = residual <= tol && residual.is_finite();
    if !converged {
        ws.rhat.copy_from_slice(&ws.r);
        let (mut rho, mut alpha, mut omega) = (1.0_f64, 1.0_f64, 1.0_f64);
        let breakdown = |iterations: usize, residual: f64| NumericError::NoConvergence {
            iterations,
            residual,
        };
        for iter in 1..=options.max_iterations {
            iterations = iter;
            let rho_new = dot(&ws.rhat, &ws.r);
            if rho_new == 0.0 || !rho_new.is_finite() {
                return Err(breakdown(iter, residual));
            }
            if iter == 1 {
                ws.p.copy_from_slice(&ws.r);
            } else {
                let beta = (rho_new / rho) * (alpha / omega);
                if !beta.is_finite() {
                    return Err(breakdown(iter, residual));
                }
                for i in 0..n {
                    ws.p[i] = ws.r[i] + beta * (ws.p[i] - omega * ws.v[i]);
                }
            }
            rho = rho_new;
            apply_preconditioner(
                &ws.row_ptr,
                &ws.diag_ptr,
                &ws.col_idx,
                &ws.ilu,
                options.preconditioner,
                &ws.p,
                &mut ws.phat,
            );
            matvec(&ws.row_ptr, &ws.col_idx, &ws.values, &ws.phat, &mut ws.v);
            let denom = dot(&ws.rhat, &ws.v);
            if denom == 0.0 || !denom.is_finite() {
                return Err(breakdown(iter, residual));
            }
            alpha = rho / denom;
            for i in 0..n {
                ws.s[i] = ws.r[i] - alpha * ws.v[i];
            }
            let s_norm = norm2(&ws.s);
            if !s_norm.is_finite() {
                return Err(breakdown(iter, s_norm));
            }
            if s_norm <= tol {
                for i in 0..n {
                    ws.x[i] += alpha * ws.phat[i];
                }
                ws.r.copy_from_slice(&ws.s);
                residual = s_norm;
                converged = true;
                break;
            }
            apply_preconditioner(
                &ws.row_ptr,
                &ws.diag_ptr,
                &ws.col_idx,
                &ws.ilu,
                options.preconditioner,
                &ws.s,
                &mut ws.shat,
            );
            matvec(&ws.row_ptr, &ws.col_idx, &ws.values, &ws.shat, &mut ws.t);
            let tt = dot(&ws.t, &ws.t);
            if tt == 0.0 || !tt.is_finite() {
                return Err(breakdown(iter, s_norm));
            }
            omega = dot(&ws.t, &ws.s) / tt;
            if omega == 0.0 || !omega.is_finite() {
                return Err(breakdown(iter, s_norm));
            }
            for i in 0..n {
                ws.x[i] += alpha * ws.phat[i] + omega * ws.shat[i];
            }
            for i in 0..n {
                ws.r[i] = ws.s[i] - omega * ws.t[i];
            }
            residual = norm2(&ws.r);
            if !residual.is_finite() {
                return Err(breakdown(iter, residual));
            }
            if residual <= tol {
                converged = true;
                break;
            }
        }
    }
    if !converged {
        return Err(NumericError::NoConvergence {
            iterations,
            residual,
        });
    }

    // The recurrence residual can drift from the true residual; re-check
    // against the assembled system before accepting the solution.
    matvec(&ws.row_ptr, &ws.col_idx, &ws.values, &ws.x, &mut ws.t);
    ws.t[anchor] -= 1.0;
    let true_residual = norm2(&ws.t);
    if !true_residual.is_finite() || true_residual > 10.0 * tol.max(1e-300) {
        return Err(NumericError::NoConvergence {
            iterations,
            residual: true_residual,
        });
    }

    // Clamp rounding undershoot and normalise — the same contract as the
    // Gauss–Seidel path (whose iterates are non-negative by construction).
    let mut probabilities = vec![0.0; n];
    let mut total = 0.0;
    for (p, &x) in probabilities.iter_mut().zip(&ws.x) {
        *p = if x > 0.0 { x } else { 0.0 };
        total += *p;
    }
    if !total.is_finite() || total <= 0.0 {
        return Err(NumericError::NoConvergence {
            iterations,
            residual: total,
        });
    }
    for p in &mut probabilities {
        *p /= total;
    }
    Ok((
        probabilities,
        SolveStats {
            solver,
            iterations,
            residual: true_residual,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(
        inflow: &CsrMatrix,
        out: &[f64],
        anchor: usize,
        preconditioner: Preconditioner,
    ) -> (Vec<f64>, SolveStats) {
        let mut ws = KrylovWorkspace::new();
        stationary_bicgstab(
            inflow,
            out,
            anchor,
            &KrylovOptions {
                preconditioner,
                tolerance: 1e-13,
                max_iterations: 500,
            },
            None,
            &mut ws,
        )
        .unwrap()
    }

    #[test]
    fn two_state_chain_matches_analytic_stationary_distribution() {
        let (a, b) = (3.0e9, 1.0e9);
        let inflow = CsrMatrix::from_triplets(2, 2, &[(1, 0, a), (0, 1, b)]).unwrap();
        for pc in [Preconditioner::Jacobi, Preconditioner::Ilu0] {
            let (p, stats) = solve(&inflow, &[a, b], 0, pc);
            assert!((p[0] - b / (a + b)).abs() < 1e-12, "{pc:?}: {p:?}");
            assert!((p[1] - a / (a + b)).abs() < 1e-12);
            assert!(stats.residual <= 1e-12, "{stats:?}");
            assert!(stats.solver.starts_with("bicgstab"));
        }
    }

    #[test]
    fn birth_death_chain_matches_detailed_balance() {
        let n = 40;
        let (lambda, mu) = (2.0e8, 5.0e8);
        let mut triplets = Vec::new();
        let mut out = vec![0.0; n];
        for k in 0..n - 1 {
            triplets.push((k + 1, k, lambda));
            triplets.push((k, k + 1, mu));
            out[k] += lambda;
            out[k + 1] += mu;
        }
        let inflow = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let r = lambda / mu;
        for pc in [Preconditioner::Jacobi, Preconditioner::Ilu0] {
            let (p, _) = solve(&inflow, &out, 0, pc);
            for k in 1..n {
                let expected = p[0] * r.powi(k as i32);
                // The residual tolerance is absolute (the anchored system's
                // right-hand side has 2-norm 1), so tiny tail components
                // carry absolute error near the tolerance.
                assert!(
                    (p[k] - expected).abs() < 1e-8 * expected + 1e-12,
                    "{pc:?} level {k}: {} vs {expected}",
                    p[k]
                );
            }
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_out_rate_states_keep_probability_zero() {
        // State 2 is absorbing (anchor); states 0 and 1 drain into it.
        let inflow =
            CsrMatrix::from_triplets(3, 3, &[(1, 0, 1.0e9), (2, 1, 2.0e9), (2, 0, 0.5e9)]).unwrap();
        let (p, _) = solve(&inflow, &[1.5e9, 2.0e9, 0.0], 2, Preconditioner::Ilu0);
        assert!(p[2] > 1.0 - 1e-12);
        assert!(p[0] < 1e-12 && p[1] < 1e-12);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn warm_start_reconverges_in_fewer_iterations() {
        let n = 60;
        let mut triplets = Vec::new();
        let mut out = vec![0.0; n];
        for k in 0..n - 1 {
            triplets.push((k + 1, k, 3.0e8));
            triplets.push((k, k + 1, 5.0e8));
            out[k] += 3.0e8;
            out[k + 1] += 5.0e8;
        }
        let inflow = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let options = KrylovOptions {
            preconditioner: Preconditioner::Ilu0,
            tolerance: 1e-13,
            max_iterations: 500,
        };
        let mut ws = KrylovWorkspace::new();
        let (cold, cold_stats) =
            stationary_bicgstab(&inflow, &out, 0, &options, None, &mut ws).unwrap();
        let (warm, warm_stats) =
            stationary_bicgstab(&inflow, &out, 0, &options, Some(&cold), &mut ws).unwrap();
        assert!(warm_stats.iterations <= cold_stats.iterations);
        for (a, b) in cold.iter().zip(&warm) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn breakdown_and_budget_exhaustion_report_no_convergence() {
        // A chain long enough that two unpreconditioned iterations cannot
        // solve it exactly — the unreachable tolerance must surface as
        // NoConvergence, not as a silently accepted result.
        let n = 40;
        let mut triplets = Vec::new();
        let mut out = vec![0.0; n];
        for k in 0..n - 1 {
            triplets.push((k + 1, k, 2.0e8));
            triplets.push((k, k + 1, 5.0e8));
            out[k] += 2.0e8;
            out[k + 1] += 5.0e8;
        }
        let inflow = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let mut ws = KrylovWorkspace::new();
        let err = stationary_bicgstab(
            &inflow,
            &out,
            0,
            &KrylovOptions {
                preconditioner: Preconditioner::Jacobi,
                tolerance: 1e-300,
                max_iterations: 2,
            },
            None,
            &mut ws,
        )
        .unwrap_err();
        assert!(matches!(err, NumericError::NoConvergence { .. }), "{err}");
    }

    #[test]
    fn determinism_bit_identical_across_repeated_solves() {
        let n = 50;
        let mut triplets = Vec::new();
        let mut out = vec![0.0; n];
        for k in 0..n - 1 {
            triplets.push((k + 1, k, 1.0e9 + k as f64));
            triplets.push((k, k + 1, 2.0e9 - k as f64));
            out[k] += 1.0e9 + k as f64;
            out[k + 1] += 2.0e9 - k as f64;
        }
        let inflow = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let (first, _) = solve(&inflow, &out, 0, Preconditioner::Ilu0);
        let (second, _) = solve(&inflow, &out, 0, Preconditioner::Ilu0);
        let bits = |p: &[f64]| p.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&first), bits(&second));
    }
}
