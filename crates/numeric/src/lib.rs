//! Numerical substrate for the single-electronics toolkit.
//!
//! The simulators in this workspace need a small, predictable set of
//! numerical tools: dense linear algebra for capacitance matrices and
//! modified nodal analysis, sparse (CSR) matrices and an iterative
//! stationary solver for the master-equation state space, root finding for
//! Newton iterations, statistics
//! and histograms for Monte-Carlo observables and randomness analysis, a
//! discrete Fourier transform for the FM-coded logic demodulation, and simple
//! interpolation for tabulated device characteristics.
//!
//! Rather than pulling in a large linear-algebra dependency, this crate
//! implements exactly what is needed with a bias towards clarity and
//! robustness (partial pivoting, explicit singularity detection, residual
//! checks in the tests).
//!
//! # Example
//!
//! ```
//! use se_numeric::matrix::Matrix;
//! use se_numeric::lu::LuDecomposition;
//!
//! # fn main() -> Result<(), se_numeric::NumericError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((a.mul_vec(&x)[0] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
// `!(a < b)` is the idiom this crate uses to reject NaN alongside ordinary
// range violations, and the LU / matrix hot paths keep the textbook
// index-based loops for auditability against the reference algorithms.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod dft;
pub mod error;
pub mod histogram;
pub mod interp;
pub mod krylov;
pub mod lu;
pub mod matrix;
pub mod partial_sum;
pub mod rootfind;
pub mod sampling;
pub mod sparse;
pub mod stats;

pub use error::NumericError;
pub use krylov::Preconditioner;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use partial_sum::PartialSumTree;
pub use sparse::{CsrMatrix, SolveStats, StationarySolver, StationaryWorkspace};
