//! LU decomposition with partial pivoting, linear solves, matrix inversion
//! and determinants.
//!
//! This is the workhorse behind both the capacitance-matrix inversion in
//! `se-orthodox` and the modified-nodal-analysis solves in `se-spice`.

use crate::error::NumericError;
use crate::matrix::Matrix;

/// LU decomposition `P·A = L·U` of a square matrix with partial pivoting.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, used for the determinant.
    perm_sign: f64,
}

/// Relative pivot threshold below which a matrix is declared singular.
const SINGULARITY_THRESHOLD: f64 = 1e-13;

impl LuDecomposition {
    /// Factorises the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the matrix is not
    /// square and [`NumericError::SingularMatrix`] if a pivot falls below the
    /// singularity threshold relative to the matrix scale.
    pub fn new(a: &Matrix) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let scale = a.max_abs().max(f64::MIN_POSITIVE);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for col in 0..n {
            // Find pivot.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for row in (col + 1)..n {
                let v = lu[(row, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < SINGULARITY_THRESHOLD * scale {
                return Err(NumericError::SingularMatrix { pivot: col });
            }
            if pivot_row != col {
                lu.swap_rows(pivot_row, col);
                perm.swap(pivot_row, col);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(col, col)];
            for row in (col + 1)..n {
                let factor = lu[(row, col)] / pivot;
                lu[(row, col)] = factor;
                for k in (col + 1)..n {
                    let upper = lu[(col, k)];
                    lu[(row, k)] -= factor * upper;
                }
            }
        }

        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factorised matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (L is unit lower triangular).
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes the inverse matrix by solving against each unit vector.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factorised
    /// matrix with correct dimensions).
    pub fn inverse(&self) -> Result<Matrix, NumericError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for row in 0..n {
                inv[(row, col)] = x[row];
            }
            e[col] = 0.0;
        }
        Ok(inv)
    }

    /// Determinant of the original matrix.
    #[must_use]
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = self.perm_sign;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// Convenience function: solves `A·x = b` in one call.
///
/// # Errors
///
/// Returns the factorisation or solve error.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericError> {
    LuDecomposition::new(a)?.solve(b)
}

/// Convenience function: inverts `A` in one call.
///
/// # Errors
///
/// Returns the factorisation error if `A` is singular or not square.
pub fn invert(a: &Matrix) -> Result<Matrix, NumericError> {
    LuDecomposition::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_small_system_exactly() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        // 2x + y = 3, x + 3y = 5 -> x = 0.8, y = 1.4
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let err = LuDecomposition::new(&a).unwrap_err();
        assert!(matches!(err, NumericError::SingularMatrix { .. }));
    }

    #[test]
    fn rejects_non_square_matrix() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap();
        let inv = invert(&a).unwrap();
        let prod = a.mul_matrix(&inv).unwrap();
        let diff = &prod - &Matrix::identity(3);
        assert!(diff.max_abs() < 1e-12);
    }

    #[test]
    fn determinant_of_triangular_matrix() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[0.0, 3.0, 5.0], &[0.0, 0.0, 4.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() - 24.0).abs() < 1e-10);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // Swapping two rows of the identity gives determinant -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_length_rhs() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    proptest! {
        /// Diagonally dominant random matrices are well conditioned; solving
        /// and multiplying back must reproduce the right-hand side.
        #[test]
        fn prop_solve_residual_is_small(
            seed_values in proptest::collection::vec(-1.0_f64..1.0, 9..=9),
            b in proptest::collection::vec(-10.0_f64..10.0, 3..=3),
        ) {
            let mut a = Matrix::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    a[(i, j)] = seed_values[i * 3 + j];
                }
                // Force diagonal dominance.
                a[(i, i)] += 4.0;
            }
            let x = solve(&a, &b).unwrap();
            let r = a.mul_vec(&x);
            for (ri, bi) in r.iter().zip(&b) {
                prop_assert!((ri - bi).abs() < 1e-9);
            }
        }

        /// det(A) * det(A^-1) == 1 for well-conditioned matrices.
        #[test]
        fn prop_determinant_of_inverse(
            seed_values in proptest::collection::vec(-1.0_f64..1.0, 16..=16),
        ) {
            let mut a = Matrix::zeros(4, 4);
            for i in 0..4 {
                for j in 0..4 {
                    a[(i, j)] = seed_values[i * 4 + j];
                }
                a[(i, i)] += 5.0;
            }
            let lu = LuDecomposition::new(&a).unwrap();
            let inv = lu.inverse().unwrap();
            let lu_inv = LuDecomposition::new(&inv).unwrap();
            let prod = lu.determinant() * lu_inv.determinant();
            prop_assert!((prod - 1.0).abs() < 1e-6);
        }
    }
}
