//! Dense, row-major `f64` matrix with the operations needed by the
//! capacitance-matrix and modified-nodal-analysis code.

use crate::error::NumericError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense, row-major matrix of `f64` values.
///
/// The matrix is deliberately simple: sizes in this workspace are at most a
/// few hundred rows (circuit node counts / charge-state counts), so cache
/// blocking and sparsity are not worth their complexity here. Benchmarks in
/// `se-bench` track the solver cost as circuits grow.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the rows are empty or
    /// have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(NumericError::DimensionMismatch {
                expected: "at least 1x1".into(),
                found: "empty".into(),
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(NumericError::DimensionMismatch {
                    expected: format!("{cols} columns"),
                    found: format!("{} columns in row {i}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if `diag` is empty.
    #[must_use]
    pub fn from_diagonal(diag: &[f64]) -> Self {
        assert!(!diag.is_empty(), "diagonal must be non-empty");
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the entry at `(row, col)`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Adds `value` to the entry at `(row, col)` (the MNA "stamp" operation).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add_at(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] += value;
    }

    /// Matrix × vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Returns the transpose of the matrix.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute entry (infinity norm of the flattened data).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Scales every entry by `factor` in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Returns a view of the given row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Returns the raw row-major data slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix × matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the inner dimensions do
    /// not agree.
    pub fn mul_matrix(&self, other: &Matrix) -> Result<Matrix, NumericError> {
        if self.cols != other.rows {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix dimensions must match for addition"
        );
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o += r;
        }
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix dimensions must match for subtraction"
        );
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o -= r;
        }
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(rhs);
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_vector_is_vector() {
        let id = Matrix::identity(4);
        let v = vec![1.0, -2.0, 3.0, 4.5];
        assert_eq!(id.mul_vec(&v), v);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty_input() {
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn stamping_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_at(0, 0, 1.0);
        m.add_at(0, 0, 2.5);
        assert_eq!(m[(0, 0)], 3.5);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn symmetric_detection() {
        let s = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let a = Matrix::from_rows(&[&[2.0, -1.0], &[1.0, 2.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
    }

    #[test]
    fn matrix_product_against_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul_matrix(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matrix_product_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.mul_matrix(&b).is_err());
    }

    #[test]
    fn addition_and_scaling() {
        let a = Matrix::identity(2);
        let b = &a + &a;
        assert_eq!(b[(0, 0)], 2.0);
        let c = &b * 0.5;
        assert_eq!(c[(1, 1)], 1.0);
        let d = &c - &a;
        assert_eq!(d.max_abs(), 0.0);
    }

    #[test]
    fn swap_rows_swaps_contents() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[3.0, 4.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn diagonal_constructor() {
        let m = Matrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(m[(1, 1)], 2.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.rows(), 3);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        let id = Matrix::identity(9);
        assert!((id.frobenius_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}
