//! Fixed-shape binary partial-sum tree over a weight vector.
//!
//! The kinetic Monte-Carlo hot loop needs two operations per event: the
//! total rate `Σ wᵢ` (for the exponential clock) and an inverse-CDF draw
//! (find the leaf where the running prefix sum first exceeds `u·Σ`). A flat
//! array makes both O(E); this tree makes both O(log E) while keeping every
//! produced bit a pure function of the leaf values:
//!
//! * **Fixed shape.** The tree is a complete binary tree over
//!   `len.next_power_of_two()` slots, zero-padded past `len`. Its shape —
//!   and therefore the reduction order of every internal sum — depends only
//!   on `len`, never on which leaves changed or in what order.
//! * **Recompute, never adjust.** Updating leaves recomputes each affected
//!   internal node as `left + right` from its children's current values.
//!   Nodes are never corrected by adding a delta (`node += new − old` would
//!   accumulate round-off that depends on the update history), so any
//!   sequence of [`PartialSumTree::update_leaves`] calls leaves every node
//!   bit-identical to a from-scratch [`PartialSumTree::rebuild`] over the
//!   same leaf values. The unit tests pin this equivalence.
//!
//! The price is that the root's bits differ from a flat left-to-right fold
//! of the same weights — a pairwise reduction associates differently. Code
//! that switches an accumulation from a fold to this tree changes
//! downstream bits deliberately (see `docs/DETERMINISM.md` §10).

/// A complete binary tree of partial sums with power-of-two leaf capacity.
///
/// Stored as the classic implicit heap: `nodes[1]` is the root,
/// `nodes[n]`'s children are `nodes[2n]` and `nodes[2n+1]`, and the leaves
/// occupy `nodes[width..width + len]` with zero padding up to `2·width`.
///
/// # Example
///
/// ```
/// use se_numeric::partial_sum::PartialSumTree;
///
/// let mut tree = PartialSumTree::new(3);
/// tree.fill(&[1.0, 3.0, 6.0]);
/// assert_eq!(tree.total(), 10.0);
/// assert_eq!(tree.descend(0.5), 0);
/// assert_eq!(tree.descend(3.5), 1);
/// assert_eq!(tree.descend(9.5), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PartialSumTree {
    /// Number of real (non-padding) leaves.
    len: usize,
    /// Leaf capacity, `len.next_power_of_two().max(1)`.
    width: usize,
    /// Implicit heap storage, `2 · width` slots (`nodes[0]` unused).
    nodes: Vec<f64>,
    /// Scratch for the level-by-level propagation of `update_leaves`.
    frontier: Vec<u32>,
}

impl PartialSumTree {
    /// Creates a tree over `len` leaves, all zero.
    #[must_use]
    pub fn new(len: usize) -> Self {
        let width = len.next_power_of_two().max(1);
        Self {
            len,
            width,
            nodes: vec![0.0; 2 * width],
            frontier: Vec::new(),
        }
    }

    /// Number of real leaves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has no real leaves.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root sum — `Σ` of all leaves in the fixed pairwise order.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.nodes[1]
    }

    /// Current value of leaf `index`.
    #[must_use]
    pub fn leaf(&self, index: usize) -> f64 {
        self.nodes[self.width + index]
    }

    /// Writes leaf `index` **without** propagating to the internal nodes.
    ///
    /// Callers batch leaf writes and then propagate once via
    /// [`PartialSumTree::update_leaves`] (or [`PartialSumTree::rebuild`]).
    pub fn set_leaf(&mut self, index: usize, value: f64) {
        debug_assert!(index < self.len, "leaf {index} out of range {}", self.len);
        self.nodes[self.width + index] = value;
    }

    /// Copies `values` into the leaves and rebuilds every internal node.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the tree's leaf count.
    pub fn fill(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.len, "leaf count mismatch");
        self.nodes[self.width..self.width + self.len].copy_from_slice(values);
        self.rebuild();
    }

    /// Recomputes every internal node bottom-up from the current leaves.
    ///
    /// Internal nodes whose descendants are all zero padding (leaves past
    /// `len`, which are permanently zero) keep their construction-time zero
    /// and are skipped, so the pass costs O(len) adds, not O(width).
    pub fn rebuild(&mut self) {
        let mut level_width = self.width;
        let mut live = self.len;
        while level_width > 1 {
            let parent_width = level_width / 2;
            let parent_live = live.div_ceil(2);
            let (parents, children) = self.nodes.split_at_mut(level_width);
            for (parent, pair) in parents[parent_width..parent_width + parent_live]
                .iter_mut()
                .zip(children[..2 * parent_live].chunks_exact(2))
            {
                *parent = pair[0] + pair[1];
            }
            level_width = parent_width;
            live = parent_live;
        }
    }

    /// Propagates a batch of leaf writes up to the root.
    ///
    /// `changed` holds the written leaf indices, **sorted ascending** (
    /// duplicates are tolerated). Each affected internal node is recomputed
    /// as `left + right`, so the result is bit-identical to a full
    /// [`PartialSumTree::rebuild`] — the batch only bounds *which* nodes are
    /// touched, never what value they get. Cost is O(k · log width) with
    /// shared ancestors deduplicated level by level.
    pub fn update_leaves(&mut self, changed: &[u32]) {
        debug_assert!(changed.windows(2).all(|w| w[0] <= w[1]));
        if changed.is_empty() || self.width == 1 {
            return;
        }
        // Seed the frontier with the parents of the changed leaves; ascend
        // one level per pass until only the root's level remains. Sorted
        // input keeps duplicates adjacent, so a last-pushed check dedups.
        let mut frontier = std::mem::take(&mut self.frontier);
        frontier.clear();
        for &leaf in changed {
            let parent = ((self.width + leaf as usize) >> 1) as u32;
            if frontier.last() != Some(&parent) {
                frontier.push(parent);
            }
        }
        loop {
            let mut write = 0;
            for read in 0..frontier.len() {
                let node = frontier[read] as usize;
                self.nodes[node] = self.nodes[2 * node] + self.nodes[2 * node + 1];
                let parent = (node >> 1) as u32;
                if write == 0 || frontier[write - 1] != parent {
                    frontier[write] = parent;
                    write += 1;
                }
            }
            frontier.truncate(write);
            if frontier[0] == 0 {
                break;
            }
        }
        self.frontier = frontier;
    }

    /// Inverse-CDF descent: the leaf whose prefix-sum bucket contains
    /// `target`, for `target ∈ [0, total)`.
    ///
    /// At each internal node the walk goes left when `target` is below the
    /// left child's sum, else subtracts it and goes right — the tree-shaped
    /// equivalent of the linear scan `acc += w; target < acc`. Floating-point
    /// round-off (or `target ≥ total`) can steer the walk into a zero-sum
    /// subtree or the zero padding; the returned index is clamped to
    /// `len − 1`, and callers that must land on a *positive* leaf apply
    /// their own final-bucket clamp (the KMC engines fall back to the last
    /// positive-rate event, mirroring the linear scan's fallback).
    #[must_use]
    pub fn descend(&self, mut target: f64) -> usize {
        let mut node = 1;
        while node < self.width {
            let left = 2 * node;
            let left_sum = self.nodes[left];
            if target < left_sum {
                node = left;
            } else {
                target -= left_sum;
                node = left + 1;
            }
        }
        (node - self.width).min(self.len.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference linear scan with the same bucket convention as `descend`.
    fn linear_select(weights: &[f64], target: f64) -> usize {
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            if target < acc {
                return i;
            }
        }
        weights.len() - 1
    }

    #[test]
    fn totals_and_leaves_round_trip() {
        let mut tree = PartialSumTree::new(5);
        tree.fill(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.total(), 15.0);
        for (i, expected) in [1.0, 2.0, 3.0, 4.0, 5.0].iter().enumerate() {
            assert_eq!(tree.leaf(i), *expected);
        }
    }

    #[test]
    fn incremental_updates_match_full_rebuild_bit_for_bit() {
        // The determinism contract: any update history ends with every node
        // identical to a from-scratch rebuild over the same leaves.
        let mut rng = StdRng::seed_from_u64(42);
        for len in [1usize, 2, 3, 7, 8, 9, 64, 100] {
            let mut values: Vec<f64> = (0..len).map(|_| rng.gen::<f64>() * 1e9).collect();
            let mut incremental = PartialSumTree::new(len);
            incremental.fill(&values);
            for _ in 0..50 {
                let count = 1 + rng.gen::<u64>() as usize % len;
                let mut changed: Vec<u32> = (0..count)
                    .map(|_| (rng.gen::<u64>() as usize % len) as u32)
                    .collect();
                changed.sort_unstable();
                for &leaf in &changed {
                    let v = rng.gen::<f64>() * 1e9;
                    values[leaf as usize] = v;
                    incremental.set_leaf(leaf as usize, v);
                }
                incremental.update_leaves(&changed);
                let mut rebuilt = PartialSumTree::new(len);
                rebuilt.fill(&values);
                assert_eq!(
                    incremental.nodes.len(),
                    rebuilt.nodes.len(),
                    "len {len}: node storage diverged"
                );
                for node in 1..incremental.nodes.len() {
                    assert_eq!(
                        incremental.nodes[node].to_bits(),
                        rebuilt.nodes[node].to_bits(),
                        "len {len}, node {node}: incremental update drifted from rebuild"
                    );
                }
            }
        }
    }

    #[test]
    fn descent_matches_linear_scan_on_exact_weights() {
        // Integer weights make every partial sum exact, so the tree's
        // pairwise sums equal the scan's running sums and the selected
        // bucket must agree for any target.
        let weights = [2.0, 0.0, 5.0, 1.0, 0.0, 3.0, 4.0];
        let mut tree = PartialSumTree::new(weights.len());
        tree.fill(&weights);
        assert_eq!(tree.total(), 15.0);
        let mut target = 0.0;
        while target < 15.0 {
            assert_eq!(
                tree.descend(target),
                linear_select(&weights, target),
                "target {target}"
            );
            target += 0.25;
        }
    }

    #[test]
    fn descent_clamps_overflow_targets_into_the_last_real_leaf() {
        // A non-power-of-two length leaves zero padding on the right; a
        // target at (or marginally above) the total must not land there.
        let weights = [1.0, 2.0, 3.0];
        let mut tree = PartialSumTree::new(weights.len());
        tree.fill(&weights);
        assert_eq!(tree.descend(tree.total()), weights.len() - 1);
        assert_eq!(tree.descend(tree.total() + 1.0), weights.len() - 1);
    }

    #[test]
    fn descent_can_land_on_a_zero_leaf_under_round_off_style_targets() {
        // With trailing zero weights, an at-the-edge target lands on a
        // zero-rate leaf — the case the engines' final-bucket clamp exists
        // for. The tree reports the clamped index; policy is the caller's.
        let weights = [4.0, 0.0, 0.0];
        let mut tree = PartialSumTree::new(weights.len());
        tree.fill(&weights);
        let idx = tree.descend(4.0);
        assert_eq!(idx, weights.len() - 1);
        assert_eq!(tree.leaf(idx), 0.0);
    }

    #[test]
    fn single_leaf_and_empty_trees_are_well_formed() {
        let mut one = PartialSumTree::new(1);
        one.fill(&[7.5]);
        assert_eq!(one.total(), 7.5);
        assert_eq!(one.descend(0.0), 0);
        let empty = PartialSumTree::new(0);
        assert!(empty.is_empty());
        assert_eq!(empty.total(), 0.0);
    }

    #[test]
    fn update_leaves_tolerates_duplicates_and_full_batches() {
        let mut tree = PartialSumTree::new(4);
        tree.fill(&[1.0, 1.0, 1.0, 1.0]);
        tree.set_leaf(2, 9.0);
        tree.update_leaves(&[2, 2, 2]);
        assert_eq!(tree.total(), 12.0);
        for (i, v) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            tree.set_leaf(i, *v);
        }
        tree.update_leaves(&[0, 1, 2, 3]);
        assert_eq!(tree.total(), 100.0);
    }
}
