//! Scalar root finding: Newton–Raphson with damping and bisection fallback.
//!
//! Used by the compact device models (diode and MOSFET initial guesses) and
//! by the analytic SET model when inverting its transfer characteristic.

use crate::error::NumericError;

/// Options controlling the scalar root finders.
#[derive(Debug, Clone, Copy)]
pub struct RootFindOptions {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Absolute tolerance on `|f(x)|` for convergence.
    pub f_tolerance: f64,
    /// Absolute tolerance on the step size for convergence.
    pub x_tolerance: f64,
}

impl Default for RootFindOptions {
    fn default() -> Self {
        RootFindOptions {
            max_iterations: 100,
            f_tolerance: 1e-12,
            x_tolerance: 1e-14,
        }
    }
}

/// Finds a root of `f` near `x0` using damped Newton–Raphson with the
/// derivative `df`.
///
/// The step is halved (up to 30 times) whenever it does not reduce `|f|`,
/// which keeps the iteration stable for the exponential device equations.
///
/// # Errors
///
/// Returns [`NumericError::NoConvergence`] if the tolerances are not met
/// within the iteration budget, or [`NumericError::InvalidArgument`] if the
/// derivative vanishes at an iterate.
pub fn newton<F, D>(f: F, df: D, x0: f64, options: RootFindOptions) -> Result<f64, NumericError>
where
    F: Fn(f64) -> f64,
    D: Fn(f64) -> f64,
{
    let mut x = x0;
    let mut fx = f(x);
    for iteration in 0..options.max_iterations {
        if fx.abs() < options.f_tolerance {
            return Ok(x);
        }
        let dfx = df(x);
        if dfx == 0.0 || !dfx.is_finite() {
            return Err(NumericError::InvalidArgument(format!(
                "derivative is {dfx} at x = {x} (iteration {iteration})"
            )));
        }
        let mut step = fx / dfx;
        // Damping: halve the step until |f| decreases.
        let mut candidate = x - step;
        let mut f_candidate = f(candidate);
        let mut halvings = 0;
        while f_candidate.abs() > fx.abs() && halvings < 30 {
            step *= 0.5;
            candidate = x - step;
            f_candidate = f(candidate);
            halvings += 1;
        }
        if step.abs() < options.x_tolerance {
            return Ok(candidate);
        }
        x = candidate;
        fx = f_candidate;
    }
    if fx.abs() < options.f_tolerance * 1e3 {
        // Close enough for circuit-simulation purposes.
        return Ok(x);
    }
    Err(NumericError::NoConvergence {
        iterations: options.max_iterations,
        residual: fx.abs(),
    })
}

/// Finds a root of `f` in the bracketing interval `[a, b]` by bisection.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if `f(a)` and `f(b)` have the
/// same sign, and [`NumericError::NoConvergence`] if the interval does not
/// shrink below `x_tolerance` within the iteration budget.
pub fn bisection<F>(
    f: F,
    mut a: f64,
    mut b: f64,
    options: RootFindOptions,
) -> Result<f64, NumericError>
where
    F: Fn(f64) -> f64,
{
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::InvalidArgument(format!(
            "interval [{a}, {b}] does not bracket a root: f(a) = {fa:.3e}, f(b) = {fb:.3e}"
        )));
    }
    for _ in 0..options.max_iterations {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm.abs() < options.f_tolerance || (b - a).abs() < options.x_tolerance {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(NumericError::NoConvergence {
        iterations: options.max_iterations,
        residual: (b - a).abs(),
    })
}

/// Finds a root using Newton–Raphson and falls back to bisection on the
/// interval `[lo, hi]` if Newton fails.
///
/// # Errors
///
/// Returns the bisection error if both methods fail.
pub fn newton_with_bisection_fallback<F, D>(
    f: F,
    df: D,
    x0: f64,
    lo: f64,
    hi: f64,
    options: RootFindOptions,
) -> Result<f64, NumericError>
where
    F: Fn(f64) -> f64 + Copy,
    D: Fn(f64) -> f64,
{
    match newton(f, df, x0, options) {
        Ok(x) if x >= lo && x <= hi => Ok(x),
        _ => bisection(f, lo, hi, options),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn newton_finds_square_root() {
        let root = newton(
            |x| x * x - 2.0,
            |x| 2.0 * x,
            1.0,
            RootFindOptions::default(),
        )
        .unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn newton_handles_exponential_like_diode_equation() {
        // Solve exp(x/0.025) - 1 = 1e6 (a typical diode current equation shape).
        let f = |x: f64| (x / 0.025).exp() - 1.0 - 1e6;
        let df = |x: f64| (x / 0.025).exp() / 0.025;
        let root = newton(f, df, 0.0, RootFindOptions::default()).unwrap();
        assert!((f(root)).abs() < 1e-3);
    }

    #[test]
    fn newton_rejects_zero_derivative() {
        let err = newton(|_| 1.0, |_| 0.0, 0.0, RootFindOptions::default()).unwrap_err();
        assert!(matches!(err, NumericError::InvalidArgument(_)));
    }

    #[test]
    fn bisection_finds_cosine_root() {
        let root = bisection(|x: f64| x.cos(), 0.0, 3.0, RootFindOptions::default()).unwrap();
        assert!((root - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn bisection_rejects_non_bracketing_interval() {
        let err =
            bisection(|x: f64| x * x + 1.0, -1.0, 1.0, RootFindOptions::default()).unwrap_err();
        assert!(matches!(err, NumericError::InvalidArgument(_)));
    }

    #[test]
    fn fallback_recovers_from_bad_newton_start() {
        // tanh has a tiny derivative far from zero; Newton from x0=20 diverges,
        // but the bracket [-1, 30] still contains the root at x = 5.
        let f = |x: f64| (x - 5.0).tanh();
        let root = newton_with_bisection_fallback(
            f,
            |x| 1.0 - (x - 5.0).tanh().powi(2),
            20.0,
            -1.0,
            30.0,
            RootFindOptions::default(),
        )
        .unwrap();
        assert!((root - 5.0).abs() < 1e-6);
    }

    proptest! {
        /// Newton must find the root of a random monic cubic with a known
        /// real root structure: (x - r)(x^2 + 1) has exactly one real root r.
        #[test]
        fn prop_newton_finds_constructed_root(r in -5.0_f64..5.0) {
            let f = move |x: f64| (x - r) * (x * x + 1.0);
            let df = move |x: f64| (x * x + 1.0) + (x - r) * 2.0 * x;
            let root = newton(f, df, r + 0.5, RootFindOptions::default()).unwrap();
            prop_assert!((root - r).abs() < 1e-6);
        }

        /// Bisection always stays inside the initial bracket.
        #[test]
        fn prop_bisection_result_is_bracketed(r in -1.0_f64..1.0) {
            let f = move |x: f64| x - r;
            let root = bisection(f, -2.0, 2.0, RootFindOptions::default()).unwrap();
            prop_assert!((-2.0..=2.0).contains(&root));
            prop_assert!((root - r).abs() < 1e-6);
        }
    }
}
