//! Random-variate sampling helpers for the kinetic Monte-Carlo simulator and
//! the noise processes.
//!
//! These wrap `rand` with the specific distributions the orthodox-theory
//! Monte-Carlo loop needs: exponential waiting times, discrete selection
//! proportional to rates, and Gaussian noise via Box–Muller (kept local to
//! avoid depending on `rand_distr`).

use crate::error::NumericError;
use rand::Rng;

/// Samples an exponentially distributed waiting time with the given total
/// `rate` (in events per second).
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if `rate` is not strictly
/// positive and finite.
pub fn exponential_waiting_time<R: Rng + ?Sized>(
    rng: &mut R,
    rate: f64,
) -> Result<f64, NumericError> {
    if !(rate > 0.0) || !rate.is_finite() {
        return Err(NumericError::InvalidArgument(format!(
            "waiting-time rate must be positive and finite, got {rate}"
        )));
    }
    // Guard against u == 0 which would give an infinite waiting time.
    let mut u: f64 = rng.gen();
    while u <= f64::MIN_POSITIVE {
        u = rng.gen();
    }
    Ok(-u.ln() / rate)
}

/// Selects an index with probability proportional to `weights[i]`.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if the slice is empty, contains
/// a negative or non-finite weight, or sums to zero.
pub fn select_weighted<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
) -> Result<usize, NumericError> {
    if weights.is_empty() {
        return Err(NumericError::InvalidArgument(
            "cannot select from an empty weight list".into(),
        ));
    }
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        if w < 0.0 || !w.is_finite() {
            return Err(NumericError::InvalidArgument(format!(
                "weight {i} is invalid: {w}"
            )));
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(NumericError::InvalidArgument(
            "total weight is zero; no event can be selected".into(),
        ));
    }
    let target = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if target < acc {
            return Ok(i);
        }
    }
    // Floating-point round-off can leave `target` marginally above the last
    // accumulated value; return the last non-zero weight index.
    Ok(weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("total weight was positive"))
}

/// Samples a standard normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a normal variate with the given mean and standard deviation.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if `std_dev` is negative or not
/// finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> Result<f64, NumericError> {
    if std_dev < 0.0 || !std_dev.is_finite() {
        return Err(NumericError::InvalidArgument(format!(
            "standard deviation must be non-negative and finite, got {std_dev}"
        )));
    }
    Ok(mean + std_dev * standard_normal(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_waiting_time_has_correct_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let rate = 2.0e9;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| exponential_waiting_time(&mut rng, rate).unwrap())
            .sum::<f64>()
            / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(exponential_waiting_time(&mut rng, 0.0).is_err());
        assert!(exponential_waiting_time(&mut rng, -1.0).is_err());
        assert!(exponential_waiting_time(&mut rng, f64::INFINITY).is_err());
    }

    #[test]
    fn weighted_selection_respects_proportions() {
        let mut rng = StdRng::seed_from_u64(42);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0u32; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[select_weighted(&mut rng, &weights).unwrap()] += 1;
        }
        let f1 = counts[1] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f1 - 0.3).abs() < 0.02, "fraction {f1}");
        assert!((f2 - 0.6).abs() < 0.02, "fraction {f2}");
    }

    #[test]
    fn weighted_selection_skips_zero_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let idx = select_weighted(&mut rng, &[0.0, 5.0, 0.0]).unwrap();
            assert_eq!(idx, 1);
        }
    }

    #[test]
    fn weighted_selection_rejects_invalid_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(select_weighted(&mut rng, &[]).is_err());
        assert!(select_weighted(&mut rng, &[0.0, 0.0]).is_err());
        assert!(select_weighted(&mut rng, &[-1.0, 2.0]).is_err());
        assert!(select_weighted(&mut rng, &[f64::NAN]).is_err());
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = crate::stats::mean(&samples);
        let var = crate::stats::variance(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_rejects_negative_std_dev() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(normal(&mut rng, 0.0, -1.0).is_err());
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(13);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| normal(&mut rng, 5.0, 0.1).unwrap())
            .collect();
        assert!((crate::stats::mean(&samples) - 5.0).abs() < 0.01);
        assert!((crate::stats::std_dev(&samples) - 0.1).abs() < 0.01);
    }
}
