//! Random-variate sampling helpers for the kinetic Monte-Carlo simulator and
//! the noise processes.
//!
//! These wrap `rand` with the specific distributions the orthodox-theory
//! Monte-Carlo loop needs: exponential waiting times, discrete selection
//! proportional to rates, and Gaussian noise via Box–Muller (kept local to
//! avoid depending on `rand_distr`).

use crate::error::NumericError;
use rand::Rng;

/// High bits of `sqrt(2)/2`, the re-centering offset of [`ln_unit`]'s
/// range reduction (the classic fdlibm constant, widened to the 64-bit
/// representation).
const LN_UNIT_OFFSET: u64 = 0x3fe6_a09e << 32;
/// `ln 2` split into a high part exact in ~45 bits and its tail, so
/// `k * LN2_HI` is exact for every exponent `k` the reduction produces
/// and the tail is folded in separately (Cody–Waite, the same split
/// discipline as the Boltzmann exponential kernel in `se-orthodox`).
/// Written with the full fdlibm digit string — the bits, not the decimal
/// shorthand, are the contract.
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// Minimax coefficients of the `ln(1+f)` core polynomial (fdlibm `Lg1` …
/// `Lg7`): `ln(1+f) = f - f²/2 + s·(f²/2 + R(z))` with `s = f/(2+f)`,
/// `z = s²` and `R` the Horner evaluation below, accurate to well under
/// 1 ulp over the reduced interval `m ∈ [√2/2, √2)`.
const LG1: f64 = 6.666_666_666_666_735e-1;
const LG2: f64 = 3.999_999_999_940_942e-1;
const LG3: f64 = 2.857_142_874_366_239e-1;
const LG4: f64 = 2.222_219_843_214_978_4e-1;
const LG5: f64 = 1.818_357_216_161_805e-1;
const LG6: f64 = 1.531_383_769_920_937_3e-1;
const LG7: f64 = 1.479_819_860_511_658_6e-1;

/// Deterministic polynomial natural logarithm over the waiting-time draw
/// domain `u ∈ (0, 1]` (any positive *normal* finite input is accepted).
///
/// The event clock of the Monte-Carlo hot loop is `dt = -ln(u) / Γ_total`
/// per lane; routing it through the platform `ln` would leave a lane-serial
/// libm call in the batched engine's clock pass. This kernel is the `ln`
/// sibling of the Boltzmann exponential in `se-orthodox`: exponent-bit
/// range reduction to `u = 2^k · m` with `m ∈ [√2/2, √2)`, a fixed-degree
/// Horner polynomial for `ln m`, and a Cody–Waite reassembly of
/// `k·ln 2 + ln m` — pure elementwise arithmetic (one division, no
/// branches, no table lookups) that LLVM auto-vectorizes across SoA lanes,
/// and whose result is a deterministic function of the input bits on every
/// platform, unlike the libm `ln` the replay traces must not depend on.
///
/// Accuracy: within 2 ulp of `f64::ln` over the full draw domain (the
/// property tests pin this); `ln_unit(1.0)` is exactly `0.0`.
#[inline(always)]
#[must_use]
pub fn ln_unit(u: f64) -> f64 {
    debug_assert!(
        u >= f64::MIN_POSITIVE && u.is_finite(),
        "ln_unit expects a positive normal input, got {u}"
    );
    // Range reduction: shift the exponent boundary to √2/2 so the reduced
    // mantissa straddles 1 symmetrically (m ∈ [√2/2, √2), |f| ≤ √2 − 1).
    // The offset add only touches the exponent/high-mantissa bits; the low
    // mantissa bits ride through untouched.
    let adjusted = u
        .to_bits()
        .wrapping_add(0x3ff0_0000_0000_0000 - LN_UNIT_OFFSET);
    let k = ((adjusted >> 52) as i64 - 0x3ff) as f64;
    let m = f64::from_bits((adjusted & 0x000f_ffff_ffff_ffff) + LN_UNIT_OFFSET);
    // ln m via the fdlibm core: s = f/(2+f) maps the reduced interval to
    // |s| ≤ 3−2√2, where the odd artanh series converges fast enough for
    // a degree-7 minimax polynomial in z = s².
    let f = m - 1.0;
    let s = f / (2.0 + f);
    let z = s * s;
    let w = z * z;
    let t1 = w * (LG2 + w * (LG4 + w * LG6));
    let t2 = z * (LG1 + w * (LG3 + w * (LG5 + w * LG7)));
    let r = t2 + t1;
    let hfsq = 0.5 * f * f;
    // Cody–Waite reassembly, in the exact operation order the accuracy
    // bound was derived for.
    s * (hfsq + r) + k * LN2_LO - hfsq + f + k * LN2_HI
}

/// Draws a uniform variate from the open-below unit interval
/// `(MIN_POSITIVE, 1]` — the guarded draw the exponential waiting time is
/// built on (`u = 0` would give an infinite waiting time, and subnormal
/// `u` sits outside [`ln_unit`]'s reduced domain).
///
/// Exposed so the batched engine's SoA RNG pass can fill a whole plane of
/// draws with the exact per-lane stream the scalar
/// [`exponential_waiting_time`] consumes.
#[inline]
pub fn unit_interval_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let mut u: f64 = rng.gen();
    while u <= f64::MIN_POSITIVE {
        u = rng.gen();
    }
    u
}

/// Samples an exponentially distributed waiting time with the given total
/// `rate` (in events per second).
///
/// The logarithm is the deterministic [`ln_unit`] kernel, so waiting times
/// are a pure function of the RNG stream and the rate on every platform —
/// and the batched engine's vectorized clock pass, which evaluates the
/// same `-ln_unit(u) / rate` expression over a plane of lanes, stays
/// bit-identical to this scalar path.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if `rate` is not strictly
/// positive and finite.
pub fn exponential_waiting_time<R: Rng + ?Sized>(
    rng: &mut R,
    rate: f64,
) -> Result<f64, NumericError> {
    validate_waiting_rate(rate)?;
    let u = unit_interval_open(rng);
    Ok(-ln_unit(u) / rate)
}

/// The [`exponential_waiting_time`] domain check, exposed so batched
/// callers that inline the `-ln_unit(u) / rate` expression over a lane
/// plane reject invalid totals with the identical error.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if `rate` is not strictly
/// positive and finite.
pub fn validate_waiting_rate(rate: f64) -> Result<(), NumericError> {
    if !(rate > 0.0) || !rate.is_finite() {
        return Err(NumericError::InvalidArgument(format!(
            "waiting-time rate must be positive and finite, got {rate}"
        )));
    }
    Ok(())
}

/// Selects an index with probability proportional to `weights[i]`.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if the slice is empty, contains
/// a negative or non-finite weight, or sums to zero.
pub fn select_weighted<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
) -> Result<usize, NumericError> {
    if weights.is_empty() {
        return Err(NumericError::InvalidArgument(
            "cannot select from an empty weight list".into(),
        ));
    }
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        if w < 0.0 || !w.is_finite() {
            return Err(NumericError::InvalidArgument(format!(
                "weight {i} is invalid: {w}"
            )));
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(NumericError::InvalidArgument(
            "total weight is zero; no event can be selected".into(),
        ));
    }
    let target = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if target < acc {
            return Ok(i);
        }
    }
    // Floating-point round-off can leave `target` marginally above the last
    // accumulated value; return the last non-zero weight index.
    Ok(weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("total weight was positive"))
}

/// Samples a standard normal variate using the Box–Muller transform.
///
/// The logarithm goes through [`ln_unit`] so noise streams share the
/// waiting-time clock's platform-independence.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit_interval_open(rng);
    let u2: f64 = rng.gen();
    (-2.0 * ln_unit(u1)).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a normal variate with the given mean and standard deviation.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if `std_dev` is negative or not
/// finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> Result<f64, NumericError> {
    if std_dev < 0.0 || !std_dev.is_finite() {
        return Err(NumericError::InvalidArgument(format!(
            "standard deviation must be non-negative and finite, got {std_dev}"
        )));
    }
    Ok(mean + std_dev * standard_normal(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Distance in representable doubles between two finite values of the
    /// same sign (the units-in-the-last-place metric the kernel's accuracy
    /// contract is stated in).
    fn ulp_distance(a: f64, b: f64) -> u64 {
        (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
    }

    #[test]
    fn ln_unit_is_exact_at_the_interval_endpoints() {
        assert_eq!(ln_unit(1.0).to_bits(), 0.0_f64.to_bits());
        assert!(ulp_distance(ln_unit(0.5), 0.5_f64.ln()) <= 2);
        assert!(ulp_distance(ln_unit(f64::MIN_POSITIVE), f64::MIN_POSITIVE.ln()) <= 2);
    }

    #[test]
    fn ln_unit_tracks_libm_near_one() {
        // Near u = 1 the result crosses zero — the regime where a sloppy
        // reduction loses all relative accuracy. The √2/2 re-centering
        // keeps k = 0 there, so no cancellation occurs.
        for i in 1..=1000 {
            let u = 1.0 - i as f64 * 1e-6;
            let d = ulp_distance(ln_unit(u), u.ln());
            assert!(d <= 2, "u = {u}: {d} ulp from libm");
        }
    }

    #[test]
    fn exponential_waiting_time_matches_the_kernel_expression() {
        // The batched engine's clock pass evaluates -ln_unit(u)/total
        // inline over a plane of lanes; this pins that the scalar helper is
        // the same expression over the same guarded draw.
        let rate = 3.25e9;
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            let dt = exponential_waiting_time(&mut a, rate).unwrap();
            let u = unit_interval_open(&mut b);
            assert_eq!(dt.to_bits(), (-ln_unit(u) / rate).to_bits());
        }
    }

    #[test]
    fn exponential_waiting_time_has_correct_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let rate = 2.0e9;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| exponential_waiting_time(&mut rng, rate).unwrap())
            .sum::<f64>()
            / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(exponential_waiting_time(&mut rng, 0.0).is_err());
        assert!(exponential_waiting_time(&mut rng, -1.0).is_err());
        assert!(exponential_waiting_time(&mut rng, f64::INFINITY).is_err());
    }

    #[test]
    fn weighted_selection_respects_proportions() {
        let mut rng = StdRng::seed_from_u64(42);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0u32; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[select_weighted(&mut rng, &weights).unwrap()] += 1;
        }
        let f1 = counts[1] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f1 - 0.3).abs() < 0.02, "fraction {f1}");
        assert!((f2 - 0.6).abs() < 0.02, "fraction {f2}");
    }

    #[test]
    fn weighted_selection_skips_zero_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let idx = select_weighted(&mut rng, &[0.0, 5.0, 0.0]).unwrap();
            assert_eq!(idx, 1);
        }
    }

    #[test]
    fn weighted_selection_rejects_invalid_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(select_weighted(&mut rng, &[]).is_err());
        assert!(select_weighted(&mut rng, &[0.0, 0.0]).is_err());
        assert!(select_weighted(&mut rng, &[-1.0, 2.0]).is_err());
        assert!(select_weighted(&mut rng, &[f64::NAN]).is_err());
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = crate::stats::mean(&samples);
        let var = crate::stats::variance(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_rejects_negative_std_dev() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(normal(&mut rng, 0.0, -1.0).is_err());
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(13);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| normal(&mut rng, 5.0, 0.1).unwrap())
            .collect();
        assert!((crate::stats::mean(&samples) - 5.0).abs() < 0.01);
        assert!((crate::stats::std_dev(&samples) - 0.1).abs() < 0.01);
    }
}
