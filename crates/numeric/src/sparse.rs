//! Compressed-sparse-row matrices and an iterative stationary-distribution
//! solver for continuous-time Markov chains.
//!
//! The master-equation solver in `se-montecarlo` assembles a transition-rate
//! generator whose row count equals the number of enumerated charge states.
//! A dense n×n matrix plus LU factorisation caps that enumeration at a few
//! thousand states; the generator is in fact extremely sparse (each state
//! couples to at most two states per junction), so this module provides
//!
//! * [`CsrMatrix`] — a read-optimised CSR matrix built from triplets, and
//! * [`stationary_distribution_with`] — a solver for the stationary
//!   balance `p_i · D_i = Σ_j Q[i][j] · p_j` of a conservative generator
//!   split into its off-diagonal inflow matrix `Q` and the total out-rate
//!   vector `D`, selectable between an anchored Gauss–Seidel sweep and the
//!   preconditioned BiCGSTAB iteration of [`crate::krylov`] (with
//!   Gauss–Seidel kept as the automatic fallback and cross-check).
//!
//! The Gauss–Seidel split is the natural one for a rate matrix: every
//! update is a ratio of non-negative numbers, so the iterates stay
//! non-negative and the sweep is scale-invariant (multiplying all rates by
//! a constant changes nothing), which is exactly the invariance the
//! stationary condition itself has. The Krylov path converges superlinearly
//! on the large charge-state lattices where Gauss–Seidel's linear rate
//! dominates the solve time; both paths share the identical anchoring and
//! normalisation contract, so they agree to solver tolerance.

use crate::error::NumericError;
use crate::krylov::{stationary_bicgstab, KrylovOptions, KrylovWorkspace, Preconditioner};
use crate::matrix::Matrix;

/// Compressed-sparse-row matrix of `f64` values.
///
/// Entries are stored row by row in the order the triplets were supplied;
/// duplicate `(row, col)` positions are allowed and act additively in every
/// operation (matrix–vector products and row sums), which matches the
/// "stamping" semantics of the dense [`Matrix::add_at`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Triplet order within a row is preserved; duplicates are kept and act
    /// additively.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for zero dimensions or
    /// out-of-range indices and [`NumericError::InvalidArgument`] for
    /// non-finite values.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, NumericError> {
        if rows == 0 || cols == 0 {
            return Err(NumericError::DimensionMismatch {
                expected: "at least 1x1".into(),
                found: format!("{rows}x{cols}"),
            });
        }
        let mut counts = vec![0usize; rows];
        for &(r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(NumericError::DimensionMismatch {
                    expected: format!("indices within {rows}x{cols}"),
                    found: format!("entry at ({r}, {c})"),
                });
            }
            if !v.is_finite() {
                return Err(NumericError::InvalidArgument(format!(
                    "matrix entry at ({r}, {c}) must be finite, got {v}"
                )));
            }
            counts[r] += 1;
        }
        // Counting sort by row: prefix-sum the counts into row offsets, then
        // scatter (stable within each row).
        let mut row_ptr = vec![0usize; rows + 1];
        for r in 0..rows {
            row_ptr[r + 1] = row_ptr[r] + counts[r];
        }
        let nnz = row_ptr[rows];
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0; nnz];
        let mut cursor = row_ptr.clone();
        for &(r, c, v) in triplets {
            let slot = cursor[r];
            col_idx[slot] = c;
            values[slot] = v;
            cursor[r] += 1;
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (duplicates counted individually).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column indices and values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        assert!(r < self.rows, "row index out of bounds");
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Matrix × vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Matrix × vector product into a caller-provided buffer — the
    /// allocation-free form of [`CsrMatrix::mul_vec`] for iterative solvers
    /// that reuse workspace vectors across products. Row sums are
    /// accumulated in storage order, so repeated products are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        assert_eq!(out.len(), self.rows, "output length must equal row count");
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            out[r] = cols.iter().zip(vals).map(|(&c, &x)| x * v[c]).sum();
        }
    }

    /// Densifies the matrix (duplicates summed) — intended for tests and
    /// small-scale diagnostics only.
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                m.add_at(r, c, v);
            }
        }
        m
    }
}

/// Iterative method selection for [`stationary_distribution_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StationarySolver {
    /// Anchored Gauss–Seidel sweeps — unconditionally convergent on rate
    /// matrices (every update is a ratio of non-negative numbers) but
    /// linearly so; the solve time grows with the diffusion length of
    /// probability across the state lattice.
    GaussSeidel,
    /// Preconditioned BiCGSTAB over the anchored system (see
    /// [`crate::krylov`]). Typically severalfold faster at large state
    /// counts; any solver failure (recurrence breakdown, stagnation)
    /// transparently falls back to Gauss–Seidel, reported as
    /// `"gauss-seidel(fallback)"` in [`SolveStats::solver`].
    Krylov(Preconditioner),
}

impl Default for StationarySolver {
    /// BiCGSTAB with the ILU(0) preconditioner — the fastest configuration
    /// on the master-equation lattices this crate serves.
    fn default() -> Self {
        StationarySolver::Krylov(Preconditioner::Ilu0)
    }
}

impl StationarySolver {
    /// The name this selection reports in [`SolveStats::solver`] (barring
    /// a fallback).
    #[must_use]
    pub fn solver_name(&self) -> &'static str {
        match self {
            StationarySolver::GaussSeidel => "gauss-seidel",
            StationarySolver::Krylov(preconditioner) => preconditioner.solver_name(),
        }
    }
}

/// Provenance of one stationary solve: which method produced the result
/// and how hard it had to work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Solver that produced the accepted result: `"gauss-seidel"`,
    /// `"bicgstab-jacobi"`, `"bicgstab-ilu0"` or `"gauss-seidel(fallback)"`
    /// when the Krylov path failed and the sweep finished the job.
    pub solver: &'static str,
    /// Iterations (Krylov steps or Gauss–Seidel sweeps) performed.
    pub iterations: usize,
    /// Final convergence measure: the true residual 2-norm of the anchored
    /// system for the Krylov path, the largest per-state probability change
    /// of the final sweep for Gauss–Seidel.
    pub residual: f64,
}

/// Options for [`stationary_distribution`] / [`stationary_distribution_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationaryOptions {
    /// Convergence threshold: the largest absolute per-state probability
    /// change across one sweep for Gauss–Seidel, the residual 2-norm of the
    /// anchored system (right-hand side `e_anchor`, 2-norm 1) for the
    /// Krylov path. Both are absolute measures of the same scale, so one
    /// knob serves both solvers.
    pub tolerance: f64,
    /// Maximum number of Gauss–Seidel sweeps before giving up. The Krylov
    /// iteration budget is derived from this (`max_sweeps / 20`, clamped to
    /// `64..=1024`) — one BiCGSTAB step costs roughly two sweeps but
    /// converges superlinearly, so it needs far fewer of them.
    pub max_sweeps: usize,
    /// Which iterative method to run; defaults to BiCGSTAB + ILU(0) with
    /// automatic Gauss–Seidel fallback.
    pub solver: StationarySolver,
}

impl Default for StationaryOptions {
    fn default() -> Self {
        StationaryOptions {
            tolerance: 1e-13,
            max_sweeps: 20_000,
            solver: StationarySolver::default(),
        }
    }
}

/// Reusable buffers of [`stationary_distribution_with`]: the Gauss–Seidel
/// sweep vectors plus the embedded [`KrylovWorkspace`]. Reusing one
/// workspace across the solves of a warm-started sweep keeps every inner
/// loop allocation-free once the buffers have grown to the problem size.
#[derive(Debug, Default)]
pub struct StationaryWorkspace {
    p: Vec<f64>,
    normalised: Vec<f64>,
    previous: Vec<f64>,
    krylov: KrylovWorkspace,
}

impl StationaryWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        StationaryWorkspace::default()
    }
}

/// Solves the stationary balance of a continuous-time Markov chain by
/// anchored Gauss–Seidel iteration.
///
/// `inflow` holds the off-diagonal rates — `inflow[i][j]` is the transition
/// rate from state `j` into state `i` — and `out_rate[i]` is the total rate
/// out of state `i` (which may exceed the row sums of `inflow` when some
/// transitions leave the modelled state set). The returned vector satisfies
/// `p_i = Σ_j inflow[i][j]·p_j / out_rate[i]` for every `i ≠ anchor` to
/// within the tolerance and sums to 1.
///
/// The `anchor` state's own balance equation is dropped and replaced by the
/// normalisation condition — exactly the substitution a direct solver makes
/// when it overwrites one generator row with `Σ p = 1`. During the
/// iteration the anchor is pinned at probability 1 and every other state
/// relaxes against it, so probability ratios as steep as Boltzmann factors
/// of `e^±700` (deep Coulomb blockade) pose no stability problem: the
/// dominant mass never moves, and tiny components converge from 0 upwards
/// instead of crashing the pivot from above. The anchor must be a state
/// that carries non-vanishing stationary probability (for a regularised
/// master equation, the ground state); anchoring a transient state yields
/// the distribution conditioned on that state's basin.
///
/// States with `out_rate == 0` other than the anchor are never updated and
/// keep probability 0; callers with genuinely absorbing non-anchor states
/// should regularise first (the master-equation layer adds a vanishing
/// escape rate towards the ground state for exactly this reason).
///
/// Sweeps alternate forward and backward, which propagates probability
/// along chain-like topologies in both directions and converges
/// substantially faster than one-directional sweeps on the charge-state
/// lattices this crate is used for. The iteration is deterministic: the
/// same inputs produce bit-identical output on every run.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] for inconsistent shapes or
/// an out-of-range anchor, [`NumericError::InvalidArgument`] for negative
/// or non-finite rates, and [`NumericError::NoConvergence`] if the
/// tolerance is not reached within `max_sweeps` or the probability ratios
/// overflow (the anchor carries essentially no stationary probability).
pub fn stationary_distribution(
    inflow: &CsrMatrix,
    out_rate: &[f64],
    anchor: usize,
    options: &StationaryOptions,
) -> Result<Vec<f64>, NumericError> {
    let mut workspace = StationaryWorkspace::new();
    stationary_distribution_with(inflow, out_rate, anchor, options, None, &mut workspace)
        .map(|(probabilities, _)| probabilities)
}

/// The workspace-reusing, warm-startable form of
/// [`stationary_distribution`], returning the solve provenance alongside
/// the distribution.
///
/// `warm_start` optionally seeds the iteration with a previously converged
/// distribution over the *same* state indexing (any positive scaling). A
/// warm start from a nearby operating point — one bias step away in a
/// sweep — cuts the iteration count to a handful for either solver. An
/// unusable warm start (wrong length, non-finite or negative entries, no
/// mass on the anchor) silently degrades to the cold start, so callers may
/// pass whatever they last converged without re-validating it. With
/// `warm_start = None` the Gauss–Seidel path performs the exact
/// bit-identical iteration [`stationary_distribution`] always has.
///
/// Both solver paths are deterministic — fixed iteration order, fixed
/// reduction order — so the same inputs (including the same warm start)
/// produce bit-identical output on every run, machine and thread count.
/// When [`StationarySolver::Krylov`] is selected and the BiCGSTAB
/// iteration fails (breakdown or stagnation), the solve transparently
/// re-runs on the Gauss–Seidel path and reports
/// `"gauss-seidel(fallback)"`; determinism is preserved because the
/// fallback decision depends only on the inputs.
///
/// # Errors
///
/// As [`stationary_distribution`]; a Krylov failure surfaces only if the
/// Gauss–Seidel fallback also fails.
pub fn stationary_distribution_with(
    inflow: &CsrMatrix,
    out_rate: &[f64],
    anchor: usize,
    options: &StationaryOptions,
    warm_start: Option<&[f64]>,
    workspace: &mut StationaryWorkspace,
) -> Result<(Vec<f64>, SolveStats), NumericError> {
    let n = inflow.rows();
    if inflow.cols() != n || out_rate.len() != n || anchor >= n {
        return Err(NumericError::DimensionMismatch {
            expected: format!("{n}x{n} inflow matrix, out-rate length {n}, anchor < {n}"),
            found: format!(
                "{}x{} matrix, out-rate length {}, anchor {anchor}",
                inflow.rows(),
                inflow.cols(),
                out_rate.len()
            ),
        });
    }
    for (i, &d) in out_rate.iter().enumerate() {
        if d < 0.0 || !d.is_finite() {
            return Err(NumericError::InvalidArgument(format!(
                "out-rate of state {i} must be non-negative and finite, got {d}"
            )));
        }
    }
    if inflow.values.iter().any(|&v| v < 0.0) {
        return Err(NumericError::InvalidArgument(
            "inflow rates must be non-negative".into(),
        ));
    }
    if n == 1 {
        return Ok((
            vec![1.0],
            SolveStats {
                solver: options.solver.solver_name(),
                iterations: 0,
                residual: 0.0,
            },
        ));
    }
    match options.solver {
        StationarySolver::GaussSeidel => {
            stationary_gauss_seidel(inflow, out_rate, anchor, options, warm_start, workspace)
        }
        StationarySolver::Krylov(preconditioner) => {
            let krylov_options = KrylovOptions {
                preconditioner,
                tolerance: options.tolerance,
                max_iterations: (options.max_sweeps / 20).clamp(64, 1024),
            };
            match stationary_bicgstab(
                inflow,
                out_rate,
                anchor,
                &krylov_options,
                warm_start,
                &mut workspace.krylov,
            ) {
                Ok(solved) => Ok(solved),
                Err(_) => {
                    let (probabilities, mut stats) = stationary_gauss_seidel(
                        inflow, out_rate, anchor, options, warm_start, workspace,
                    )?;
                    stats.solver = "gauss-seidel(fallback)";
                    Ok((probabilities, stats))
                }
            }
        }
    }
}

/// Returns true if `warm` is a usable seed: right length, finite,
/// non-negative, with strictly positive mass on the anchor (the iterate is
/// re-scaled so the anchor carries 1).
fn warm_start_usable(warm: Option<&[f64]>, n: usize, anchor: usize) -> Option<&[f64]> {
    warm.filter(|w| w.len() == n && w[anchor] > 0.0 && w.iter().all(|&v| v >= 0.0 && v.is_finite()))
}

/// The anchored Gauss–Seidel sweep over reusable workspace buffers.
/// Validation and the `n == 1` fast path live in the caller.
fn stationary_gauss_seidel(
    inflow: &CsrMatrix,
    out_rate: &[f64],
    anchor: usize,
    options: &StationaryOptions,
    warm_start: Option<&[f64]>,
    workspace: &mut StationaryWorkspace,
) -> Result<(Vec<f64>, SolveStats), NumericError> {
    let n = inflow.rows();
    let StationaryWorkspace {
        p,
        normalised,
        previous,
        ..
    } = workspace;
    for buffer in [&mut *p, &mut *normalised, &mut *previous] {
        buffer.clear();
        buffer.resize(n, 0.0);
    }
    // Probability mass propagates outward from the pinned anchor — or from
    // a usable warm start re-scaled so the anchor carries 1.
    match warm_start_usable(warm_start, n, anchor) {
        Some(warm) => {
            let scale = 1.0 / warm[anchor];
            let total: f64 = warm.iter().sum();
            for ((pi, prev), &w) in p.iter_mut().zip(previous.iter_mut()).zip(warm) {
                *pi = w * scale;
                *prev = w / total;
            }
        }
        None => {
            p[anchor] = 1.0;
            previous[anchor] = 1.0;
        }
    }
    let update = |p: &mut [f64], i: usize| {
        if i != anchor && out_rate[i] > 0.0 {
            let (cols, vals) = inflow.row(i);
            let inflow_sum: f64 = cols.iter().zip(vals).map(|(&c, &x)| x * p[c]).sum();
            p[i] = inflow_sum / out_rate[i];
        }
    };
    for sweep in 0..options.max_sweeps {
        if sweep % 2 == 0 {
            for i in 0..n {
                update(p, i);
            }
        } else {
            for i in (0..n).rev() {
                update(p, i);
            }
        }
        let total: f64 = p.iter().sum();
        if !total.is_finite() {
            return Err(NumericError::NoConvergence {
                iterations: sweep + 1,
                residual: total,
            });
        }
        for (norm, &x) in normalised.iter_mut().zip(p.iter()) {
            *norm = x / total;
        }
        let delta = normalised
            .iter()
            .zip(previous.iter())
            .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()));
        if delta <= options.tolerance {
            return Ok((
                normalised.clone(),
                SolveStats {
                    solver: "gauss-seidel",
                    iterations: sweep + 1,
                    residual: delta,
                },
            ));
        }
        previous.copy_from_slice(normalised);
    }
    let residual = normalised
        .iter()
        .zip(previous.iter())
        .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()));
    Err(NumericError::NoConvergence {
        iterations: options.max_sweeps,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_builds_and_densifies() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 0, -1.5), (0, 1, 3.0)]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 3);
        let dense = m.to_dense();
        assert_eq!(dense[(0, 1)], 5.0, "duplicates act additively");
        assert_eq!(dense[(1, 0)], -1.5);
        assert_eq!(dense[(1, 2)], 0.0);
    }

    #[test]
    fn from_triplets_rejects_bad_input() {
        assert!(CsrMatrix::from_triplets(0, 1, &[]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]).is_err());
    }

    #[test]
    fn mul_vec_into_reuses_buffer_and_matches_mul_vec() {
        let triplets = [(0usize, 0usize, 1.5), (0, 2, -2.0), (2, 1, 4.0)];
        let sparse = CsrMatrix::from_triplets(3, 3, &triplets).unwrap();
        let v = [1.0, -2.0, 0.5];
        let mut out = vec![99.0; 3];
        sparse.mul_vec_into(&v, &mut out);
        assert_eq!(out, sparse.mul_vec(&v), "stale buffer contents overwritten");
    }

    #[test]
    fn mul_vec_matches_dense() {
        let triplets = [
            (0usize, 0usize, 1.0),
            (0, 2, 2.0),
            (1, 1, -3.0),
            (2, 0, 0.5),
            (2, 2, 4.0),
        ];
        let sparse = CsrMatrix::from_triplets(3, 3, &triplets).unwrap();
        let v = [1.0, 2.0, 3.0];
        assert_eq!(sparse.mul_vec(&v), sparse.to_dense().mul_vec(&v));
    }

    #[test]
    fn two_state_chain_has_analytic_stationary_distribution() {
        // 0 → 1 at rate a, 1 → 0 at rate b: p = (b, a) / (a + b).
        let (a, b) = (3.0e9, 1.0e9);
        let inflow = CsrMatrix::from_triplets(2, 2, &[(1, 0, a), (0, 1, b)]).unwrap();
        let p =
            stationary_distribution(&inflow, &[a, b], 0, &StationaryOptions::default()).unwrap();
        assert!((p[0] - b / (a + b)).abs() < 1e-12);
        assert!((p[1] - a / (a + b)).abs() < 1e-12);
    }

    #[test]
    fn birth_death_chain_matches_detailed_balance() {
        // Birth rate λ, death rate μ per level: p_k ∝ (λ/μ)^k.
        let n = 20;
        let (lambda, mu) = (2.0e8, 5.0e8);
        let mut triplets = Vec::new();
        let mut out = vec![0.0; n];
        for k in 0..n - 1 {
            triplets.push((k + 1, k, lambda));
            triplets.push((k, k + 1, mu));
            out[k] += lambda;
            out[k + 1] += mu;
        }
        let inflow = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let p = stationary_distribution(&inflow, &out, 0, &StationaryOptions::default()).unwrap();
        let r = lambda / mu;
        for k in 1..n {
            let expected = p[0] * r.powi(k as i32);
            // The solver stops on an absolute tolerance (the probabilities
            // sum to 1), so small tail probabilities carry a few extra
            // digits of relative error.
            assert!(
                (p[k] - expected).abs() < 1e-8 * expected.max(1e-12),
                "level {k}: {} vs {expected}",
                p[k]
            );
        }
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absorbing_state_collects_all_probability() {
        // State 2 has no way out: everything must end up there.
        let inflow =
            CsrMatrix::from_triplets(3, 3, &[(1, 0, 1.0e9), (2, 1, 2.0e9), (2, 0, 0.5e9)]).unwrap();
        let out = [1.5e9, 2.0e9, 0.0];
        // The absorbing state is the only one with stationary mass, so it
        // is the anchor.
        let p = stationary_distribution(&inflow, &out, 2, &StationaryOptions::default()).unwrap();
        assert!(p[2] > 1.0 - 1e-12, "absorbing probability {}", p[2]);
        assert!(p[0] < 1e-12 && p[1] < 1e-12);
    }

    #[test]
    fn solver_rejects_invalid_input() {
        let inflow = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(
            stationary_distribution(&inflow, &[1.0], 0, &StationaryOptions::default()).is_err()
        );
        assert!(
            stationary_distribution(&inflow, &[1.0, -1.0], 0, &StationaryOptions::default())
                .is_err()
        );
        assert!(
            stationary_distribution(&inflow, &[1.0, 1.0], 2, &StationaryOptions::default())
                .is_err(),
            "out-of-range anchor"
        );
        let negative = CsrMatrix::from_triplets(2, 2, &[(0, 1, -1.0)]).unwrap();
        assert!(
            stationary_distribution(&negative, &[1.0, 1.0], 0, &StationaryOptions::default())
                .is_err()
        );
    }

    #[test]
    fn solver_reports_no_convergence_on_tiny_budget() {
        let inflow = CsrMatrix::from_triplets(2, 2, &[(1, 0, 1.0e9), (0, 1, 3.0e9)]).unwrap();
        let err = stationary_distribution(
            &inflow,
            &[1.0e9, 3.0e9],
            0,
            &StationaryOptions {
                tolerance: 1e-300,
                max_sweeps: 1,
                // The Krylov default would solve this 2-state system
                // exactly (ILU(0) of a 2×2 matrix is a complete LU); pin
                // the sweep path to exercise its budget reporting.
                solver: StationarySolver::GaussSeidel,
            },
        )
        .unwrap_err();
        assert!(matches!(err, NumericError::NoConvergence { .. }));
    }

    #[test]
    fn single_state_is_trivially_stationary() {
        let inflow = CsrMatrix::from_triplets(1, 1, &[]).unwrap();
        let p = stationary_distribution(&inflow, &[0.0], 0, &StationaryOptions::default()).unwrap();
        assert_eq!(p, vec![1.0]);
    }

    /// A 30-level birth–death chain shared by the solver-agreement tests.
    fn birth_death() -> (CsrMatrix, Vec<f64>) {
        let n = 30;
        let (lambda, mu) = (2.0e8, 5.0e8);
        let mut triplets = Vec::new();
        let mut out = vec![0.0; n];
        for k in 0..n - 1 {
            triplets.push((k + 1, k, lambda));
            triplets.push((k, k + 1, mu));
            out[k] += lambda;
            out[k + 1] += mu;
        }
        (CsrMatrix::from_triplets(n, n, &triplets).unwrap(), out)
    }

    #[test]
    fn all_solver_selections_agree_on_the_same_chain() {
        let (inflow, out) = birth_death();
        let mut workspace = StationaryWorkspace::new();
        let solve = |solver: StationarySolver, workspace: &mut StationaryWorkspace| {
            let options = StationaryOptions {
                solver,
                ..StationaryOptions::default()
            };
            stationary_distribution_with(&inflow, &out, 0, &options, None, workspace).unwrap()
        };
        let (reference, gs_stats) = solve(StationarySolver::GaussSeidel, &mut workspace);
        assert_eq!(gs_stats.solver, "gauss-seidel");
        assert!(gs_stats.iterations > 0);
        for preconditioner in [Preconditioner::Jacobi, Preconditioner::Ilu0] {
            let (p, stats) = solve(StationarySolver::Krylov(preconditioner), &mut workspace);
            assert_eq!(stats.solver, preconditioner.solver_name());
            for (a, b) in p.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-10, "{preconditioner:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gauss_seidel_workspace_path_is_bit_identical_to_the_legacy_entry() {
        let (inflow, out) = birth_death();
        let options = StationaryOptions {
            solver: StationarySolver::GaussSeidel,
            ..StationaryOptions::default()
        };
        let legacy = stationary_distribution(&inflow, &out, 0, &options).unwrap();
        let mut workspace = StationaryWorkspace::new();
        let (fresh, _) =
            stationary_distribution_with(&inflow, &out, 0, &options, None, &mut workspace).unwrap();
        // Reused (dirty) workspace must not perturb a cold-started solve.
        let (reused, _) =
            stationary_distribution_with(&inflow, &out, 0, &options, None, &mut workspace).unwrap();
        let bits = |p: &[f64]| p.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&legacy), bits(&fresh));
        assert_eq!(bits(&legacy), bits(&reused));
    }

    #[test]
    fn warm_started_gauss_seidel_converges_faster_and_agrees() {
        let (inflow, out) = birth_death();
        let options = StationaryOptions {
            solver: StationarySolver::GaussSeidel,
            ..StationaryOptions::default()
        };
        let mut workspace = StationaryWorkspace::new();
        let (cold, cold_stats) =
            stationary_distribution_with(&inflow, &out, 0, &options, None, &mut workspace).unwrap();
        let (warm, warm_stats) =
            stationary_distribution_with(&inflow, &out, 0, &options, Some(&cold), &mut workspace)
                .unwrap();
        assert!(warm_stats.iterations <= cold_stats.iterations);
        for (a, b) in cold.iter().zip(&warm) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn unusable_warm_starts_degrade_to_the_cold_start() {
        let (inflow, out) = birth_death();
        let options = StationaryOptions::default();
        let mut workspace = StationaryWorkspace::new();
        let (cold, _) =
            stationary_distribution_with(&inflow, &out, 0, &options, None, &mut workspace).unwrap();
        let bits = |p: &[f64]| p.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        let wrong_length = vec![0.5; inflow.rows() + 1];
        let mut no_anchor_mass = cold.clone();
        no_anchor_mass[0] = 0.0;
        let mut non_finite = cold.clone();
        non_finite[3] = f64::NAN;
        for bad in [&wrong_length, &no_anchor_mass, &non_finite] {
            let (p, _) =
                stationary_distribution_with(&inflow, &out, 0, &options, Some(bad), &mut workspace)
                    .unwrap();
            assert_eq!(bits(&p), bits(&cold), "bad warm start must equal cold run");
        }
    }
}
